"""Graph serialization: edge lists, adjacency JSON, DIMACS, and networkx interop.

File formats are intentionally simple and line-oriented so experiment inputs
can be version-controlled and diffed.  All round-trips are exact (node count,
edge set and, where applicable, node names are preserved).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .graph import Graph, GraphError

__all__ = [
    "to_edge_list",
    "from_edge_list",
    "save_edge_list",
    "load_edge_list",
    "to_adjacency_json",
    "from_adjacency_json",
    "to_dimacs",
    "from_dimacs",
    "to_networkx",
    "from_networkx",
]

PathLike = Union[str, Path]


# --------------------------------------------------------------------------- #
# edge-list text format: first line "n m", then one "u v" line per edge
# --------------------------------------------------------------------------- #
def to_edge_list(graph: Graph) -> str:
    """Serialise to the plain edge-list text format."""
    lines = [f"{graph.n} {graph.num_edges}"]
    lines += [f"{u} {v}" for u, v in graph.edges()]
    return "\n".join(lines) + "\n"


def from_edge_list(text: str) -> Graph:
    """Parse the plain edge-list text format produced by :func:`to_edge_list`."""
    lines = [ln.strip() for ln in text.splitlines() if ln.strip() and not ln.startswith("#")]
    if not lines:
        raise GraphError("empty edge-list document")
    header = lines[0].split()
    if len(header) != 2:
        raise GraphError(f"edge-list header must be 'n m', got {lines[0]!r}")
    n, m = int(header[0]), int(header[1])
    edges = []
    for ln in lines[1:]:
        parts = ln.split()
        if len(parts) != 2:
            raise GraphError(f"bad edge line {ln!r}")
        edges.append((int(parts[0]), int(parts[1])))
    if len(edges) != m:
        raise GraphError(f"header promised {m} edges but found {len(edges)}")
    return Graph.from_edges(n, edges)


def save_edge_list(graph: Graph, path: PathLike) -> None:
    """Write the edge-list format to ``path``."""
    Path(path).write_text(to_edge_list(graph), encoding="utf-8")


def load_edge_list(path: PathLike) -> Graph:
    """Read a graph from an edge-list file."""
    return from_edge_list(Path(path).read_text(encoding="utf-8"))


# --------------------------------------------------------------------------- #
# adjacency JSON (keeps names)
# --------------------------------------------------------------------------- #
def to_adjacency_json(graph: Graph) -> str:
    """Serialise to a JSON document with node count, adjacency and optional names."""
    doc = {
        "n": graph.n,
        "adjacency": {str(u): sorted(graph.neighbors(u)) for u in range(graph.n)},
        "names": list(graph.names) if graph.names is not None else None,
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def from_adjacency_json(text: str) -> Graph:
    """Parse the JSON document produced by :func:`to_adjacency_json`."""
    doc = json.loads(text)
    n = int(doc["n"])
    edges = []
    for u_str, nbrs in doc.get("adjacency", {}).items():
        u = int(u_str)
        for v in nbrs:
            edges.append((u, int(v)))
    names = doc.get("names")
    return Graph.from_edges(n, edges, names=names)


# --------------------------------------------------------------------------- #
# DIMACS (1-indexed "p edge n m" / "e u v" lines)
# --------------------------------------------------------------------------- #
def to_dimacs(graph: Graph) -> str:
    """Serialise to the DIMACS edge format (nodes are 1-indexed on disk)."""
    lines = [f"p edge {graph.n} {graph.num_edges}"]
    lines += [f"e {u + 1} {v + 1}" for u, v in graph.edges()]
    return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> Graph:
    """Parse the DIMACS edge format."""
    n: Optional[int] = None
    edges: List = []
    for ln in text.splitlines():
        ln = ln.strip()
        if not ln or ln.startswith("c"):
            continue
        if ln.startswith("p"):
            parts = ln.split()
            if len(parts) < 4:
                raise GraphError(f"bad DIMACS problem line {ln!r}")
            n = int(parts[2])
        elif ln.startswith("e"):
            parts = ln.split()
            edges.append((int(parts[1]) - 1, int(parts[2]) - 1))
    if n is None:
        raise GraphError("DIMACS document has no problem line")
    return Graph.from_edges(n, edges)


# --------------------------------------------------------------------------- #
# networkx interop (optional dependency, used for cross-validation tests)
# --------------------------------------------------------------------------- #
def to_networkx(graph: Graph):
    """Convert to a :class:`networkx.Graph` (requires networkx)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edges())
    return g


def from_networkx(nx_graph) -> Graph:
    """Convert from a networkx graph (nodes are relabelled to 0..n-1 in sorted order)."""
    nodes = sorted(nx_graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in nx_graph.edges()]
    return Graph.from_edges(len(nodes), edges, names=[str(v) for v in nodes])

"""Structural graph properties used by the labeling schemes and the analysis.

Includes the radius/diameter/degeneracy computations the paper's related-work
discussion refers to, the *square of a graph* (used by the ``O(log Δ)``-bit
baseline labeling), and a handful of recognisers (trees, grids, series-parallel
graphs) needed by the Section 5 one-bit schemes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .graph import Graph, GraphError
from .traversal import bfs_distances, eccentricities, is_connected

__all__ = [
    "diameter",
    "radius",
    "center",
    "graph_square",
    "graph_power",
    "degeneracy_ordering",
    "degeneracy",
    "is_tree",
    "is_bipartite",
    "source_radius",
    "is_series_parallel",
    "triangle_count",
    "density",
    "average_degree",
]


def diameter(graph: Graph) -> int:
    """Largest hop distance between any two nodes (graph must be connected)."""
    ecc = eccentricities(graph)
    return max(ecc.values(), default=0)


def radius(graph: Graph) -> int:
    """Smallest eccentricity over all nodes (graph must be connected)."""
    ecc = eccentricities(graph)
    return min(ecc.values(), default=0)


def center(graph: Graph) -> List[int]:
    """Nodes whose eccentricity equals the radius (the graph centre)."""
    ecc = eccentricities(graph)
    if not ecc:
        return []
    r = min(ecc.values())
    return sorted(v for v, e in ecc.items() if e == r)


def source_radius(graph: Graph, source: int) -> int:
    """Eccentricity of the source — the paper's ``D`` in ``O(D + log² n)`` bounds."""
    dist = bfs_distances(graph, source)
    if (dist < 0).any():
        raise GraphError("source radius is undefined on a disconnected graph")
    return int(dist.max(initial=0))


def graph_square(graph: Graph) -> Graph:
    """The square ``G²``: nodes adjacent iff their distance in ``G`` is 1 or 2.

    A proper colouring of ``G²`` is the classical way to build collision-free
    TDMA schedules in radio networks, which is exactly the ``O(log Δ)``-bit
    baseline the paper's introduction mentions.
    """
    return graph_power(graph, 2)


def graph_power(graph: Graph, k: int) -> Graph:
    """The k-th power ``G^k``: nodes adjacent iff their distance in ``G`` is in 1..k."""
    if k < 1:
        raise GraphError(f"graph power requires k >= 1, got {k}")
    edges: List[Tuple[int, int]] = []
    for u in range(graph.n):
        dist = bfs_distances(graph, u)
        for v in range(u + 1, graph.n):
            if 0 < dist[v] <= k:
                edges.append((u, v))
    return Graph.from_edges(graph.n, edges)


def degeneracy_ordering(graph: Graph) -> List[int]:
    """Smallest-last (degeneracy) ordering of the nodes.

    Repeatedly removes a minimum-degree node; the reverse of the removal order
    is returned, which is the order greedy colouring should use to achieve a
    ``degeneracy+1`` colouring.
    """
    degrees = {u: graph.degree(u) for u in range(graph.n)}
    remaining = set(range(graph.n))
    removal: List[int] = []
    adj = {u: set(graph.neighbors(u)) for u in range(graph.n)}
    while remaining:
        u = min(remaining, key=lambda x: (degrees[x], x))
        removal.append(u)
        remaining.discard(u)
        for v in adj[u]:
            if v in remaining:
                degrees[v] -= 1
            adj[v].discard(u)
    removal.reverse()
    return removal


def degeneracy(graph: Graph) -> int:
    """The degeneracy (smallest d such that every subgraph has a node of degree ≤ d)."""
    degrees = {u: graph.degree(u) for u in range(graph.n)}
    remaining = set(range(graph.n))
    adj = {u: set(graph.neighbors(u)) for u in range(graph.n)}
    best = 0
    while remaining:
        u = min(remaining, key=lambda x: (degrees[x], x))
        best = max(best, degrees[u])
        remaining.discard(u)
        for v in adj[u]:
            if v in remaining:
                degrees[v] -= 1
            adj[v].discard(u)
    return best


def is_tree(graph: Graph) -> bool:
    """A connected graph with exactly n-1 edges."""
    return graph.n > 0 and graph.num_edges == graph.n - 1 and is_connected(graph)


def is_bipartite(graph: Graph) -> bool:
    """Two-colourability check via BFS."""
    colour = np.full(graph.n, -1, dtype=np.int8)
    for start in range(graph.n):
        if colour[start] >= 0:
            continue
        colour[start] = 0
        stack = [start]
        while stack:
            u = stack.pop()
            for v in graph.neighbors_array(u):
                if colour[v] < 0:
                    colour[v] = 1 - colour[u]
                    stack.append(int(v))
                elif colour[v] == colour[u]:
                    return False
    return True


def is_series_parallel(graph: Graph) -> bool:
    """Recogniser for (connected) series-parallel graphs.

    Uses the classical reduction characterisation: a connected graph is
    series-parallel iff it can be reduced to a single edge by repeatedly

    * removing parallel edges (never present here — the graph is simple, but
      reductions can create them, so we track multiplicities), and
    * contracting degree-2 vertices (series reduction).

    Equivalent characterisation: no K4 minor.  Trees and cycles are accepted
    (a tree reduces edge-by-edge via leaves, handled below).
    """
    if graph.n == 0:
        return True
    if not is_connected(graph):
        return False
    # Multigraph adjacency with edge multiplicities.
    mult: Dict[Tuple[int, int], int] = {}
    adj: Dict[int, set] = {u: set() for u in range(graph.n)}
    for u, v in graph.edge_set:
        mult[(u, v)] = 1
        adj[u].add(v)
        adj[v].add(u)

    def _key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def _remove_edge(a: int, b: int) -> None:
        k = _key(a, b)
        mult[k] -= 1
        if mult[k] == 0:
            del mult[k]
            adj[a].discard(b)
            adj[b].discard(a)

    def _add_edge(a: int, b: int) -> None:
        k = _key(a, b)
        mult[k] = mult.get(k, 0) + 1
        adj[a].add(b)
        adj[b].add(a)

    alive = set(range(graph.n))
    changed = True
    while changed:
        changed = False
        # Parallel reduction: collapse multiplicities to 1.
        for k in list(mult):
            if mult[k] > 1:
                mult[k] = 1
                changed = True
        # Degree-1 removal (handles tree parts) and series reduction of degree-2 nodes.
        for u in list(alive):
            deg = sum(mult[_key(u, v)] for v in adj[u])
            if deg == 0 and len(alive) > 1:
                alive.discard(u)
                changed = True
            elif deg == 1:
                (v,) = tuple(adj[u])
                _remove_edge(u, v)
                alive.discard(u)
                changed = True
            elif deg == 2 and len(adj[u]) == 2:
                v, w = tuple(adj[u])
                _remove_edge(u, v)
                _remove_edge(u, w)
                _add_edge(v, w)
                alive.discard(u)
                changed = True
    # Series-parallel iff what remains is at most one edge between two nodes.
    return len(alive) <= 2 and len(mult) <= 1


def triangle_count(graph: Graph) -> int:
    """Number of triangles in the graph."""
    count = 0
    for u, v in graph.edge_set:
        count += len(graph.neighbors(u) & graph.neighbors(v))
    return count // 3


def density(graph: Graph) -> float:
    """Edge density ``2m / (n(n-1))`` (0 for graphs with < 2 nodes)."""
    if graph.n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (graph.n * (graph.n - 1))


def average_degree(graph: Graph) -> float:
    """Mean node degree (0 for the empty graph)."""
    if graph.n == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.n

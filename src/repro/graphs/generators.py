"""Graph family generators.

The benchmark harness sweeps the labeling schemes and baselines over a wide
range of topologies: the structured families that stress the paper's worst
cases (paths and cycles maximise the 2n−3 bound; stars and complete graphs
finish in O(1) stages), the radio-flavoured random families (unit-disk /
random geometric graphs model physical deployments such as the IoT scenario in
the paper's introduction), and the special classes for which Section 5 claims
one-bit schemes (grids, series-parallel graphs).

Every generator returns a connected :class:`~repro.graphs.graph.Graph` (random
families retry or augment until connected) and is deterministic given its seed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .graph import Graph, GraphError
from .random import SeedLike, make_rng
from .traversal import connected_components, is_connected

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "binary_tree_graph",
    "full_kary_tree",
    "caterpillar_graph",
    "spider_graph",
    "wheel_graph",
    "ladder_graph",
    "barbell_graph",
    "lollipop_graph",
    "broom_graph",
    "random_tree",
    "random_gnp_graph",
    "random_regular_graph",
    "random_geometric_graph",
    "random_series_parallel_graph",
    "random_connected_graph",
    "two_level_star",
    "FAMILIES",
    "family_names",
    "generate_family",
]


# --------------------------------------------------------------------------- #
# deterministic structured families
# --------------------------------------------------------------------------- #
def path_graph(n: int) -> Graph:
    """Path P_n: nodes 0-1-2-…-(n-1)."""
    _require_positive(n)
    return Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """Cycle C_n (requires n ≥ 3)."""
    if n < 3:
        raise GraphError(f"cycle graph needs at least 3 nodes, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(n, edges)


def star_graph(n: int) -> Graph:
    """Star with centre 0 and n-1 leaves."""
    _require_positive(n)
    return Graph.from_edges(n, [(0, i) for i in range(1, n)])


def complete_graph(n: int) -> Graph:
    """Complete graph K_n."""
    _require_positive(n)
    return Graph.from_edges(n, itertools.combinations(range(n), 2))


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """Complete bipartite graph K_{a,b}; side A is 0..a-1, side B is a..a+b-1."""
    if a < 1 or b < 1:
        raise GraphError("both sides of a complete bipartite graph must be non-empty")
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return Graph.from_edges(a + b, edges)


def grid_graph(rows: int, cols: int) -> Graph:
    """rows × cols grid; node (r, c) has index ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    return Graph.from_edges(rows * cols, edges)


def torus_graph(rows: int, cols: int) -> Graph:
    """rows × cols torus (grid with wraparound); requires both dims ≥ 3."""
    if rows < 3 or cols < 3:
        raise GraphError("torus dimensions must be at least 3 to stay simple")
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            edges.append((u, r * cols + (c + 1) % cols))
            edges.append((u, ((r + 1) % rows) * cols + c))
    return Graph.from_edges(rows * cols, edges)


def hypercube_graph(dim: int) -> Graph:
    """dim-dimensional hypercube Q_dim on 2^dim nodes."""
    if dim < 0:
        raise GraphError("hypercube dimension must be non-negative")
    n = 1 << dim
    edges = [(u, u ^ (1 << b)) for u in range(n) for b in range(dim) if u < (u ^ (1 << b))]
    return Graph.from_edges(n, edges)


def binary_tree_graph(n: int) -> Graph:
    """Complete binary tree on n nodes in heap order (node i's children are 2i+1, 2i+2)."""
    _require_positive(n)
    edges = [(i, (i - 1) // 2) for i in range(1, n)]
    return Graph.from_edges(n, edges)


def full_kary_tree(k: int, depth: int) -> Graph:
    """Full k-ary tree of the given depth (depth 0 is a single node)."""
    if k < 1 or depth < 0:
        raise GraphError("k must be ≥ 1 and depth ≥ 0")
    edges: List[Tuple[int, int]] = []
    # breadth-first numbering
    layer = [0]
    next_index = 1
    for _ in range(depth):
        new_layer: List[int] = []
        for parent in layer:
            for _ in range(k):
                edges.append((parent, next_index))
                new_layer.append(next_index)
                next_index += 1
        layer = new_layer
    return Graph.from_edges(next_index, edges)


def caterpillar_graph(spine: int, legs_per_node: int) -> Graph:
    """Caterpillar: a spine path with ``legs_per_node`` pendant leaves per spine node."""
    if spine < 1 or legs_per_node < 0:
        raise GraphError("spine must be ≥ 1, legs_per_node ≥ 0")
    edges = [(i, i + 1) for i in range(spine - 1)]
    next_index = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            edges.append((s, next_index))
            next_index += 1
    return Graph.from_edges(next_index, edges)


def spider_graph(legs: int, leg_length: int) -> Graph:
    """Spider: ``legs`` paths of ``leg_length`` edges glued at a central node 0."""
    if legs < 1 or leg_length < 1:
        raise GraphError("legs and leg_length must be ≥ 1")
    edges: List[Tuple[int, int]] = []
    next_index = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            edges.append((prev, next_index))
            prev = next_index
            next_index += 1
    return Graph.from_edges(next_index, edges)


def wheel_graph(n: int) -> Graph:
    """Wheel W_n: a cycle on nodes 1..n-1 plus a hub 0 adjacent to all of them (n ≥ 4)."""
    if n < 4:
        raise GraphError(f"wheel graph needs at least 4 nodes, got {n}")
    rim = n - 1
    edges = [(0, i) for i in range(1, n)]
    edges += [(1 + i, 1 + (i + 1) % rim) for i in range(rim)]
    return Graph.from_edges(n, edges)


def ladder_graph(rungs: int) -> Graph:
    """Ladder: two paths of length ``rungs`` joined by rungs (2·rungs nodes)."""
    if rungs < 1:
        raise GraphError("ladder needs at least one rung")
    edges: List[Tuple[int, int]] = []
    for i in range(rungs):
        edges.append((2 * i, 2 * i + 1))
        if i + 1 < rungs:
            edges.append((2 * i, 2 * i + 2))
            edges.append((2 * i + 1, 2 * i + 3))
    return Graph.from_edges(2 * rungs, edges)


def barbell_graph(clique_size: int, path_length: int) -> Graph:
    """Two K_{clique_size} cliques joined by a path with ``path_length`` interior nodes."""
    if clique_size < 2:
        raise GraphError("clique_size must be ≥ 2")
    if path_length < 0:
        raise GraphError("path_length must be ≥ 0")
    k = clique_size
    edges = list(itertools.combinations(range(k), 2))
    offset = k + path_length
    edges += [(offset + a, offset + b) for a, b in itertools.combinations(range(k), 2)]
    chain = [k - 1] + [k + i for i in range(path_length)] + [offset]
    edges += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    return Graph.from_edges(2 * k + path_length, edges)


def lollipop_graph(clique_size: int, tail_length: int) -> Graph:
    """K_{clique_size} with a path of ``tail_length`` extra nodes hanging off node 0."""
    if clique_size < 2:
        raise GraphError("clique_size must be ≥ 2")
    if tail_length < 0:
        raise GraphError("tail_length must be ≥ 0")
    edges = list(itertools.combinations(range(clique_size), 2))
    prev = 0
    for i in range(tail_length):
        edges.append((prev, clique_size + i))
        prev = clique_size + i
    return Graph.from_edges(clique_size + tail_length, edges)


def broom_graph(handle_length: int, bristles: int) -> Graph:
    """A path of ``handle_length`` edges whose far end has ``bristles`` pendant leaves."""
    if handle_length < 1 or bristles < 0:
        raise GraphError("handle_length must be ≥ 1, bristles ≥ 0")
    edges = [(i, i + 1) for i in range(handle_length)]
    tip = handle_length
    next_index = handle_length + 1
    for _ in range(bristles):
        edges.append((tip, next_index))
        next_index += 1
    return Graph.from_edges(next_index, edges)


def two_level_star(branch: int, leaves_per_branch: int) -> Graph:
    """A root 0 with ``branch`` children, each with ``leaves_per_branch`` leaves.

    This is the shape that makes greedy dominating-set pruning interesting:
    many frontier nodes share dominators.
    """
    if branch < 1 or leaves_per_branch < 0:
        raise GraphError("branch must be ≥ 1, leaves_per_branch ≥ 0")
    edges: List[Tuple[int, int]] = []
    next_index = 1
    for _ in range(branch):
        b = next_index
        edges.append((0, b))
        next_index += 1
        for _ in range(leaves_per_branch):
            edges.append((b, next_index))
            next_index += 1
    return Graph.from_edges(next_index, edges)


# --------------------------------------------------------------------------- #
# random families
# --------------------------------------------------------------------------- #
def random_tree(n: int, seed: SeedLike = None) -> Graph:
    """Uniform random labelled tree via a random Prüfer sequence."""
    _require_positive(n)
    if n <= 2:
        return path_graph(n)
    rng = make_rng(seed)
    prufer = [int(x) for x in rng.integers(0, n, size=n - 2)]
    degree = [1] * n
    for x in prufer:
        degree[x] += 1
    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    edges: List[Tuple[int, int]] = []
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, x))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return Graph.from_edges(n, edges)


def random_gnp_graph(n: int, p: float, seed: SeedLike = None, *, connect: bool = True) -> Graph:
    """Erdős–Rényi G(n, p); if ``connect`` is true, extra edges join components.

    The connecting edges link each component (beyond the first) to a uniformly
    random node of the running giant, which perturbs the distribution only when
    p is below the connectivity threshold.
    """
    _require_positive(n)
    if not (0.0 <= p <= 1.0):
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = make_rng(seed)
    mask = rng.random((n, n)) < p
    iu, ju = np.triu_indices(n, k=1)
    sel = mask[iu, ju]
    edges = list(zip(iu[sel].tolist(), ju[sel].tolist()))
    g = Graph.from_edges(n, edges)
    if connect and not is_connected(g):
        g = _connect_components(g, rng)
    return g


def random_regular_graph(n: int, d: int, seed: SeedLike = None, *, max_tries: int = 200) -> Graph:
    """Random d-regular graph via the pairing model with rejection.

    Requires ``n*d`` even and ``d < n``.  Retries until the pairing yields a
    simple connected graph (practically instant for the sizes we use).
    """
    _require_positive(n)
    if d < 0 or d >= n:
        raise GraphError(f"degree d must satisfy 0 <= d < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise GraphError("n*d must be even for a d-regular graph to exist")
    if d == 0:
        if n == 1:
            return Graph.empty(1)
        raise GraphError("a 0-regular graph on more than one node is disconnected")
    rng = make_rng(seed)
    stubs = np.repeat(np.arange(n), d)
    for _ in range(max_tries):
        perm = rng.permutation(stubs)
        pairs = perm.reshape(-1, 2)
        edges = set()
        ok = True
        for a, b in pairs:
            a, b = int(a), int(b)
            if a == b or (min(a, b), max(a, b)) in edges:
                ok = False
                break
            edges.add((min(a, b), max(a, b)))
        if not ok:
            continue
        g = Graph.from_edges(n, edges)
        if is_connected(g):
            return g
    raise GraphError(f"failed to sample a connected simple {d}-regular graph on {n} nodes")


def random_geometric_graph(
    n: int,
    radius: float,
    seed: SeedLike = None,
    *,
    connect: bool = True,
) -> Graph:
    """Random geometric (unit-disk) graph on the unit square.

    Nodes are uniform points; an edge joins two nodes iff their Euclidean
    distance is at most ``radius``.  This is the standard model of physical
    radio deployments (the paper's IoT motivation), so it features heavily in
    the benchmark sweeps.
    """
    _require_positive(n)
    if radius <= 0:
        raise GraphError(f"radius must be positive, got {radius}")
    rng = make_rng(seed)
    pts = rng.random((n, 2))
    diff = pts[:, None, :] - pts[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    mask = dist2 <= radius * radius
    iu, ju = np.triu_indices(n, k=1)
    sel = mask[iu, ju]
    edges = list(zip(iu[sel].tolist(), ju[sel].tolist()))
    g = Graph.from_edges(n, edges)
    if connect and not is_connected(g):
        g = _connect_components(g, rng)
    return g


def random_series_parallel_graph(n: int, seed: SeedLike = None) -> Graph:
    """Random two-terminal series-parallel graph on exactly ``n ≥ 2`` nodes.

    Built by repeatedly applying *series* (subdivide an edge with a new node)
    and *parallel-ish* (attach a new node adjacent to both endpoints of an
    existing edge) expansions starting from a single edge.  Both operations
    preserve series-parallelness (no K4 minor is ever created) and keep the
    graph simple and connected.
    """
    if n < 2:
        raise GraphError("a series-parallel graph needs at least 2 nodes")
    rng = make_rng(seed)
    edges: List[Tuple[int, int]] = [(0, 1)]
    while len({v for e in edges for v in e}) < n:
        next_index = len({v for e in edges for v in e})
        u, v = edges[int(rng.integers(0, len(edges)))]
        if rng.random() < 0.5:
            # series expansion: replace edge (u,v) by (u,w),(w,v)
            edges.remove((u, v))
            edges.append((min(u, next_index), max(u, next_index)))
            edges.append((min(v, next_index), max(v, next_index)))
        else:
            # attach a new node across the edge (keeps both endpoints)
            edges.append((min(u, next_index), max(u, next_index)))
            edges.append((min(v, next_index), max(v, next_index)))
    return Graph.from_edges(n, edges)


def random_connected_graph(n: int, extra_edge_prob: float = 0.1, seed: SeedLike = None) -> Graph:
    """A random tree plus each non-tree edge independently with the given probability.

    A cheap way to get connected graphs of controllable density for
    property-based tests.
    """
    _require_positive(n)
    rng = make_rng(seed)
    tree = random_tree(n, rng)
    if n < 3 or extra_edge_prob <= 0:
        return tree
    extra: List[Tuple[int, int]] = []
    for u in range(n):
        for v in range(u + 1, n):
            if not tree.has_edge(u, v) and rng.random() < extra_edge_prob:
                extra.append((u, v))
    return tree.add_edges(extra)


def _connect_components(g: Graph, rng: np.random.Generator) -> Graph:
    """Join all components of ``g`` by adding one random edge per extra component."""
    comps = connected_components(g)
    if len(comps) <= 1:
        return g
    base = list(comps[0])
    extra: List[Tuple[int, int]] = []
    for comp in comps[1:]:
        a = int(rng.choice(base))
        b = int(rng.choice(comp))
        extra.append((a, b))
        base.extend(comp)
    return g.add_edges(extra)


def _require_positive(n: int) -> None:
    if n < 1:
        raise GraphError(f"graph must have at least one node, got n={n}")


# --------------------------------------------------------------------------- #
# family registry (drives the benchmark sweeps)
# --------------------------------------------------------------------------- #
def _family_path(n: int, seed: int) -> Graph:
    return path_graph(n)


def _family_cycle(n: int, seed: int) -> Graph:
    return cycle_graph(max(n, 3))


def _family_star(n: int, seed: int) -> Graph:
    return star_graph(n)


def _family_complete(n: int, seed: int) -> Graph:
    return complete_graph(n)


def _family_grid(n: int, seed: int) -> Graph:
    side = max(2, int(math.isqrt(n)))
    return grid_graph(side, max(2, n // side))


def _family_binary_tree(n: int, seed: int) -> Graph:
    return binary_tree_graph(n)


def _family_random_tree(n: int, seed: int) -> Graph:
    return random_tree(n, seed)


def _family_gnp_sparse(n: int, seed: int) -> Graph:
    p = min(1.0, 2.0 * math.log(max(n, 2)) / max(n, 2))
    return random_gnp_graph(n, p, seed)


def _family_gnp_dense(n: int, seed: int) -> Graph:
    return random_gnp_graph(n, 0.3, seed)


def _family_geometric(n: int, seed: int) -> Graph:
    r = min(1.0, 1.6 * math.sqrt(math.log(max(n, 2)) / max(n, 2)))
    return random_geometric_graph(n, r, seed)


def _family_series_parallel(n: int, seed: int) -> Graph:
    return random_series_parallel_graph(max(n, 2), seed)


def _family_caterpillar(n: int, seed: int) -> Graph:
    spine = max(1, n // 3)
    legs = max(0, (n - spine) // spine)
    return caterpillar_graph(spine, legs)


def _family_hypercube(n: int, seed: int) -> Graph:
    dim = max(1, int(round(math.log2(max(n, 2)))))
    return hypercube_graph(dim)


#: Registry of named graph families.  Each entry maps a family name to a
#: callable ``(n, seed) -> Graph`` producing a connected graph of roughly n
#: nodes (some families round n to the nearest feasible size).
FAMILIES: Dict[str, Callable[[int, int], Graph]] = {
    "path": _family_path,
    "cycle": _family_cycle,
    "star": _family_star,
    "complete": _family_complete,
    "grid": _family_grid,
    "binary_tree": _family_binary_tree,
    "random_tree": _family_random_tree,
    "gnp_sparse": _family_gnp_sparse,
    "gnp_dense": _family_gnp_dense,
    "geometric": _family_geometric,
    "series_parallel": _family_series_parallel,
    "caterpillar": _family_caterpillar,
    "hypercube": _family_hypercube,
}


def family_names() -> List[str]:
    """Sorted list of registered family names."""
    return sorted(FAMILIES)


def generate_family(name: str, n: int, seed: int = 0) -> Graph:
    """Generate a member of the named family with roughly ``n`` nodes."""
    try:
        factory = FAMILIES[name]
    except KeyError:
        raise GraphError(f"unknown graph family {name!r}; known: {family_names()}") from None
    return factory(n, seed)

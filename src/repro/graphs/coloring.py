"""Greedy graph colouring.

The paper's introduction observes that a proper colouring of ``G²`` gives an
``O(log Δ)``-bit labeling for broadcast (colours act as TDMA slots; any two
nodes within distance two get distinct slots, so no collisions ever occur at a
common neighbour).  This module provides the colouring machinery that the
:mod:`repro.baselines.coloring_tdma` baseline builds on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .graph import Graph, GraphError
from .properties import degeneracy_ordering, graph_square

__all__ = [
    "greedy_coloring",
    "square_coloring",
    "is_proper_coloring",
    "color_classes",
]


def greedy_coloring(graph: Graph, order: Optional[Sequence[int]] = None) -> Dict[int, int]:
    """Greedy proper colouring of ``graph``.

    Parameters
    ----------
    graph:
        The graph to colour.
    order:
        Node processing order.  Defaults to the degeneracy (smallest-last)
        ordering, which guarantees at most ``degeneracy(G) + 1`` colours and in
        particular at most ``Δ + 1``.

    Returns
    -------
    dict
        Mapping node → colour index starting at 0.
    """
    if order is None:
        order = degeneracy_ordering(graph)
    else:
        order = list(order)
        if sorted(order) != list(range(graph.n)):
            raise GraphError("colouring order must be a permutation of the nodes")
    colours: Dict[int, int] = {}
    for u in order:
        used = {colours[v] for v in graph.neighbors(u) if v in colours}
        c = 0
        while c in used:
            c += 1
        colours[u] = c
    return colours


def square_coloring(graph: Graph) -> Dict[int, int]:
    """Proper colouring of the square ``G²``.

    Any two nodes at distance ≤ 2 in ``G`` receive different colours, so if
    nodes transmit only in rounds congruent to their colour, no collision can
    occur at any listener.  Uses at most ``Δ² + 1`` colours.
    """
    return greedy_coloring(graph_square(graph))


def is_proper_coloring(graph: Graph, colours: Dict[int, int]) -> bool:
    """Check that no edge joins two equal-coloured nodes and every node is coloured."""
    if set(colours) != set(range(graph.n)):
        return False
    return all(colours[u] != colours[v] for u, v in graph.edge_set)


def color_classes(colours: Dict[int, int]) -> List[List[int]]:
    """Group nodes by colour, returned as a list indexed by colour."""
    if not colours:
        return []
    k = max(colours.values()) + 1
    classes: List[List[int]] = [[] for _ in range(k)]
    for v, c in colours.items():
        classes[c].append(v)
    return [sorted(cls) for cls in classes]

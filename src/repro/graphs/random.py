"""Deterministic randomness plumbing for graph generation and workloads.

All stochastic pieces of the reproduction (random graph families, random
source selection, fault injection) draw from :class:`numpy.random.Generator`
objects derived from explicit integer seeds.  Nothing in the library reads
global RNG state, so every experiment is reproducible from its parameters.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

__all__ = ["SeedLike", "make_rng", "spawn_rngs", "derive_seed"]

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator, or ``None``.

    Passing an existing generator returns it unchanged (so callers can thread a
    single stream through nested calls); passing ``None`` produces a generator
    seeded from fresh OS entropy (only appropriate in exploratory use — all
    benchmarks pass explicit seeds).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *components: int) -> int:
    """Derive a child seed from a base seed and a tuple of integer components.

    Uses :class:`numpy.random.SeedSequence` spawning semantics so that derived
    streams are statistically independent and stable across platforms.
    """
    ss = np.random.SeedSequence([int(base_seed), *[int(c) for c in components]])
    return int(ss.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))


def spawn_rngs(seed: SeedLike, count: int) -> Iterator[np.random.Generator]:
    """Yield ``count`` independent generators derived from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's bit generator seed sequence.
        children = seed.bit_generator.seed_seq.spawn(count)  # type: ignore[union-attr]
    else:
        children = np.random.SeedSequence(seed).spawn(count)
    for child in children:
        yield np.random.default_rng(child)

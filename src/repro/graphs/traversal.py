"""Graph traversal primitives: BFS layers, shortest paths, connectivity.

These are the building blocks for both the labeling schemes (which reason
about the distance structure from the source) and the analysis code (diameter,
radius, eccentricities).  Everything is deterministic: ties are always broken
by node index so repeated runs produce identical results.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .graph import Graph, GraphError

__all__ = [
    "bfs_distances",
    "bfs_layers",
    "bfs_tree",
    "connected_components",
    "is_connected",
    "shortest_path",
    "all_pairs_distances",
    "eccentricities",
]


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source`` to every node.

    Unreachable nodes get distance ``-1``.

    Parameters
    ----------
    graph:
        The graph to traverse.
    source:
        Start node.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(n,)``.
    """
    if source not in graph:
        raise GraphError(f"source {source} is not a node of {graph!r}")
    dist = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0
    queue: deque = deque([source])
    indptr, indices = graph.csr()
    while queue:
        u = queue.popleft()
        for v in indices[indptr[u] : indptr[u + 1]]:
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(int(v))
    return dist


def bfs_layers(graph: Graph, source: int) -> List[List[int]]:
    """Partition reachable nodes into BFS layers ``L0={source}, L1, ...``.

    Each layer is sorted by node index.  Unreachable nodes are omitted.
    """
    dist = bfs_distances(graph, source)
    if graph.n == 0:
        return []
    max_d = int(dist.max(initial=0))
    layers: List[List[int]] = [[] for _ in range(max_d + 1)]
    for v in range(graph.n):
        d = int(dist[v])
        if d >= 0:
            layers[d].append(v)
    return layers


def bfs_tree(graph: Graph, source: int) -> Dict[int, Optional[int]]:
    """BFS parent pointers: ``parent[v]`` is v's parent, ``None`` for the source.

    Unreachable nodes are absent from the mapping.  Parents are chosen as the
    smallest-index neighbour in the previous layer, so the tree is canonical.
    """
    dist = bfs_distances(graph, source)
    parent: Dict[int, Optional[int]] = {source: None}
    for v in range(graph.n):
        d = int(dist[v])
        if d <= 0:
            continue
        candidates = [int(u) for u in graph.neighbors_array(v) if dist[u] == d - 1]
        parent[v] = min(candidates)
    return parent


def shortest_path(graph: Graph, source: int, target: int) -> Optional[List[int]]:
    """A shortest path from ``source`` to ``target``, or ``None`` if disconnected.

    The path is the canonical one induced by :func:`bfs_tree` parent pointers.
    """
    if target not in graph:
        raise GraphError(f"target {target} is not a node of {graph!r}")
    dist = bfs_distances(graph, source)
    if dist[target] < 0:
        return None
    parent = bfs_tree(graph, source)
    path = [target]
    while path[-1] != source:
        nxt = parent[path[-1]]
        assert nxt is not None
        path.append(nxt)
    path.reverse()
    return path


def connected_components(graph: Graph) -> List[List[int]]:
    """List of connected components, each a sorted list of node indices.

    Components are ordered by their smallest node.
    """
    seen = np.zeros(graph.n, dtype=bool)
    components: List[List[int]] = []
    for start in range(graph.n):
        if seen[start]:
            continue
        comp: List[int] = []
        queue: deque = deque([start])
        seen[start] = True
        while queue:
            u = queue.popleft()
            comp.append(u)
            for v in graph.neighbors_array(u):
                if not seen[v]:
                    seen[v] = True
                    queue.append(int(v))
        components.append(sorted(comp))
    return components


def is_connected(graph: Graph) -> bool:
    """Return ``True`` if the graph is connected (single-node graphs count)."""
    if graph.n == 0:
        return True
    return int((bfs_distances(graph, 0) >= 0).sum()) == graph.n


def all_pairs_distances(graph: Graph) -> np.ndarray:
    """All-pairs hop distance matrix (``-1`` for unreachable pairs).

    Runs one BFS per node — O(n·(n+m)) — which is fine for the graph sizes we
    benchmark (≤ a few thousand nodes).
    """
    out = np.full((graph.n, graph.n), -1, dtype=np.int64)
    for u in range(graph.n):
        out[u] = bfs_distances(graph, u)
    return out


def eccentricities(graph: Graph, sources: Optional[Sequence[int]] = None) -> Dict[int, int]:
    """Eccentricity of each requested node (max hop distance to any node).

    Raises :class:`GraphError` if the graph is disconnected, because
    eccentricity is then undefined for our purposes.
    """
    if not is_connected(graph):
        raise GraphError("eccentricities are only defined for connected graphs")
    nodes = list(sources) if sources is not None else list(range(graph.n))
    out: Dict[int, int] = {}
    for u in nodes:
        dist = bfs_distances(graph, u)
        out[u] = int(dist.max(initial=0))
    return out

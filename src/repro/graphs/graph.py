"""Immutable simple undirected graph used throughout the reproduction.

The paper models a radio network as a simple undirected connected graph.  The
:class:`Graph` class below is the single substrate every other subsystem
(labeling schemes, round simulator, baselines, benchmarks) builds on.  It is
deliberately small, immutable after construction, and cheap to query:

* nodes are integers ``0..n-1`` (a separate :attr:`Graph.names` mapping keeps
  arbitrary user-facing identifiers when graphs are read from files);
* adjacency is stored both as frozensets (exact set queries, used heavily by
  the sequence construction of Section 2.1) and as a CSR-like pair of NumPy
  arrays (vectorised neighbourhood sweeps in the simulator hot loop);
* hashing/equality are structural so graphs can be deduplicated in sweeps.

The class intentionally does not support mutation: the labeling schemes of the
paper are functions of a *fixed* topology, and an immutable graph keeps every
experiment deterministic and side-effect free.  Use :class:`GraphBuilder` to
assemble a graph incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Edge", "Graph", "GraphBuilder", "GraphError"]


class GraphError(ValueError):
    """Raised for structurally invalid graph constructions or queries."""


Edge = Tuple[int, int]


def _normalise_edge(u: int, v: int) -> Edge:
    """Return the canonical (min, max) representation of an undirected edge."""
    if u == v:
        raise GraphError(f"self-loop {u!r} is not allowed in a simple graph")
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class Graph:
    """A simple undirected graph on nodes ``0..n-1``.

    Parameters
    ----------
    n:
        Number of nodes.  Must be non-negative.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n`` and ``u != v``.
        Duplicate edges (in either orientation) are collapsed.
    names:
        Optional mapping from node index to an external name (used by the
        I/O helpers); purely cosmetic.

    Examples
    --------
    >>> g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> g.degree(0)
    2
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    n: int
    edge_set: FrozenSet[Edge]
    names: Optional[Tuple[str, ...]] = None
    _adj: Tuple[FrozenSet[int], ...] = field(init=False, repr=False, compare=False)
    _csr_indptr: np.ndarray = field(init=False, repr=False, compare=False)
    _csr_indices: np.ndarray = field(init=False, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if self.n < 0:
            raise GraphError(f"node count must be non-negative, got {self.n}")
        if self.names is not None and len(self.names) != self.n:
            raise GraphError(
                f"names has {len(self.names)} entries but the graph has {self.n} nodes"
            )
        adj: List[set] = [set() for _ in range(self.n)]
        for u, v in self.edge_set:
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise GraphError(f"edge ({u}, {v}) references a node outside 0..{self.n - 1}")
            if u == v:
                raise GraphError(f"self-loop at node {u} is not allowed")
            adj[u].add(v)
            adj[v].add(u)
        frozen = tuple(frozenset(s) for s in adj)
        object.__setattr__(self, "_adj", frozen)
        # CSR arrays: indptr[u]..indptr[u+1] slices indices to u's sorted neighbours.
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        for u in range(self.n):
            indptr[u + 1] = indptr[u] + len(frozen[u])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for u in range(self.n):
            nbrs = sorted(frozen[u])
            indices[indptr[u] : indptr[u + 1]] = nbrs
        object.__setattr__(self, "_csr_indptr", indptr)
        object.__setattr__(self, "_csr_indices", indices)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int]],
        names: Optional[Sequence[str]] = None,
    ) -> "Graph":
        """Build a graph from a node count and an edge iterable."""
        edge_set = frozenset(_normalise_edge(u, v) for u, v in edges)
        return cls(n=n, edge_set=edge_set, names=tuple(names) if names is not None else None)

    @classmethod
    def from_adjacency(cls, adjacency: Mapping[int, Iterable[int]]) -> "Graph":
        """Build a graph from an adjacency mapping ``{node: neighbours}``.

        The node set is ``0..max_node`` where ``max_node`` is the largest index
        mentioned either as a key or as a neighbour.
        """
        max_node = -1
        edges: List[Edge] = []
        for u, nbrs in adjacency.items():
            max_node = max(max_node, u)
            for v in nbrs:
                max_node = max(max_node, v)
                edges.append((u, v))
        return cls.from_edges(max_node + 1, edges)

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """Graph on ``n`` nodes with no edges."""
        return cls(n=n, edge_set=frozenset())

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes (alias of :attr:`n`)."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return len(self.edge_set)

    def nodes(self) -> range:
        """Iterate over node indices ``0..n-1``."""
        return range(self.n)

    def edges(self) -> Iterator[Edge]:
        """Iterate over canonical ``(u, v)`` edges with ``u < v`` in sorted order."""
        return iter(sorted(self.edge_set))

    def has_node(self, u: int) -> bool:
        """Return ``True`` if ``u`` is a valid node index."""
        return 0 <= u < self.n

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the undirected edge ``{u, v}`` exists."""
        if u == v:
            return False
        return _normalise_edge(u, v) in self.edge_set

    def neighbors(self, u: int) -> FrozenSet[int]:
        """Return the neighbour set of ``u`` as a frozenset."""
        self._check_node(u)
        return self._adj[u]

    def neighbors_array(self, u: int) -> np.ndarray:
        """Return the sorted neighbour indices of ``u`` as a NumPy view."""
        self._check_node(u)
        return self._csr_indices[self._csr_indptr[u] : self._csr_indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        self._check_node(u)
        return len(self._adj[u])

    def degrees(self) -> np.ndarray:
        """Vector of all node degrees (``shape (n,)``)."""
        return np.diff(self._csr_indptr)

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for an empty graph)."""
        if self.n == 0:
            return 0
        return int(self.degrees().max(initial=0))

    def min_degree(self) -> int:
        """Minimum degree (0 for an empty graph)."""
        if self.n == 0:
            return 0
        return int(self.degrees().min(initial=0))

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency matrix (``shape (n, n)``)."""
        mat = np.zeros((self.n, self.n), dtype=bool)
        for u, v in self.edge_set:
            mat[u, v] = True
            mat[v, u] = True
        return mat

    def adjacency_lists(self) -> Dict[int, List[int]]:
        """Plain-dict adjacency representation with sorted neighbour lists."""
        return {u: sorted(self._adj[u]) for u in range(self.n)}

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the ``(indptr, indices)`` CSR arrays (read-only views)."""
        return self._csr_indptr, self._csr_indices

    # ------------------------------------------------------------------ #
    # set-level neighbourhood queries (used by the Section 2.1 construction)
    # ------------------------------------------------------------------ #
    def neighborhood(self, nodes: Iterable[int]) -> FrozenSet[int]:
        """Return Γ(X): the set of nodes adjacent to at least one node of ``X``.

        Matches the paper's definition — note that Γ(X) may intersect X and
        does *not* automatically include X.
        """
        out: set = set()
        for u in nodes:
            out.update(self._adj[u])
        return frozenset(out)

    def closed_neighborhood(self, nodes: Iterable[int]) -> FrozenSet[int]:
        """Return Γ(X) ∪ X."""
        nodes = set(nodes)
        return frozenset(nodes | set(self.neighborhood(nodes)))

    def dominates(self, dominators: Iterable[int], targets: Iterable[int]) -> bool:
        """Return ``True`` if every node of ``targets`` has a neighbour in ``dominators``.

        This is the paper's domination relation (a node does not dominate
        itself unless it has a neighbour in the dominating set).
        """
        dom = set(dominators)
        return all(bool(self._adj[t] & dom) for t in targets)

    def count_neighbors_in(self, u: int, subset: Iterable[int]) -> int:
        """Number of neighbours of ``u`` that lie inside ``subset``."""
        self._check_node(u)
        return len(self._adj[u] & set(subset))

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def subgraph(self, nodes: Sequence[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph on ``nodes``.

        Returns the new graph (with nodes relabelled ``0..len(nodes)-1`` in the
        order given) and the mapping from original index to new index.
        """
        nodes = list(dict.fromkeys(nodes))  # preserve order, dedupe
        for u in nodes:
            self._check_node(u)
        remap = {u: i for i, u in enumerate(nodes)}
        edges = [
            (remap[u], remap[v])
            for u, v in self.edge_set
            if u in remap and v in remap
        ]
        return Graph.from_edges(len(nodes), edges), remap

    def relabel(self, permutation: Sequence[int]) -> "Graph":
        """Return an isomorphic graph where old node ``u`` becomes ``permutation[u]``."""
        if sorted(permutation) != list(range(self.n)):
            raise GraphError("permutation must be a bijection on 0..n-1")
        edges = [(permutation[u], permutation[v]) for u, v in self.edge_set]
        return Graph.from_edges(self.n, edges)

    def union_disjoint(self, other: "Graph") -> "Graph":
        """Disjoint union: ``other``'s nodes are shifted by ``self.n``."""
        edges = list(self.edge_set) + [(u + self.n, v + self.n) for u, v in other.edge_set]
        return Graph.from_edges(self.n + other.n, edges)

    def add_edges(self, extra: Iterable[Tuple[int, int]]) -> "Graph":
        """Return a new graph with additional edges (the original is unchanged)."""
        edges = set(self.edge_set)
        for u, v in extra:
            self._check_node(u)
            self._check_node(v)
            edges.add(_normalise_edge(u, v))
        return Graph(n=self.n, edge_set=frozenset(edges), names=self.names)

    def remove_edges(self, gone: Iterable[Tuple[int, int]]) -> "Graph":
        """Return a new graph with the listed edges removed."""
        removed = {_normalise_edge(u, v) for u, v in gone}
        return Graph(n=self.n, edge_set=frozenset(self.edge_set - removed), names=self.names)

    def complement(self) -> "Graph":
        """Complement graph (no self loops)."""
        edges = [
            (u, v)
            for u in range(self.n)
            for v in range(u + 1, self.n)
            if (u, v) not in self.edge_set
        ]
        return Graph.from_edges(self.n, edges)

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def _check_node(self, u: int) -> None:
        if not (isinstance(u, (int, np.integer)) and 0 <= u < self.n):
            raise GraphError(f"node {u!r} is not in 0..{self.n - 1}")

    def __contains__(self, u: object) -> bool:
        return isinstance(u, (int, np.integer)) and 0 <= int(u) < self.n

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __hash__(self) -> int:
        return hash((self.n, self.edge_set))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.n == other.n and self.edge_set == other.edge_set

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.num_edges})"

    def summary(self) -> str:
        """One-line human readable summary."""
        return (
            f"Graph with {self.n} nodes, {self.num_edges} edges, "
            f"max degree {self.max_degree()}"
        )


class GraphBuilder:
    """Mutable helper for assembling a :class:`Graph` incrementally.

    Nodes may be added by arbitrary hashable keys; they are assigned dense
    integer indices in insertion order.  ``build()`` freezes the result.

    Examples
    --------
    >>> b = GraphBuilder()
    >>> b.add_edge("a", "b")
    >>> b.add_edge("b", "c")
    >>> g = b.build()
    >>> g.num_nodes, g.num_edges
    (3, 2)
    """

    def __init__(self) -> None:
        self._index: Dict[object, int] = {}
        self._names: List[str] = []
        self._edges: List[Edge] = []

    def add_node(self, key: object) -> int:
        """Ensure ``key`` exists as a node; return its integer index."""
        if key not in self._index:
            self._index[key] = len(self._index)
            self._names.append(str(key))
        return self._index[key]

    def add_edge(self, a: object, b: object) -> None:
        """Add an undirected edge between the nodes keyed by ``a`` and ``b``."""
        u = self.add_node(a)
        v = self.add_node(b)
        self._edges.append(_normalise_edge(u, v))

    def add_edges(self, pairs: Iterable[Tuple[object, object]]) -> None:
        """Add several edges at once."""
        for a, b in pairs:
            self.add_edge(a, b)

    @property
    def num_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._index)

    def index_of(self, key: object) -> int:
        """Return the integer index previously assigned to ``key``."""
        return self._index[key]

    def build(self) -> Graph:
        """Freeze the accumulated nodes/edges into an immutable :class:`Graph`."""
        return Graph.from_edges(len(self._index), self._edges, names=self._names)

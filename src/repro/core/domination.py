"""Minimal dominating subsets.

The heart of the Section 2.1 construction is step 4: *"Define DOM_i to be a
minimal subset of DOM_{i-1} ∪ NEW_{i-1} that dominates all nodes in
FRONTIER_i."*  "Minimal" is inclusion-minimality: removing any node breaks
domination.  Minimality — not minimum cardinality — is what the correctness
argument needs (Lemma 2.4 uses it to guarantee progress), so any minimal
subset works; which one is chosen only affects the constant factors of the
message count and the tie-breaking of labels.

This module provides two deterministic strategies plus the verification
predicates used by the tests:

* :func:`prune_to_minimal` — start from the full candidate set and repeatedly
  drop redundant nodes (smallest index first).  Matches the paper most
  literally.
* :func:`greedy_minimal_dominating_subset` — greedy set-cover pass (pick the
  candidate covering the most uncovered targets) followed by a pruning pass to
  restore inclusion-minimality.  Produces much smaller dominating sets on
  dense graphs, which the ablation benchmark quantifies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set

from ..graphs.graph import Graph, GraphError

__all__ = [
    "dominates",
    "is_minimal_dominating_subset",
    "prune_to_minimal",
    "greedy_minimal_dominating_subset",
    "minimal_dominating_subset",
    "DOMINATION_STRATEGIES",
]


def dominates(graph: Graph, dominators: Iterable[int], targets: Iterable[int]) -> bool:
    """True if every target node has at least one neighbour among ``dominators``."""
    dom = set(dominators)
    return all(bool(graph.neighbors(t) & dom) for t in targets)


def is_minimal_dominating_subset(
    graph: Graph, subset: Iterable[int], candidates: Iterable[int], targets: Iterable[int]
) -> bool:
    """Check the three defining properties of DOM_i.

    ``subset`` must (a) be contained in ``candidates``, (b) dominate
    ``targets``, and (c) be inclusion-minimal: removing any single node breaks
    domination.
    """
    subset = set(subset)
    candidates = set(candidates)
    targets = set(targets)
    if not subset <= candidates:
        return False
    if not dominates(graph, subset, targets):
        return False
    for v in subset:
        if dominates(graph, subset - {v}, targets):
            return False
    return True


def prune_to_minimal(
    graph: Graph, candidates: Iterable[int], targets: Iterable[int]
) -> FrozenSet[int]:
    """Shrink ``candidates`` to an inclusion-minimal subset dominating ``targets``.

    Deterministic: candidates are considered for removal in increasing index
    order, and a candidate is removed iff the remaining set still dominates all
    targets.  Raises :class:`~repro.graphs.graph.GraphError` if the full
    candidate set does not dominate the targets in the first place (the
    paper's Lemma 2.5 guarantees it always does in the construction).
    """
    cand = set(candidates)
    targets = list(dict.fromkeys(targets))
    if not dominates(graph, cand, targets):
        raise GraphError("candidate set does not dominate the target set")
    if not targets:
        return frozenset()
    # cover_count[t] = number of candidate dominators adjacent to t
    cover_count: Dict[int, int] = {t: len(graph.neighbors(t) & cand) for t in targets}
    targets_of: Dict[int, List[int]] = {
        c: [t for t in targets if c in graph.neighbors(t)] for c in cand
    }
    keep = set(cand)
    for c in sorted(cand):
        # c is redundant iff every target it covers is covered by another kept node.
        if all(cover_count[t] >= 2 for t in targets_of[c]):
            keep.discard(c)
            for t in targets_of[c]:
                cover_count[t] -= 1
    # Drop kept candidates that cover no targets at all (vacuously removable).
    keep = {c for c in keep if targets_of[c]}
    return frozenset(keep)


def greedy_minimal_dominating_subset(
    graph: Graph, candidates: Iterable[int], targets: Iterable[int]
) -> FrozenSet[int]:
    """Greedy set-cover selection followed by a minimality-restoring prune.

    Ties are broken by smallest node index, so the result is deterministic.
    """
    cand = set(candidates)
    target_list = list(dict.fromkeys(targets))
    if not dominates(graph, cand, target_list):
        raise GraphError("candidate set does not dominate the target set")
    uncovered: Set[int] = set(target_list)
    chosen: Set[int] = set()
    coverage: Dict[int, Set[int]] = {
        c: set(t for t in target_list if c in graph.neighbors(t)) for c in cand
    }
    while uncovered:
        best = max(sorted(cand - chosen), key=lambda c: len(coverage[c] & uncovered))
        gain = len(coverage[best] & uncovered)
        if gain == 0:
            # Should be unreachable because the full candidate set dominates.
            raise GraphError("greedy selection stalled; candidates do not cover targets")
        chosen.add(best)
        uncovered -= coverage[best]
    # Greedy choice is usually minimal already, but prune defensively so the
    # result always satisfies the paper's definition.
    return prune_to_minimal(graph, chosen, target_list)


def minimal_dominating_subset(
    graph: Graph,
    candidates: Iterable[int],
    targets: Iterable[int],
    strategy: str = "prune",
) -> FrozenSet[int]:
    """Dispatch to the named domination strategy (``"prune"`` or ``"greedy"``)."""
    try:
        fn = DOMINATION_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown domination strategy {strategy!r}; known: {sorted(DOMINATION_STRATEGIES)}"
        ) from None
    return fn(graph, candidates, targets)


#: Registry of deterministic strategies for choosing DOM_i.
DOMINATION_STRATEGIES = {
    "prune": prune_to_minimal,
    "greedy": greedy_minimal_dominating_subset,
}

"""The paper's contribution: sequence construction, labeling schemes, protocols.

Typical use::

    from repro.core import lambda_scheme, run_broadcast
    outcome = run_broadcast(graph, source=0)
    assert outcome.completion_round <= outcome.bound_broadcast
"""

from .domination import (
    DOMINATION_STRATEGIES,
    dominates,
    greedy_minimal_dominating_subset,
    is_minimal_dominating_subset,
    minimal_dominating_subset,
    prune_to_minimal,
)
from .labeling import (
    FORBIDDEN_ACK_LABELS,
    Labeling,
    lambda_ack_scheme,
    lambda_arb_scheme,
    lambda_scheme,
)
from .labels import Label, distinct_labels, label_length, scheme_length
from .outcome import Outcome
from .protocols import (
    AcknowledgedBroadcastNode,
    ArbitrarySourceNode,
    BroadcastNode,
    COORDINATOR_LABEL,
    UniversalNode,
    make_acknowledged_node,
    make_arbitrary_node,
    make_broadcast_node,
)
from .runner import (
    BroadcastOutcome,
    run_acknowledged_broadcast,
    run_arbitrary_source_broadcast,
    run_broadcast,
)
from .sequences import SequenceConstruction, Stage, build_sequences
from .special import (
    LabelSearchResult,
    TreeFloodNode,
    broadcast_succeeds_with_labels,
    run_tree_flood,
    search_minimum_labels,
)
from .verify import (
    check_corollary_2_7,
    check_fact_3_1,
    check_lemma_2_8,
    check_theorem_2_9,
    check_theorem_3_9,
    check_universality_constraints,
    verify_broadcast_outcome,
)

__all__ = [
    "AcknowledgedBroadcastNode",
    "ArbitrarySourceNode",
    "BroadcastNode",
    "BroadcastOutcome",
    "COORDINATOR_LABEL",
    "DOMINATION_STRATEGIES",
    "FORBIDDEN_ACK_LABELS",
    "Label",
    "LabelSearchResult",
    "Labeling",
    "Outcome",
    "SequenceConstruction",
    "Stage",
    "TreeFloodNode",
    "UniversalNode",
    "broadcast_succeeds_with_labels",
    "build_sequences",
    "check_corollary_2_7",
    "check_fact_3_1",
    "check_lemma_2_8",
    "check_theorem_2_9",
    "check_theorem_3_9",
    "check_universality_constraints",
    "distinct_labels",
    "dominates",
    "greedy_minimal_dominating_subset",
    "is_minimal_dominating_subset",
    "label_length",
    "lambda_ack_scheme",
    "lambda_arb_scheme",
    "lambda_scheme",
    "make_acknowledged_node",
    "make_arbitrary_node",
    "make_broadcast_node",
    "minimal_dominating_subset",
    "prune_to_minimal",
    "run_acknowledged_broadcast",
    "run_arbitrary_source_broadcast",
    "run_broadcast",
    "run_tree_flood",
    "scheme_length",
    "search_minimum_labels",
    "verify_broadcast_outcome",
]

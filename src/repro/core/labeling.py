"""The paper's labeling schemes: λ (2 bits), λ_ack (3 bits), λ_arb (3 bits).

A labeling scheme is a function computed with *complete knowledge of the
graph* that assigns each node a short bit string; the universal algorithms
(:mod:`repro.core.protocols`) then run knowing only those bits.  This module
implements:

* :func:`lambda_scheme` — Section 2.2.  ``x1`` marks nodes that ever belong to
  a dominating set ``DOM_i``; ``x2`` marks, for every node that stays in the
  dominating set across consecutive stages, one newly-informed witness
  neighbour that will tell it to stay.
* :func:`lambda_ack_scheme` — Section 3.1.  λ plus a third bit ``x3`` marking
  a node ``z`` that is informed last; ``z`` starts the acknowledgement chain.
  Fact 3.1 (labels ``101``, ``111``, ``011`` never occur) is asserted.
* :func:`lambda_arb_scheme` — Section 4.1.  A coordinator node ``r`` gets the
  reserved label ``111``; the rest of the graph is labeled by λ_ack computed
  *as if* ``r`` were the source.

Each function returns a :class:`Labeling` that bundles the label map with the
underlying :class:`~repro.core.sequences.SequenceConstruction`, so the
verification and benchmark layers can cross-examine the scheme against the
execution traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Set, Tuple

from ..graphs.graph import Graph, GraphError
from .labels import Label, distinct_labels, scheme_length
from .sequences import SequenceConstruction, build_sequences

__all__ = ["Labeling", "lambda_scheme", "lambda_ack_scheme", "lambda_arb_scheme"]

#: Labels that λ_ack provably never assigns (Fact 3.1); λ_arb reserves 111 for
#: the coordinator and 001 remains the unique label of the acknowledger z.
FORBIDDEN_ACK_LABELS = ("101", "111", "011")


@dataclass(frozen=True)
class Labeling:
    """A labeling scheme applied to one graph.

    Attributes
    ----------
    scheme:
        ``"lambda"``, ``"lambda_ack"`` or ``"lambda_arb"``.
    labels:
        Mapping node → label bit-string.
    source:
        The designated source (for λ / λ_ack), or ``None`` for λ_arb where the
        source is unknown at labeling time.
    coordinator:
        The coordinator ``r`` for λ_arb; ``None`` otherwise.
    acknowledger:
        The node ``z`` with ``x3 = 1`` (λ_ack / λ_arb); ``None`` for λ.
    construction:
        The Section 2.1 sequence construction the labels were derived from
        (for λ_arb this is the construction with ``r`` as source).
    """

    scheme: str
    labels: Dict[int, str]
    source: Optional[int]
    coordinator: Optional[int] = None
    acknowledger: Optional[int] = None
    construction: Optional[SequenceConstruction] = None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def label(self, node: int) -> str:
        """The bit string assigned to ``node``."""
        return self.labels[node]

    def parsed(self, node: int) -> Label:
        """The parsed :class:`~repro.core.labels.Label` of ``node``."""
        return Label.from_string(self.labels[node])

    @property
    def length(self) -> int:
        """The scheme length: maximum label length over all nodes."""
        return scheme_length(self.labels)

    def label_histogram(self) -> Dict[str, int]:
        """How many nodes carry each distinct label string."""
        return distinct_labels(self.labels)

    def num_distinct_labels(self) -> int:
        """Number of distinct label strings actually used."""
        return len(self.label_histogram())

    def as_dict(self) -> Dict[int, str]:
        """A plain copy of the node → label mapping."""
        return dict(self.labels)


# --------------------------------------------------------------------------- #
# λ — Section 2.2
# --------------------------------------------------------------------------- #
def lambda_scheme(
    graph: Graph,
    source: int,
    *,
    strategy: str = "prune",
    construction: Optional[SequenceConstruction] = None,
) -> Labeling:
    """Compute the 2-bit labeling scheme λ for ``(graph, source)``.

    Parameters
    ----------
    graph, source:
        The network and its designated source.
    strategy:
        Domination strategy for the underlying sequence construction.
    construction:
        A pre-computed sequence construction to reuse (must match the graph
        and source); mainly used by λ_ack to avoid recomputation.
    """
    seq = construction if construction is not None else build_sequences(graph, source, strategy)
    if seq.graph is not graph and seq.graph != graph:
        raise GraphError("provided construction was built for a different graph")
    if seq.source != source:
        raise GraphError("provided construction was built for a different source")

    x1: Dict[int, int] = {v: 0 for v in graph.nodes()}
    x2: Dict[int, int] = {v: 0 for v in graph.nodes()}

    # x1 = 1 iff the node belongs to DOM_i for some i.
    for stage in seq.stages:
        for v in stage.dom:
            x1[v] = 1

    # x2: for every i and every v ∈ DOM_{i+1} ∩ DOM_i, pick one neighbour
    # w ∈ NEW_i of v and set x2(w) = 1.  We pick the smallest-index witness so
    # the scheme is deterministic.  The structure of the construction makes the
    # picks conflict-free: each w ∈ NEW_i has exactly one neighbour in DOM_i,
    # so no node v ∈ DOM_{i+1} ∩ DOM_i ends up with two marked NEW_i
    # neighbours (which would cause a collision in round 2i).
    for i in range(1, seq.ell):
        dom_i = seq.dom(i)
        dom_next = seq.dom(i + 1)
        new_i = seq.new(i)
        for v in sorted(dom_next & dom_i):
            witnesses = sorted(graph.neighbors(v) & new_i)
            if not witnesses:
                raise GraphError(
                    f"no NEW_{i} witness adjacent to {v} ∈ DOM_{i+1} ∩ DOM_{i}; "
                    "this contradicts the minimality of DOM_i"
                )
            x2[witnesses[0]] = 1

    labels = {v: f"{x1[v]}{x2[v]}" for v in graph.nodes()}
    return Labeling(
        scheme="lambda",
        labels=labels,
        source=source,
        construction=seq,
    )


# --------------------------------------------------------------------------- #
# λ_ack — Section 3.1
# --------------------------------------------------------------------------- #
def lambda_ack_scheme(
    graph: Graph,
    source: int,
    *,
    strategy: str = "prune",
) -> Labeling:
    """Compute the 3-bit labeling scheme λ_ack for ``(graph, source)``.

    The scheme is λ plus a bit ``x3`` that is 1 at exactly one node ``z``
    chosen among the nodes informed **last** (i.e. in round ``2ℓ − 3``); we
    pick the smallest-index such node so the scheme is deterministic.  For the
    degenerate single-node and two-node graphs the acknowledger is the unique
    non-source node (or the source itself when it is alone).
    """
    base = lambda_scheme(graph, source, strategy=strategy)
    seq = base.construction
    assert seq is not None

    last = seq.last_informed_nodes()
    if last:
        z = min(last)
    else:
        # Single-node graph: no other node exists; by convention z is the source
        # (the "acknowledgement" is vacuous and the protocols special-case it).
        z = source

    x3 = {v: (1 if v == z else 0) for v in graph.nodes()}
    labels = {v: base.labels[v] + str(x3[v]) for v in graph.nodes()}

    # Fact 3.1: z's λ-bits are both 0, hence 101/111/011 never occur.
    if graph.n > 1:
        offending = [v for v, lab in labels.items() if lab in FORBIDDEN_ACK_LABELS]
        if offending:
            raise GraphError(
                f"Fact 3.1 violated: nodes {offending} received forbidden labels — "
                "this indicates a bug in the sequence construction"
            )

    return Labeling(
        scheme="lambda_ack",
        labels=labels,
        source=source,
        acknowledger=z,
        construction=seq,
    )


# --------------------------------------------------------------------------- #
# λ_arb — Section 4.1
# --------------------------------------------------------------------------- #
def lambda_arb_scheme(
    graph: Graph,
    *,
    coordinator: Optional[int] = None,
    strategy: str = "prune",
) -> Labeling:
    """Compute the 3-bit labeling scheme λ_arb (source unknown at labeling time).

    Parameters
    ----------
    graph:
        The network.  No source is designated; any node may later turn out to
        hold the message.
    coordinator:
        The node ``r`` that receives the reserved label ``111`` and coordinates
        the three-phase algorithm B_arb.  The paper chooses it arbitrarily; we
        default to node 0 for determinism.
    """
    if graph.n == 0:
        raise GraphError("cannot label an empty graph")
    r = 0 if coordinator is None else coordinator
    if r not in graph:
        raise GraphError(f"coordinator {r} is not a node of {graph!r}")

    if graph.n == 1:
        # Degenerate case: the only node is simultaneously r, z and the source.
        return Labeling(
            scheme="lambda_arb",
            labels={r: "111"},
            source=None,
            coordinator=r,
            acknowledger=r,
            construction=None,
        )

    ack = lambda_ack_scheme(graph, r, strategy=strategy)
    labels = dict(ack.labels)
    labels[r] = "111"
    return Labeling(
        scheme="lambda_arb",
        labels=labels,
        source=None,
        coordinator=r,
        acknowledger=ack.acknowledger,
        construction=ack.construction,
    )

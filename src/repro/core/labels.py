"""Label representation for the paper's constant-length labeling schemes.

A label is a short binary string assigned to each node by the labeling scheme
(which knows the whole graph); the universal algorithms read only these bits.

* Scheme λ (Section 2.2) uses two bits ``x1 x2``.
* Scheme λ_ack (Section 3.1) appends a third bit ``x3`` marking the special
  node ``z`` that initiates the acknowledgement.
* Scheme λ_arb (Section 4.1) reuses the λ_ack bits and reserves the string
  ``111`` for the coordinator node ``r`` (λ_ack provably never emits it —
  Fact 3.1).

:class:`Label` is a tiny immutable value object that parses/serialises these
strings and exposes the individual bits by the paper's names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

__all__ = ["Label", "label_length", "scheme_length", "distinct_labels"]


@dataclass(frozen=True)
class Label:
    """An ``x1 x2 [x3]`` bit label.

    Attributes
    ----------
    x1:
        "join the dominating set two rounds after being informed" bit.
    x2:
        "send a *stay* message one round after being informed" bit.
    x3:
        "initiate the acknowledgement" bit (only used by λ_ack / λ_arb).
    width:
        Number of bits the label is serialised with (2 or 3).
    """

    x1: int = 0
    x2: int = 0
    x3: int = 0
    width: int = 2

    def __post_init__(self) -> None:
        for name in ("x1", "x2", "x3"):
            bit = getattr(self, name)
            if bit not in (0, 1):
                raise ValueError(f"label bit {name} must be 0 or 1, got {bit!r}")
        if self.width not in (1, 2, 3):
            raise ValueError(f"label width must be 1, 2 or 3, got {self.width}")
        if self.width < 3 and self.x3:
            raise ValueError("x3 can only be set on width-3 labels")
        if self.width < 2 and self.x2:
            raise ValueError("x2 can only be set on labels of width >= 2")

    # ------------------------------------------------------------------ #
    # parsing / formatting
    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(cls, text: str) -> "Label":
        """Parse a label string such as ``"10"`` or ``"001"``.

        Missing trailing bits default to 0; the width is taken from the string
        length, so ``"10"`` is a 2-bit label and ``"100"`` a 3-bit one.
        """
        if not text or any(c not in "01" for c in text):
            raise ValueError(f"label string must be a non-empty bit string, got {text!r}")
        if len(text) > 3:
            raise ValueError(f"labels in this reproduction are at most 3 bits, got {text!r}")
        bits = [int(c) for c in text] + [0, 0]
        return cls(x1=bits[0], x2=bits[1], x3=bits[2], width=len(text))

    def to_string(self) -> str:
        """Serialise to the bit string of the declared width."""
        bits = [self.x1, self.x2, self.x3][: self.width]
        return "".join(str(b) for b in bits)

    def widened(self, width: int) -> "Label":
        """Return the same bits serialised at a (possibly larger) width."""
        if width < self.width:
            raise ValueError(f"cannot narrow a width-{self.width} label to {width}")
        return Label(x1=self.x1, x2=self.x2, x3=self.x3, width=width)

    def with_bits(self, *, x1: int | None = None, x2: int | None = None,
                  x3: int | None = None) -> "Label":
        """Return a copy with the given bits replaced."""
        return Label(
            x1=self.x1 if x1 is None else x1,
            x2=self.x2 if x2 is None else x2,
            x3=self.x3 if x3 is None else x3,
            width=self.width,
        )

    def __str__(self) -> str:
        return self.to_string()


def label_length(label: str) -> int:
    """Length in bits of a single label string."""
    return len(label)


def scheme_length(labels: Mapping[int, str]) -> int:
    """Length of a labeling scheme: the maximum label length it assigns (paper §1.1)."""
    return max((len(v) for v in labels.values()), default=0)


def distinct_labels(labels: Mapping[int, str]) -> Dict[str, int]:
    """Histogram of distinct label strings used by a scheme."""
    hist: Dict[str, int] = {}
    for lab in labels.values():
        hist[lab] = hist.get(lab, 0) + 1
    return hist

"""Algorithm B — the universal broadcast algorithm of Section 2 (Algorithm 1).

Every node runs the same deterministic rule, knowing only its 2-bit label
``x1 x2`` and its own history:

* The source transmits µ in its first round (it has the message and has never
  sent or received anything).
* A node that does not yet know µ listens; the first non-"stay" message it
  hears *is* µ.
* A node that first received µ two rounds ago transmits µ now iff ``x1 = 1``
  (it joins the dominating set).
* A node that first received µ one round ago transmits the constant-size
  "stay" message now iff ``x2 = 1`` (it tells its dominator to stay).
* A node that transmitted µ two rounds ago and heard "stay" one round ago
  transmits µ again (it stays in the dominating set).

Together with the labeling scheme λ this informs every node within ``2n − 3``
rounds (Theorem 2.9); Lemma 2.8 characterises exactly who transmits and who is
newly informed in every round, and :mod:`repro.core.verify` checks our traces
against that characterisation.
"""

from __future__ import annotations

from typing import Any, Optional

from ...radio.messages import Message, source_message, stay_message
from .base import UniversalNode

__all__ = ["BroadcastNode", "make_broadcast_node"]


class BroadcastNode(UniversalNode):
    """Per-node state machine implementing Algorithm 1."""

    def decide(self, local_round: int) -> Optional[Message]:
        """Apply the Algorithm 1 round body at the start of ``local_round``."""
        # Lines 2-3: the source transmits µ in its first active round.
        if not self.ever_communicated and self.knows_source_message:
            return source_message(self.sourcemsg)

        # Lines 4-7: uninformed nodes listen (reception handled in on_receive).
        if not self.knows_source_message:
            return None

        # Lines 9-12: newly informed two rounds ago — join the dominating set if x1.
        if self.first_received_in(local_round - 2):
            if self.bits.x1 == 1:
                return source_message(self.sourcemsg)
            return None

        # Lines 13-16: newly informed one round ago — ask the dominator to stay if x2.
        if self.first_received_in(local_round - 1):
            if self.bits.x2 == 1:
                return stay_message()
            return None

        # Lines 17-19: stayed in the dominating set — retransmit µ.
        if (
            self.sent_kind_in(local_round - 2, "source") is not None
            and self.heard_kind_in(local_round - 1, "stay") is not None
        ):
            return source_message(self.sourcemsg)

        return None

    def on_receive(self, local_round: int, message: Message) -> None:
        """Lines 5-7: adopt the first non-"stay" message heard as µ."""
        if not self.knows_source_message and not message.is_stay:
            self.record_source_receipt(local_round, message)


def make_broadcast_node(node_id: int, label: str, is_source: bool,
                        source_payload: Any) -> BroadcastNode:
    """Node factory for :class:`~repro.radio.engine.RadioSimulator` runs of B."""
    return BroadcastNode(node_id, label, is_source=is_source, source_payload=source_payload)

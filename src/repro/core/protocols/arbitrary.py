"""Algorithm B_arb — broadcast from an arbitrary (undesignated) source (Section 4).

The labeling scheme λ_arb does not know which node will hold the source
message.  It picks an arbitrary *coordinator* ``r``, gives it the reserved
label ``111``, and labels everybody else with λ_ack computed as if ``r`` were
the source.  The universal algorithm then runs three phases, all rooted at
``r`` (whose label tells it to act as coordinator):

1. **initialize** — an acknowledged broadcast (B_ack) of an "initialize"
   message from ``r``.  Every node ``v`` records ``t_v``, the round stamp of
   the first "initialize" it hears (``t_r = 0``).  The acknowledger ``z``
   appends ``T = t_z`` to its ack, so when the chain reaches ``r`` the
   coordinator knows ``T`` — the number of rounds a broadcast from ``r`` needs
   to reach the whole network.
2. **ready** — an acknowledged broadcast of ``("ready", T)`` from ``r``, with
   the modification that ``z`` stays silent; instead the *actual source*
   ``s_G`` (the node that holds µ), after receiving "ready" and waiting ``T``
   rounds, starts the acknowledgement chain and appends µ to it.  When the
   chain reaches ``r``, the coordinator knows µ, and every node knows ``T``.
3. **broadcast** — a plain B broadcast of µ from ``r``.  Node ``v`` receives µ
   exactly ``t_v`` rounds into the phase and then waits ``T − t_v`` rounds, so
   all nodes learn that broadcast is complete in a *common* round.

Two corner cases the paper leaves implicit are handled explicitly (and
documented in DESIGN.md):

* **Ack-chain run-off.**  The coordinator may overhear an intermediate ack of
  a still-running chain (a relayer that happens to be its neighbour).  If it
  started the next phase immediately, the remaining chain hops could collide
  with the new broadcast.  The coordinator therefore waits ``T`` extra rounds
  after hearing an ack before starting the next phase; ``T`` always exceeds
  the remaining chain length, so the guard preserves correctness and only adds
  ``O(n)`` rounds.
* **The coordinator holds the message** (``s_G = r``).  Then ``r`` never hears
  the phase-2 "ready" message itself, so nobody would start the phase-2 ack.
  Since ``r`` already has µ, it simply skips waiting for that ack: it still
  broadcasts ``("ready", T)`` so every node learns ``T``, waits ``T`` rounds
  for that broadcast to finish, and proceeds to phase 3.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from ...radio.messages import (
    ACK,
    INITIALIZE,
    Message,
    READY,
    SOURCE,
    ack_message,
    initialize_message,
    ready_message,
    source_message,
    stay_message,
)
from .base import UniversalNode

__all__ = ["ArbitrarySourceNode", "make_arbitrary_node", "COORDINATOR_LABEL"]

#: The reserved coordinator label (never produced by λ_ack — Fact 3.1).
COORDINATOR_LABEL = "111"

#: The message kinds that act as "the payload being broadcast" in each phase.
_BROADCAST_KINDS = (INITIALIZE, READY, SOURCE)


class _PhaseState:
    """Per-phase B_ack bookkeeping local to one node."""

    __slots__ = ("informed_local", "informed_stamp", "payload", "transmit_stamps")

    def __init__(self) -> None:
        self.informed_local: Optional[int] = None
        self.informed_stamp: Optional[int] = None
        self.payload: Any = None
        self.transmit_stamps: Set[int] = set()

    @property
    def informed(self) -> bool:
        return self.informed_local is not None


class ArbitrarySourceNode(UniversalNode):
    """Per-node state machine implementing B_arb.

    ``is_source`` marks the node that initially holds µ (the paper's ``s_G``);
    the coordinator role is recognised purely from the label ``111``.
    """

    def __init__(self, node_id: int, label: str, *, is_source: bool = False,
                 source_payload: Any = None) -> None:
        super().__init__(node_id, label, is_source=is_source, source_payload=source_payload)
        self.is_coordinator = label == COORDINATOR_LABEL
        self.holds_message = is_source
        self.t_v: Optional[int] = 0 if self.is_coordinator else None
        self.T: Optional[int] = None
        self.phase: Dict[str, _PhaseState] = {kind: _PhaseState() for kind in _BROADCAST_KINDS}
        self.completion_known_local_round: Optional[int] = None
        # Coordinator scheduling state.
        self._clock_origin: Optional[int] = None
        self._scheduled_ready_round: Optional[int] = None
        self._scheduled_source_round: Optional[int] = None
        self._ready_sent_local_round: Optional[int] = None
        self._learned_payload: Any = source_payload if is_source else None
        # Actual-source scheduling state (phase-2 ack timer).
        self._scheduled_source_ack_round: Optional[int] = None

    # ------------------------------------------------------------------ #
    # decision rule
    # ------------------------------------------------------------------ #
    def decide(self, local_round: int) -> Optional[Message]:
        """Evaluate the B_arb round body (coordinator rules first, then the
        shared B_ack rules)."""
        msg = self._coordinator_decision(local_round)
        if msg is not None:
            return msg

        # The actual source starts the phase-2 acknowledgement after its timer.
        if self._scheduled_source_ack_round == local_round:
            ready = self.phase[READY]
            return ack_message(ready.informed_stamp or 0, payload=self._learned_payload)

        # Shared B_ack rules, evaluated per phase (phases never overlap in time).
        for kind in _BROADCAST_KINDS:
            ph = self.phase[kind]
            if not ph.informed:
                continue
            # Informed two rounds ago: join the dominating set if x1.
            if ph.informed_local == local_round - 2 and self.bits.x1 == 1:
                stamp = (ph.informed_stamp or 0) + 2
                ph.transmit_stamps.add(stamp)
                return Message(kind, payload=ph.payload, round_stamp=stamp)
            # Informed one round ago: start the ack (phase 1, x3) or send "stay" (x2).
            if ph.informed_local == local_round - 1:
                if kind == INITIALIZE and self.bits.x3 == 1:
                    # z appends T = t_z to the ack so it survives relaying.
                    return ack_message(ph.informed_stamp or 0, payload=ph.informed_stamp or 0)
                if self.bits.x2 == 1:
                    return stay_message(round_stamp=(ph.informed_stamp or 0) + 1)

        # Stay-triggered retransmission: heard "stay" one round after transmitting
        # a broadcast payload.  Works for every phase and also for the coordinator
        # (the phase source), exactly as in B / B_ack.
        stay = self.heard_kind_in(local_round - 1, "stay")
        if stay is not None:
            previous = self.sent_in(local_round - 2)
            if previous is not None and previous.kind in _BROADCAST_KINDS:
                stamp = (stay.round_stamp or 0) + 1
                if not self.is_coordinator:
                    self.phase[previous.kind].transmit_stamps.add(stamp)
                return Message(previous.kind, payload=previous.payload, round_stamp=stamp)

        # Ack relaying: heard (ack, k) and k is one of our payload-transmission rounds.
        ack = self.heard_kind_in(local_round - 1, "ack")
        if ack is not None and not self.is_coordinator and ack.round_stamp is not None:
            for kind in _BROADCAST_KINDS:
                ph = self.phase[kind]
                if ack.round_stamp in ph.transmit_stamps:
                    return ack_message(ph.informed_stamp or 0, payload=ack.payload)

        return None

    def _coordinator_decision(self, local_round: int) -> Optional[Message]:
        """Phase-starting transmissions of the coordinator ``r``."""
        if not self.is_coordinator:
            return None
        # Phase 1: transmit "initialize" spontaneously in the first active round.
        if not self.ever_communicated:
            self._clock_origin = local_round
            return initialize_message(round_stamp=1)
        # Phase 2: broadcast ("ready", T) once the guard delay has elapsed.
        if self._scheduled_ready_round == local_round and self.T is not None:
            self._ready_sent_local_round = local_round
            if self.holds_message:
                # r is itself the source: it will never hear a phase-2 ack, so
                # schedule phase 3 directly after the ready broadcast finishes.
                self._scheduled_source_round = local_round + self.T + 1
            return ready_message(self.T, round_stamp=self._global_round(local_round))
        # Phase 3: broadcast µ with plain B once it is known and the guard elapsed.
        if self._scheduled_source_round == local_round and self._learned_payload is not None:
            if self.T is not None:
                self.completion_known_local_round = local_round + self.T - 1
            return source_message(self._learned_payload,
                                  round_stamp=self._global_round(local_round))
        return None

    # ------------------------------------------------------------------ #
    # reception
    # ------------------------------------------------------------------ #
    def on_receive(self, local_round: int, message: Message) -> None:
        """Record phase receipts, timers and the coordinator's ack handling."""
        if message.kind in _BROADCAST_KINDS:
            self._receive_broadcast_payload(local_round, message)
        elif message.is_ack:
            self._receive_ack(local_round, message)

    def _receive_broadcast_payload(self, local_round: int, message: Message) -> None:
        if self.is_coordinator:
            # The coordinator originated these broadcasts; overheard copies
            # carry no new information for it.
            return
        ph = self.phase[message.kind]
        if ph.informed:
            return
        ph.informed_local = local_round
        ph.informed_stamp = message.round_stamp
        ph.payload = message.payload
        if message.kind == INITIALIZE:
            self.t_v = message.round_stamp
        elif message.kind == READY:
            self.T = int(message.payload)
            if self.holds_message:
                # The actual source waits T rounds, then starts the phase-2 ack.
                self._scheduled_source_ack_round = local_round + self.T + 1
        elif message.kind == SOURCE:
            self.record_source_receipt(local_round, message)
            if self.T is not None and self.t_v is not None:
                self.completion_known_local_round = local_round + (self.T - self.t_v)

    def _receive_ack(self, local_round: int, message: Message) -> None:
        if not self.is_coordinator:
            return
        if self.T is None:
            # First ack of phase 1: learn T, schedule phase 2 after the guard delay.
            self.T = int(message.payload) if message.payload is not None else 0
            self._scheduled_ready_round = local_round + self.T + 1
            return
        if (
            self._ready_sent_local_round is not None
            and local_round > self._ready_sent_local_round
            and self._scheduled_source_round is None
        ):
            # First ack of phase 2: learn µ, schedule phase 3 after the guard delay.
            self._learned_payload = message.payload
            self.sourcemsg = message.payload
            self._scheduled_source_round = local_round + (self.T or 0) + 1

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _global_round(self, local_round: int) -> int:
        """Round number on the clock that started at 1 with the coordinator's
        first transmission (only meaningful for the coordinator)."""
        if self._clock_origin is None:
            return local_round
        return local_round - self._clock_origin + 1

    @property
    def knows_completion(self) -> bool:
        """True once the node knows (in a common round) that broadcast finished."""
        return self.completion_known_local_round is not None


def make_arbitrary_node(node_id: int, label: str, is_source: bool,
                        source_payload: Any) -> ArbitrarySourceNode:
    """Node factory for :class:`~repro.radio.engine.RadioSimulator` runs of B_arb."""
    return ArbitrarySourceNode(node_id, label, is_source=is_source, source_payload=source_payload)

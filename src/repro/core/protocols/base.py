"""Shared machinery for the paper's universal protocols.

All three algorithms (B, B_ack, B_arb) are *universal*: a node's behaviour may
depend only on its label and on the messages it has heard, never on the
topology, the network size, or its identifier.  :class:`UniversalNode` factors
out the bookkeeping they share — parsing the label bits and remembering when
the source message was first received — while leaving the per-round decision
to subclasses.
"""

from __future__ import annotations

from typing import Any, Optional

from ...radio.messages import Message
from ...radio.node import RadioNode
from ..labels import Label

__all__ = ["UniversalNode"]


class UniversalNode(RadioNode):
    """Base class for the paper's protocol nodes.

    Tracks the two pieces of state every algorithm in the paper relies on:

    * ``sourcemsg`` — the payload µ once known (the source starts with it);
    * ``informed_local_round`` — the local round in which µ was *first*
      received (``None`` for the source, which never receives it).
    """

    def __init__(self, node_id: int, label: str, *, is_source: bool = False,
                 source_payload: Any = None) -> None:
        super().__init__(node_id, label, is_source=is_source, source_payload=source_payload)
        self.bits = Label.from_string(label)
        self.sourcemsg: Any = source_payload if is_source else None
        self.informed_local_round: Optional[int] = None
        self.informed_stamp: Optional[int] = None

    # ------------------------------------------------------------------ #
    # helpers shared by the concrete protocols
    # ------------------------------------------------------------------ #
    @property
    def knows_source_message(self) -> bool:
        """True once the node holds µ (initially true only at the source)."""
        return self.sourcemsg is not None

    def record_source_receipt(self, local_round: int, message: Message) -> None:
        """Store µ and remember when (and with which stamp) it first arrived."""
        if self.sourcemsg is None:
            self.sourcemsg = message.payload
            self.informed_local_round = local_round
            self.informed_stamp = message.round_stamp

    def first_received_in(self, local_round: int) -> bool:
        """True if µ was first received exactly in the given local round."""
        return self.informed_local_round == local_round

    def heard_kind_in(self, local_round: int, kind: str) -> Optional[Message]:
        """The message of the given kind heard in ``local_round``, if any."""
        msg = self.heard_in(local_round)
        if msg is not None and msg.kind == kind:
            return msg
        return None

    def sent_kind_in(self, local_round: int, kind: str) -> Optional[Message]:
        """The message of the given kind transmitted in ``local_round``, if any."""
        msg = self.sent_in(local_round)
        if msg is not None and msg.kind == kind:
            return msg
        return None

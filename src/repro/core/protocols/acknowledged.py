"""Algorithm B_ack — acknowledged broadcast (Section 3, Algorithm 2).

B_ack is Algorithm B with two additions:

1. Every transmission of µ or "stay" carries a *round stamp*: the source stamps
   its first transmission with 1 (its first round); every other stamp is
   derived from a received stamp (+2 for the "informed two rounds ago" rule,
   +1 for "stay", +1 for the stay-triggered retransmission), so a message
   stamped ``t`` is transmitted exactly in round ``t`` of the source's clock
   (Lemma 3.5).  Each node remembers the stamp of the message that informed it
   (``informedRound``) and the stamps of its own µ transmissions
   (``transmitRounds``).

2. The unique node ``z`` with ``x3 = 1`` — chosen by λ_ack among the nodes
   informed last — transmits an ``ack`` carrying its ``informedRound`` one
   round after being informed.  A node that hears ``(ack, k)`` and has ``k`` in
   its ``transmitRounds`` knows it was the informer of the acker, and relays
   ``(ack, informedRound)``.  The chain walks back along strictly decreasing
   informing rounds (Lemma 3.7) until the source hears an ack, by round
   ``3ℓ − 4`` (Corollary 3.8).

The per-node rule below is a line-by-line transcription of Algorithm 2.
"""

from __future__ import annotations

from typing import Any, Optional, Set

from ...radio.messages import Message, ack_message, source_message, stay_message
from .base import UniversalNode

__all__ = ["AcknowledgedBroadcastNode", "make_acknowledged_node"]


class AcknowledgedBroadcastNode(UniversalNode):
    """Per-node state machine implementing Algorithm 2.

    The extra attributes mirror the paper's variables:

    * ``informed_stamp``  — the paper's ``informedRound`` (stamp of the message
      that delivered µ); ``None`` at the source.
    * ``transmit_stamps`` — the paper's ``transmitRounds``; only non-source
      nodes maintain it.
    * ``acknowledged``    — set at the source when it first hears an ack.
    * ``ack_payload``     — optional payload to append when *this* node starts
      the ack chain (used by B_arb's phase 1, where z appends its timestamp).
    """

    def __init__(self, node_id: int, label: str, *, is_source: bool = False,
                 source_payload: Any = None, ack_payload: Any = None) -> None:
        super().__init__(node_id, label, is_source=is_source, source_payload=source_payload)
        self.transmit_stamps: Set[int] = set()
        self.acknowledged_local_round: Optional[int] = None
        self.ack_payload = ack_payload

    # ------------------------------------------------------------------ #
    # Algorithm 2 round body
    # ------------------------------------------------------------------ #
    def decide(self, local_round: int) -> Optional[Message]:
        """Apply the Algorithm 2 round body at the start of ``local_round``."""
        # Lines 4-5: the source transmits (µ, 1) in its first active round.
        if not self.ever_communicated and self.knows_source_message:
            return source_message(self.sourcemsg, round_stamp=1)

        # Lines 6-10: uninformed nodes listen.
        if not self.knows_source_message:
            return None

        # Lines 12-16: informed two rounds ago — join the dominating set if x1.
        if self.first_received_in(local_round - 2):
            if self.bits.x1 == 1:
                stamp = self._informed_stamp() + 2
                self.transmit_stamps.add(stamp)
                return source_message(self.sourcemsg, round_stamp=stamp)
            return None

        # Lines 17-22: informed one round ago — start the ack (x3) or send "stay" (x2).
        if self.first_received_in(local_round - 1):
            if self.bits.x3 == 1:
                return ack_message(self._informed_stamp(), payload=self.ack_payload)
            if self.bits.x2 == 1:
                return stay_message(round_stamp=self._informed_stamp() + 1)
            return None

        # Lines 23-27: heard (stay, k) last round after transmitting µ two rounds ago.
        stay = self.heard_kind_in(local_round - 1, "stay")
        if stay is not None:
            if self.sent_kind_in(local_round - 2, "source") is not None:
                stamp = (stay.round_stamp or 0) + 1
                if not self.is_source:
                    self.transmit_stamps.add(stamp)
                return source_message(self.sourcemsg, round_stamp=stamp)
            return None

        # Lines 28-31: heard (ack, k) last round — relay if we transmitted µ in round k.
        ack = self.heard_kind_in(local_round - 1, "ack")
        if ack is not None and not self.is_source:
            if ack.round_stamp in self.transmit_stamps:
                return ack_message(self._informed_stamp(), payload=ack.payload)
            return None

        return None

    # ------------------------------------------------------------------ #
    # reception
    # ------------------------------------------------------------------ #
    def on_receive(self, local_round: int, message: Message) -> None:
        """Lines 7-10 plus the source-side ack bookkeeping."""
        if not self.knows_source_message and not message.is_stay and not message.is_ack:
            self.record_source_receipt(local_round, message)
        if message.is_ack and self.is_source and self.acknowledged_local_round is None:
            self.acknowledged_local_round = local_round

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _informed_stamp(self) -> int:
        """The paper's ``informedRound``; defensively 0 if the stamp was missing."""
        return self.informed_stamp if self.informed_stamp is not None else 0

    @property
    def has_acknowledged(self) -> bool:
        """True at the source once an ack has been heard."""
        return self.acknowledged_local_round is not None


def make_acknowledged_node(node_id: int, label: str, is_source: bool,
                           source_payload: Any) -> AcknowledgedBroadcastNode:
    """Node factory for :class:`~repro.radio.engine.RadioSimulator` runs of B_ack."""
    return AcknowledgedBroadcastNode(
        node_id, label, is_source=is_source, source_payload=source_payload
    )

"""Universal deterministic protocols: Algorithm B, B_ack and B_arb."""

from .acknowledged import AcknowledgedBroadcastNode, make_acknowledged_node
from .arbitrary import ArbitrarySourceNode, COORDINATOR_LABEL, make_arbitrary_node
from .base import UniversalNode
from .broadcast import BroadcastNode, make_broadcast_node

__all__ = [
    "AcknowledgedBroadcastNode",
    "ArbitrarySourceNode",
    "BroadcastNode",
    "COORDINATOR_LABEL",
    "UniversalNode",
    "make_acknowledged_node",
    "make_arbitrary_node",
    "make_broadcast_node",
]

"""The five set sequences of Section 2.1.

Given a connected graph ``G`` and a source ``s``, the labeling scheme is built
from five sequences of node sets, indexed by stage ``i ≥ 1``:

* ``INF_i``      — nodes informed before round ``2i − 1``;
* ``UNINF_i``    — nodes not yet informed before round ``2i − 1``;
* ``FRONTIER_i`` — uninformed nodes adjacent to at least one informed node;
* ``DOM_i``      — a *minimal* subset of ``DOM_{i-1} ∪ NEW_{i-1}`` dominating
  ``FRONTIER_i`` (these are the nodes that transmit µ in round ``2i − 1``);
* ``NEW_i``      — frontier nodes adjacent to **exactly one** node of
  ``DOM_i`` (these are the nodes newly informed in round ``2i − 1``).

The construction stops at the smallest ``ℓ`` with ``INF_ℓ = V(G)``.  This
module computes the sequences, exposes them as immutable :class:`Stage`
records, and implements every structural fact the paper proves about them
(Facts 2.1–2.2, Lemmas 2.3–2.6, Corollary 2.7) as checkable assertions used by
the test-suite and by :mod:`repro.core.verify`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..graphs.graph import Graph, GraphError
from ..graphs.traversal import is_connected
from .domination import minimal_dominating_subset

__all__ = ["Stage", "SequenceConstruction", "build_sequences"]


@dataclass(frozen=True)
class Stage:
    """The five sets of one stage ``i`` of the construction."""

    index: int
    informed: FrozenSet[int]
    uninformed: FrozenSet[int]
    frontier: FrozenSet[int]
    dom: FrozenSet[int]
    new: FrozenSet[int]

    def __repr__(self) -> str:
        return (
            f"Stage(i={self.index}, |INF|={len(self.informed)}, "
            f"|FRONTIER|={len(self.frontier)}, |DOM|={len(self.dom)}, |NEW|={len(self.new)})"
        )


@dataclass(frozen=True)
class SequenceConstruction:
    """The full sequence construction for one (graph, source) pair.

    Attributes
    ----------
    graph, source:
        The inputs.
    stages:
        ``stages[i - 1]`` holds stage ``i``; the last stage is stage ``ℓ``
        (the first with ``INF_i = V``), for which ``FRONTIER = DOM = NEW = ∅``.
    strategy:
        The domination strategy used to pick each ``DOM_i``.
    """

    graph: Graph
    source: int
    stages: Tuple[Stage, ...]
    strategy: str

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def ell(self) -> int:
        """The paper's ℓ: the smallest stage index with ``INF_i = V(G)``."""
        return len(self.stages)

    def stage(self, i: int) -> Stage:
        """Stage ``i`` (1-indexed, ``1 ≤ i ≤ ℓ``)."""
        if not (1 <= i <= self.ell):
            raise IndexError(f"stage {i} not in 1..{self.ell}")
        return self.stages[i - 1]

    def dom(self, i: int) -> FrozenSet[int]:
        """``DOM_i`` (empty for ``i > ℓ``)."""
        return self.stages[i - 1].dom if i <= self.ell else frozenset()

    def new(self, i: int) -> FrozenSet[int]:
        """``NEW_i`` (empty for ``i > ℓ``)."""
        return self.stages[i - 1].new if i <= self.ell else frozenset()

    def frontier(self, i: int) -> FrozenSet[int]:
        """``FRONTIER_i`` (empty for ``i > ℓ``)."""
        return self.stages[i - 1].frontier if i <= self.ell else frozenset()

    def informed(self, i: int) -> FrozenSet[int]:
        """``INF_i`` (the whole node set for ``i > ℓ``)."""
        if i <= self.ell:
            return self.stages[i - 1].informed
        return frozenset(range(self.graph.n))

    # ------------------------------------------------------------------ #
    # derived maps used by the labeling scheme and the verifier
    # ------------------------------------------------------------------ #
    def dom_membership(self) -> Dict[int, List[int]]:
        """Map node → sorted list of stage indices ``i`` with ``v ∈ DOM_i``."""
        member: Dict[int, List[int]] = {}
        for stage in self.stages:
            for v in stage.dom:
                member.setdefault(v, []).append(stage.index)
        return member

    def new_stage_of(self) -> Dict[int, int]:
        """Map node → the unique stage ``i`` with ``v ∈ NEW_i`` (Corollary 2.7)."""
        out: Dict[int, int] = {}
        for stage in self.stages:
            for v in stage.new:
                out[v] = stage.index
        return out

    def informed_round(self, v: int) -> int:
        """The round in which ``v`` first receives µ under Algorithm B.

        The source is informed "in round 0" by convention; every other node
        ``v ∈ NEW_i`` is informed in round ``2i − 1`` (Lemma 2.8 1(b)).
        """
        if v == self.source:
            return 0
        stage = self.new_stage_of().get(v)
        if stage is None:
            raise GraphError(f"node {v} never appears in a NEW set — graph disconnected?")
        return 2 * stage - 1

    def last_informed_nodes(self) -> FrozenSet[int]:
        """``NEW_{ℓ-1}`` — the nodes informed last (used by λ_ack to pick ``z``)."""
        if self.ell < 2:
            return frozenset()
        return self.stage(self.ell - 1).new

    def broadcast_rounds(self) -> int:
        """Round in which the last node is informed: ``2ℓ − 3`` (0 for a single node)."""
        if self.ell < 2:
            return 0
        return 2 * self.ell - 3

    # ------------------------------------------------------------------ #
    # structural facts from the paper, as checkable predicates
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Assert every structural fact of Section 2.1; raise AssertionError otherwise.

        Covers Fact 2.1, Fact 2.2, Lemma 2.3, Lemma 2.4, Lemma 2.6 and
        Corollary 2.7 plus the defining properties of each stage.
        """
        g = self.graph
        all_nodes = frozenset(range(g.n))
        ell = self.ell
        assert ell <= max(g.n, 1), f"Lemma 2.6 violated: ell={ell} > n={g.n}"
        seen_new: set = set()
        for idx, stage in enumerate(self.stages, start=1):
            assert stage.index == idx
            # Fact 2.1: NEW_i ⊆ FRONTIER_i ⊆ UNINF_i
            assert stage.new <= stage.frontier <= stage.uninformed, (
                f"Fact 2.1 violated at stage {idx}"
            )
            # Fact 2.2: INF_i = {source} ∪ NEW_1 ∪ ... ∪ NEW_{i-1}, UNINF_i is its complement
            assert stage.informed == frozenset({self.source}) | frozenset(seen_new), (
                f"Fact 2.2 violated at stage {idx}"
            )
            assert stage.uninformed == all_nodes - stage.informed
            # FRONTIER_i = UNINF_i ∩ Γ(INF_i)
            assert stage.frontier == stage.uninformed & g.neighborhood(stage.informed), (
                f"frontier definition violated at stage {idx}"
            )
            # DOM_i dominates FRONTIER_i and is minimal
            for t in stage.frontier:
                assert g.neighbors(t) & stage.dom, f"DOM_{idx} fails to dominate {t}"
            for v in stage.dom:
                rest = stage.dom - {v}
                assert not all(g.neighbors(t) & rest for t in stage.frontier), (
                    f"DOM_{idx} is not minimal: {v} is redundant"
                )
            # NEW_i = frontier nodes with exactly one DOM_i neighbour
            expected_new = frozenset(
                t for t in stage.frontier if len(g.neighbors(t) & stage.dom) == 1
            )
            assert stage.new == expected_new, f"NEW_{idx} mismatch"
            # Lemma 2.3: NEW sets are pairwise disjoint
            assert not (stage.new & seen_new), f"Lemma 2.3 violated at stage {idx}"
            seen_new |= stage.new
            # Lemma 2.4: progress while not finished
            if stage.informed != all_nodes:
                assert stage.new, f"Lemma 2.4 violated at stage {idx}: no progress"
        final = self.stages[-1]
        assert final.informed == all_nodes, "construction stopped before INF = V"
        assert not final.new and not final.dom and not final.frontier, (
            "final stage must have empty FRONTIER/DOM/NEW sets"
        )
        # Corollary 2.7: NEW_1..NEW_{ℓ-1} partition V \ {source}
        assert frozenset(seen_new) == all_nodes - {self.source}, (
            "Corollary 2.7 violated: NEW sets do not partition V \\ {source}"
        )


def build_sequences(
    graph: Graph, source: int, strategy: str = "prune"
) -> SequenceConstruction:
    """Run the Section 2.1 construction on ``(graph, source)``.

    Parameters
    ----------
    graph:
        A connected graph.
    source:
        The distinguished source node ``s_G``.
    strategy:
        Domination strategy used to choose each ``DOM_i`` (see
        :mod:`repro.core.domination`).

    Returns
    -------
    SequenceConstruction
        The stages ``1..ℓ`` where ``ℓ`` is the first stage with every node
        informed.  The final stage has empty frontier/DOM/NEW sets.
    """
    if source not in graph:
        raise GraphError(f"source {source} is not a node of {graph!r}")
    if not is_connected(graph):
        raise GraphError("the paper's model requires a connected graph")

    all_nodes = frozenset(range(graph.n))
    stages: List[Stage] = []

    # Stage 1 initialisation (paper: INF1={s}, UNINF1=V−{s}, FRONTIER1=NEW1=Γ(s), DOM1={s}).
    informed = frozenset({source})
    uninformed = all_nodes - informed
    if informed == all_nodes:
        # Single-node graph: stage 1 already has everyone informed.
        stages.append(
            Stage(1, informed, frozenset(), frozenset(), frozenset(), frozenset())
        )
        return SequenceConstruction(graph, source, tuple(stages), strategy)

    frontier = graph.neighborhood({source}) & uninformed
    dom = frozenset({source})
    new = frontier  # every neighbour of the unique transmitter hears it
    stages.append(Stage(1, informed, uninformed, frontier, dom, new))

    prev_dom, prev_new = dom, new
    prev_informed, prev_uninformed = informed, uninformed
    i = 1
    while True:
        i += 1
        informed = prev_informed | prev_new
        uninformed = prev_uninformed - prev_new
        if informed == all_nodes:
            stages.append(
                Stage(i, informed, uninformed, frozenset(), frozenset(), frozenset())
            )
            break
        frontier = uninformed & graph.neighborhood(informed)
        candidates = prev_dom | prev_new
        dom = minimal_dominating_subset(graph, candidates, frontier, strategy=strategy)
        new = frozenset(
            t for t in frontier if len(graph.neighbors(t) & dom) == 1
        )
        stages.append(Stage(i, informed, uninformed, frontier, dom, new))
        if i > graph.n + 1:
            raise GraphError(
                "sequence construction exceeded n+1 stages — this contradicts "
                "Lemma 2.6 and indicates a bug"
            )
        prev_dom, prev_new = dom, new
        prev_informed, prev_uninformed = informed, uninformed

    return SequenceConstruction(graph, source, tuple(stages), strategy)

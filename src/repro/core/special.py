"""Special graph classes and the search for even shorter labels (Section 5).

The paper's conclusion observes that fewer than four distinct labels suffice
for several graph classes and leaves the general 1-bit question open.  This
module contributes two things:

1. :class:`TreeFloodNode` / :func:`run_tree_flood` — a **label-free** (single
   label, i.e. zero bits of advice) universal broadcast scheme that is correct
   on every tree: a node retransmits µ exactly two rounds after first hearing
   it.  In a tree every node has exactly one neighbour closer to the source,
   so the unique informing transmission never collides; siblings transmitting
   simultaneously only collide at their (already informed) parent.  This is
   the strongest "fewer labels" statement we can make with a proof, and it
   covers the paths, stars, caterpillars and spiders used in the benchmarks.

2. :func:`search_minimum_labels` — an exact brute-force search that, for a
   small graph and source, finds the minimum label width ``w ∈ {0, 1, 2}``
   such that *some* assignment of ``w``-bit labels makes the paper's own
   universal Algorithm B complete broadcast.  This directly probes the
   conclusion's open question ("is one bit enough?") on concrete instances:
   the benchmarks use it to confirm that 1-bit labelings under B exist for the
   small grid, series-parallel and radius-2 instances the paper mentions, and
   that the 4-cycle with identical labels provably fails (the paper's
   introductory impossibility argument).

The paper sketches explicit 1-bit constructions for these classes; the sketch
is too terse to reimplement verbatim, so we *verify the feasibility claim* by
exhaustive search instead of guessing the construction (see DESIGN.md §2 and
EXPERIMENTS.md E9 for the full discussion of this substitution).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph, GraphError
from ..graphs.properties import is_tree
from ..radio.engine import run_protocol
from ..radio.messages import Message, source_message
from ..radio.node import RadioNode
from ..radio.trace import ExecutionTrace
from .protocols.broadcast import make_broadcast_node

__all__ = [
    "TreeFloodNode",
    "run_tree_flood",
    "LabelSearchResult",
    "broadcast_succeeds_with_labels",
    "search_minimum_labels",
]


# --------------------------------------------------------------------------- #
# 1. Label-free flooding on trees
# --------------------------------------------------------------------------- #
class TreeFloodNode(RadioNode):
    """Echo-flooding node: retransmit µ exactly two rounds after first hearing it.

    Uses no label bits at all; correctness relies on the network being a tree.
    """

    def __init__(self, node_id: int, label: str, *, is_source: bool = False,
                 source_payload: Any = None) -> None:
        super().__init__(node_id, label, is_source=is_source, source_payload=source_payload)
        self.sourcemsg: Any = source_payload if is_source else None
        self.informed_local_round: Optional[int] = None

    def decide(self, local_round: int) -> Optional[Message]:
        """Source: transmit once.  Others: transmit two rounds after first receipt."""
        if not self.ever_communicated and self.sourcemsg is not None:
            return source_message(self.sourcemsg)
        if self.informed_local_round is not None and local_round == self.informed_local_round + 2:
            return source_message(self.sourcemsg)
        return None

    def on_receive(self, local_round: int, message: Message) -> None:
        """Adopt the first µ heard."""
        if self.sourcemsg is None and message.is_source:
            self.sourcemsg = message.payload
            self.informed_local_round = local_round


def run_tree_flood(graph: Graph, source: int, *, payload: Any = "MSG",
                   max_rounds: Optional[int] = None):
    """Run the label-free tree flooding scheme and return the simulation result.

    Raises :class:`~repro.graphs.graph.GraphError` if the graph is not a tree —
    the scheme's correctness proof only covers trees (on general graphs it may
    or may not complete; the tests demonstrate a failing non-tree instance).
    """
    if not is_tree(graph):
        raise GraphError("run_tree_flood requires a tree; use run_broadcast for general graphs")
    labels = {v: "0" for v in graph.nodes()}
    budget = max_rounds if max_rounds is not None else 2 * graph.n + 4

    def factory(node_id: int, label: str, is_source: bool, source_payload: Any) -> TreeFloodNode:
        return TreeFloodNode(node_id, label, is_source=is_source, source_payload=source_payload)

    return run_protocol(
        graph,
        labels,
        factory,
        source=source,
        source_payload=payload,
        max_rounds=budget,
        stop_condition=lambda s: s.all_informed(),
    )


# --------------------------------------------------------------------------- #
# 2. Exhaustive search for minimum label width under Algorithm B
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LabelSearchResult:
    """Outcome of :func:`search_minimum_labels`.

    Attributes
    ----------
    width:
        The smallest label width (in bits) for which some assignment makes
        Algorithm B succeed, or ``None`` if none was found up to ``max_bits``.
    labels:
        A witnessing label assignment (``None`` if no width succeeded).
    completion_round:
        Completion round of the witnessing execution.
    attempts:
        Number of label assignments simulated.
    """

    width: Optional[int]
    labels: Optional[Dict[int, str]]
    completion_round: Optional[int]
    attempts: int


def broadcast_succeeds_with_labels(
    graph: Graph,
    source: int,
    labels: Dict[int, str],
    *,
    payload: Any = "MSG",
    max_rounds: Optional[int] = None,
) -> Optional[int]:
    """Run Algorithm B with an arbitrary label assignment.

    Returns the completion round if every node gets informed within the round
    budget, ``None`` otherwise.  This is the oracle used by the search and by
    the 4-cycle impossibility benchmark.
    """
    budget = max_rounds if max_rounds is not None else 4 * graph.n + 8
    sim = run_protocol(
        graph,
        labels,
        make_broadcast_node,
        source=source,
        source_payload=payload,
        max_rounds=budget,
        stop_condition=lambda s: s.all_informed(),
    )
    return sim.trace.broadcast_completion_round()


def _label_alphabet(width: int) -> List[str]:
    """All label strings of exactly ``width`` bits (the single label "" for width 0)."""
    if width == 0:
        return ["0"]  # one distinct label; the bit value is never read
    return ["".join(bits) for bits in itertools.product("01", repeat=width)]


def search_minimum_labels(
    graph: Graph,
    source: int,
    *,
    max_bits: int = 2,
    payload: Any = "MSG",
    max_rounds: Optional[int] = None,
    attempt_budget: int = 200_000,
) -> LabelSearchResult:
    """Exhaustively search for the smallest label width that lets B succeed.

    For width ``w`` the search enumerates all ``(2^w)^(n-1)`` assignments of
    ``w``-bit labels to the non-source nodes (the source's label is irrelevant
    to B because the source's behaviour never reads its bits), simulating
    Algorithm B for each.  Exponential, so only suitable for small graphs
    (``n ≲ 12`` at 1 bit); ``attempt_budget`` caps the total number of
    simulations to keep benchmark runtimes predictable.
    """
    if source not in graph:
        raise GraphError(f"source {source} is not a node of {graph!r}")
    attempts = 0
    others = [v for v in graph.nodes() if v != source]
    for width in range(0, max_bits + 1):
        alphabet = _label_alphabet(width)
        source_label = alphabet[0]
        for combo in itertools.product(alphabet, repeat=len(others)):
            attempts += 1
            if attempts > attempt_budget:
                return LabelSearchResult(None, None, None, attempts - 1)
            labels = {source: source_label}
            labels.update(dict(zip(others, combo)))
            completion = broadcast_succeeds_with_labels(
                graph, source, labels, payload=payload, max_rounds=max_rounds
            )
            if completion is not None:
                return LabelSearchResult(width, labels, completion, attempts)
    return LabelSearchResult(None, None, None, attempts)

"""High-level entry points tying labeling schemes, protocols and the simulator.

These are the classic per-scheme convenience functions:

* :func:`run_broadcast` — label a graph with λ and execute Algorithm B.
* :func:`run_acknowledged_broadcast` — λ_ack + B_ack.
* :func:`run_arbitrary_source_broadcast` — λ_arb + B_arb (source unknown when
  labeling).

Since the unified experiment API landed, each is a thin wrapper over the
scheme registry (:mod:`repro.api.schemes`): the labeler / task-builder /
outcome-deriver logic lives in the registered :class:`~repro.api.schemes.
Scheme` classes, and all three functions return the unified
:class:`~repro.core.outcome.Outcome` (of which :data:`BroadcastOutcome` is a
deprecated alias).  Prefer ``repro.api.run`` / ``get_scheme(...).run`` for new
code — those also cover the four baselines with the same calling convention.

Every entry point accepts a ``backend`` (``"reference"``, ``"vectorized"``,
or a :class:`~repro.backends.base.SimulationBackend` instance) and a
``trace_level`` (``"full"`` / ``"summary"`` / ``"none"``).  The default is
the faithful object engine with full traces; sweeps and benchmarks pass
``backend="vectorized", trace_level="summary"`` for speed.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..backends import SimulationBackend
from ..graphs.graph import Graph
from ..radio.clock import ClockModel
from ..radio.faults import FaultModel
from .labeling import Labeling
from .outcome import Outcome

__all__ = [
    "BroadcastOutcome",
    "run_broadcast",
    "run_acknowledged_broadcast",
    "run_arbitrary_source_broadcast",
]

BackendSpec = Optional[Union[str, SimulationBackend]]

#: Deprecated alias of the unified :class:`~repro.core.outcome.Outcome`.
BroadcastOutcome = Outcome


def run_broadcast(
    graph: Graph,
    source: int,
    *,
    payload: Any = "MSG",
    strategy: str = "prune",
    labeling: Optional[Labeling] = None,
    max_rounds: Optional[int] = None,
    fault_model: Optional[FaultModel] = None,
    clock_model: Optional[ClockModel] = None,
    backend: BackendSpec = None,
    trace_level: str = "full",
) -> Outcome:
    """Label ``graph`` with λ and execute Algorithm B from ``source``.

    Parameters
    ----------
    graph, source:
        Connected network and designated source.
    payload:
        The source message µ.
    strategy:
        Domination strategy for the labeling scheme.
    labeling:
        Reuse a precomputed λ labeling (must match graph and source).
    max_rounds:
        Round budget; defaults to the theoretical bound plus slack.
    fault_model / clock_model:
        Optional channel perturbations (see :mod:`repro.radio`).
    backend / trace_level:
        Execution engine and trace recording level (see module docstring).
    """
    from ..api.schemes import get_scheme

    return get_scheme("lambda").run(
        graph, source, payload=payload, strategy=strategy, labeling=labeling,
        max_rounds=max_rounds, fault_model=fault_model, clock_model=clock_model,
        backend=backend, trace_level=trace_level,
    )


def run_acknowledged_broadcast(
    graph: Graph,
    source: int,
    *,
    payload: Any = "MSG",
    strategy: str = "prune",
    labeling: Optional[Labeling] = None,
    max_rounds: Optional[int] = None,
    fault_model: Optional[FaultModel] = None,
    clock_model: Optional[ClockModel] = None,
    backend: BackendSpec = None,
    trace_level: str = "full",
) -> Outcome:
    """Label ``graph`` with λ_ack and execute Algorithm B_ack from ``source``."""
    from ..api.schemes import get_scheme

    return get_scheme("lambda_ack").run(
        graph, source, payload=payload, strategy=strategy, labeling=labeling,
        max_rounds=max_rounds, fault_model=fault_model, clock_model=clock_model,
        backend=backend, trace_level=trace_level,
    )


def run_arbitrary_source_broadcast(
    graph: Graph,
    true_source: int,
    *,
    payload: Any = "MSG",
    coordinator: Optional[int] = None,
    strategy: str = "prune",
    labeling: Optional[Labeling] = None,
    max_rounds: Optional[int] = None,
    fault_model: Optional[FaultModel] = None,
    clock_model: Optional[ClockModel] = None,
    backend: BackendSpec = None,
    trace_level: str = "full",
) -> Outcome:
    """Label ``graph`` with λ_arb (source unknown) and execute B_arb.

    ``true_source`` is the node that actually holds µ at run time; the labeling
    does not get to see it.  The returned outcome's ``completion_round`` is the
    round by which every node other than the coordinator has heard µ in the
    final phase-3 broadcast, and ``common_completion_round`` is the common
    round in which every node knows the broadcast has completed.
    """
    from ..api.schemes import get_scheme

    return get_scheme("lambda_arb").run(
        graph, true_source, payload=payload, coordinator=coordinator,
        strategy=strategy, labeling=labeling, max_rounds=max_rounds,
        fault_model=fault_model, clock_model=clock_model,
        backend=backend, trace_level=trace_level,
    )

"""High-level entry points tying labeling schemes, protocols and the simulator.

These are the functions a downstream user of the library reaches for first:

* :func:`run_broadcast` — label a graph with λ and execute Algorithm B.
* :func:`run_acknowledged_broadcast` — λ_ack + B_ack.
* :func:`run_arbitrary_source_broadcast` — λ_arb + B_arb (source unknown when
  labeling).

Each returns a small result record bundling the labeling, the execution trace
and the headline metrics (completion round, acknowledgement round, message
counts) together with the theoretical bounds from the paper so callers can
assert ``result.completion_round <= result.bound_broadcast`` directly.

Every entry point accepts a ``backend`` (``"reference"``, ``"vectorized"``,
or a :class:`~repro.backends.base.SimulationBackend` instance) and a
``trace_level`` (``"full"`` / ``"summary"`` / ``"none"``).  The default is
the faithful object engine with full traces; sweeps and benchmarks pass
``backend="vectorized", trace_level="summary"`` for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from ..backends import BackendResult, SimulationBackend, SimulationTask, resolve_backend
from ..graphs.graph import Graph, GraphError
from ..radio.clock import ClockModel
from ..radio.engine import SimulationResult, run_protocol
from ..radio.faults import FaultModel
from .labeling import Labeling, lambda_ack_scheme, lambda_arb_scheme, lambda_scheme
from .protocols.acknowledged import make_acknowledged_node
from .protocols.arbitrary import ArbitrarySourceNode, make_arbitrary_node
from .protocols.broadcast import make_broadcast_node

__all__ = [
    "BroadcastOutcome",
    "run_broadcast",
    "run_acknowledged_broadcast",
    "run_arbitrary_source_broadcast",
]

BackendSpec = Optional[Union[str, SimulationBackend]]


@dataclass
class BroadcastOutcome:
    """Result of one end-to-end labeled-broadcast execution.

    Attributes
    ----------
    labeling:
        The labeling scheme instance used.
    simulation:
        The raw simulator result (trace + final node objects; node objects are
        empty for array backends, which have no per-node state to return).
    completion_round:
        Round in which the last node first heard µ (``None`` if broadcast did
        not complete within the round budget — which would contradict the
        paper's theorems and is asserted against in the tests).
    acknowledgement_round:
        Round in which the source / coordinator first heard an ack
        (acknowledged variants only).
    common_completion_round:
        For B_arb: the common round in which all nodes know broadcast is done.
    bound_broadcast:
        The paper's broadcast bound ``2n − 3`` (Theorem 2.9).
    bound_acknowledgement:
        The paper's acknowledgement bound ``t + n − 2`` with ``t`` the
        completion round (Theorem 3.9); ``None`` for plain broadcast.
    """

    labeling: Labeling
    simulation: SimulationResult
    completion_round: Optional[int]
    acknowledgement_round: Optional[int] = None
    common_completion_round: Optional[int] = None
    bound_broadcast: int = 0
    bound_acknowledgement: Optional[int] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def trace(self):
        """The execution trace."""
        return self.simulation.trace

    @property
    def completed(self) -> bool:
        """True iff every node heard µ."""
        return self.completion_round is not None

    @property
    def total_transmissions(self) -> int:
        """Total transmissions over the whole execution."""
        return self.trace.total_transmissions()

    @property
    def total_collisions(self) -> int:
        """Total (node, round) collision events over the whole execution."""
        return self.trace.total_collisions()


def _broadcast_bound(n: int) -> int:
    """Theorem 2.9's bound: all nodes informed within 2n − 3 rounds (≥ 1)."""
    return max(1, 2 * n - 3)


def run_broadcast(
    graph: Graph,
    source: int,
    *,
    payload: Any = "MSG",
    strategy: str = "prune",
    labeling: Optional[Labeling] = None,
    max_rounds: Optional[int] = None,
    fault_model: Optional[FaultModel] = None,
    clock_model: Optional[ClockModel] = None,
    backend: BackendSpec = None,
    trace_level: str = "full",
) -> BroadcastOutcome:
    """Label ``graph`` with λ and execute Algorithm B from ``source``.

    Parameters
    ----------
    graph, source:
        Connected network and designated source.
    payload:
        The source message µ.
    strategy:
        Domination strategy for the labeling scheme.
    labeling:
        Reuse a precomputed λ labeling (must match graph and source).
    max_rounds:
        Round budget; defaults to the theoretical bound plus slack.
    fault_model / clock_model:
        Optional channel perturbations (see :mod:`repro.radio`).
    backend / trace_level:
        Execution engine and trace recording level (see module docstring).
    """
    lab = labeling if labeling is not None else lambda_scheme(graph, source, strategy=strategy)
    if lab.scheme != "lambda":
        raise GraphError(f"run_broadcast expects a λ labeling, got {lab.scheme!r}")
    budget = max_rounds if max_rounds is not None else _broadcast_bound(graph.n) + 4
    result = resolve_backend(backend).run_task(
        SimulationTask(
            protocol="broadcast",
            graph=graph,
            labels=lab.labels,
            node_factory=make_broadcast_node,
            source=source,
            payload=payload,
            max_rounds=budget,
            stop_rule="all_informed",
            trace_level=trace_level,
            fault_model=fault_model,
            clock_model=clock_model,
        )
    )
    sim = result.simulation
    if "completion_round" in result.derived:
        completion = result.derived["completion_round"]
    else:
        completion = sim.trace.broadcast_completion_round()
    return BroadcastOutcome(
        labeling=lab,
        simulation=sim,
        completion_round=completion,
        bound_broadcast=_broadcast_bound(graph.n),
    )


def run_acknowledged_broadcast(
    graph: Graph,
    source: int,
    *,
    payload: Any = "MSG",
    strategy: str = "prune",
    labeling: Optional[Labeling] = None,
    max_rounds: Optional[int] = None,
    fault_model: Optional[FaultModel] = None,
    clock_model: Optional[ClockModel] = None,
    backend: BackendSpec = None,
    trace_level: str = "full",
) -> BroadcastOutcome:
    """Label ``graph`` with λ_ack and execute Algorithm B_ack from ``source``."""
    lab = labeling if labeling is not None else lambda_ack_scheme(graph, source, strategy=strategy)
    if lab.scheme != "lambda_ack":
        raise GraphError(f"run_acknowledged_broadcast expects a λ_ack labeling, got {lab.scheme!r}")
    budget = max_rounds if max_rounds is not None else 3 * graph.n + 6
    if graph.n == 1:
        # A single-node network: broadcast and acknowledgement are vacuous.
        sim = run_protocol(
            graph, lab.labels, make_acknowledged_node, source=source,
            source_payload=payload, max_rounds=1, trace_level=trace_level,
        )
        return BroadcastOutcome(
            labeling=lab, simulation=sim, completion_round=1,
            acknowledgement_round=1, bound_broadcast=1, bound_acknowledgement=2,
        )
    result = resolve_backend(backend).run_task(
        SimulationTask(
            protocol="acknowledged",
            graph=graph,
            labels=lab.labels,
            node_factory=make_acknowledged_node,
            source=source,
            payload=payload,
            max_rounds=budget,
            stop_rule="acknowledged",
            trace_level=trace_level,
            fault_model=fault_model,
            clock_model=clock_model,
        )
    )
    sim = result.simulation
    if "completion_round" in result.derived:
        completion = result.derived["completion_round"]
        ack_round = result.derived.get("acknowledgement_round")
    else:
        completion = sim.trace.broadcast_completion_round()
        ack_round = sim.trace.first_ack_at(source)
    bound_ack = None
    if completion is not None:
        bound_ack = completion + max(1, graph.n - 2)
    return BroadcastOutcome(
        labeling=lab,
        simulation=sim,
        completion_round=completion,
        acknowledgement_round=ack_round,
        bound_broadcast=_broadcast_bound(graph.n),
        bound_acknowledgement=bound_ack,
    )


def run_arbitrary_source_broadcast(
    graph: Graph,
    true_source: int,
    *,
    payload: Any = "MSG",
    coordinator: Optional[int] = None,
    strategy: str = "prune",
    labeling: Optional[Labeling] = None,
    max_rounds: Optional[int] = None,
    fault_model: Optional[FaultModel] = None,
    clock_model: Optional[ClockModel] = None,
    backend: BackendSpec = None,
    trace_level: str = "full",
) -> BroadcastOutcome:
    """Label ``graph`` with λ_arb (source unknown) and execute B_arb.

    ``true_source`` is the node that actually holds µ at run time; the labeling
    does not get to see it.  The returned outcome's ``completion_round`` is the
    round by which every node other than the coordinator has heard µ in the
    final phase-3 broadcast, and ``common_completion_round`` is the common
    round in which every node knows the broadcast has completed.
    """
    if true_source not in graph:
        raise GraphError(f"true source {true_source} is not a node of {graph!r}")
    lab = labeling if labeling is not None else lambda_arb_scheme(
        graph, coordinator=coordinator, strategy=strategy
    )
    if lab.scheme != "lambda_arb":
        raise GraphError(
            f"run_arbitrary_source_broadcast expects a λ_arb labeling, got {lab.scheme!r}"
        )
    # Three acknowledged broadcasts plus guard delays: a 12n + 30 budget is
    # comfortably above the worst case (each phase is O(n) rounds).
    budget = max_rounds if max_rounds is not None else 12 * graph.n + 30
    if graph.n == 1:
        sim = run_protocol(
            graph, lab.labels, make_arbitrary_node, source=true_source,
            source_payload=payload, max_rounds=1, trace_level=trace_level,
        )
        return BroadcastOutcome(
            labeling=lab, simulation=sim, completion_round=1,
            acknowledgement_round=1, common_completion_round=1, bound_broadcast=1,
            extras={"true_source": true_source, "coordinator": lab.coordinator},
        )

    def everyone_knows_completion(sim) -> bool:
        return all(
            isinstance(node, ArbitrarySourceNode) and node.knows_completion
            for node in sim.nodes
        )

    coordinator_node = lab.coordinator if lab.coordinator is not None else 0
    result = resolve_backend(backend).run_task(
        SimulationTask(
            protocol="arbitrary",
            graph=graph,
            labels=lab.labels,
            node_factory=make_arbitrary_node,
            source=true_source,
            payload=payload,
            max_rounds=budget,
            stop_rule="arb_complete",
            stop_condition=everyone_knows_completion,
            trace_level=trace_level,
            fault_model=fault_model,
            clock_model=clock_model,
            extras={"coordinator": coordinator_node},
        )
    )
    sim = result.simulation
    if "completion_round" in result.derived:
        completion = result.derived["completion_round"]
        ack_round = result.derived.get("acknowledgement_round")
        common = result.derived.get("common_completion_round")
    else:
        completion, ack_round, common = _derive_arbitrary_outcome(
            graph, sim, true_source, coordinator_node
        )
    return BroadcastOutcome(
        labeling=lab,
        simulation=sim,
        completion_round=completion,
        acknowledgement_round=ack_round,
        common_completion_round=common,
        bound_broadcast=_broadcast_bound(graph.n),
        extras={"true_source": true_source, "coordinator": coordinator_node},
    )


def _derive_arbitrary_outcome(graph, sim, true_source, coordinator_node):
    """Assemble B_arb's headline rounds from the trace and node objects.

    Completion for B_arb: every node other than the coordinator and the true
    source hears µ via a SOURCE message in phase 3; the true source holds µ
    from the start; the coordinator learns µ from the phase-2 ack payload.
    The trace-level helper (which requires *every* non-source node to hear a
    SOURCE message) would therefore never credit the coordinator, so the
    completion round is assembled here from those three ingredients.
    """
    ack_round = sim.trace.first_ack_at(coordinator_node)
    receipt_rounds = []
    missing = False
    for v in graph.nodes():
        if v in (true_source, coordinator_node):
            continue
        first = sim.trace.first_source_receipt(v)
        if first is None:
            missing = True
            break
        receipt_rounds.append(first)
    coordinator_knows = any(
        isinstance(node, ArbitrarySourceNode)
        and node.node_id == coordinator_node
        and (node.sourcemsg is not None)
        for node in sim.nodes
    )
    coordinator_learned_round = None
    if coordinator_node != true_source:
        # The phase-2 ack (the one carrying µ) is the last ack the coordinator
        # hears; the trace tracks it incrementally at every level.
        coordinator_learned_round = sim.trace.last_ack_at(coordinator_node)
    completion = None
    if not missing and (coordinator_knows or coordinator_node == true_source):
        candidates = list(receipt_rounds)
        if coordinator_learned_round is not None:
            candidates.append(coordinator_learned_round)
        completion = max(candidates) if candidates else 1
    common_rounds = {
        node.completion_known_local_round
        for node in sim.nodes
        if isinstance(node, ArbitrarySourceNode)
    }
    common = None
    if len(common_rounds) == 1 and None not in common_rounds:
        common = common_rounds.pop()
    return completion, ack_round, common

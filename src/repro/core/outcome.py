"""The unified experiment outcome record.

Historically the paper's schemes returned a ``BroadcastOutcome`` (labeling +
bounds) while the comparison baselines returned a ``BaselineOutcome`` (label
bits + completion round), and every consumer — metrics, reports, sweeps —
had to know which of the two shapes it was holding.  The unified
:class:`Outcome` collapses both: one record with the superset of fields, where
scheme-specific members (``labeling``, ``bound_broadcast``,
``acknowledgement_round``) are simply ``None`` when the scheme has nothing to
report.

``BroadcastOutcome`` and ``BaselineOutcome`` survive as thin deprecation
aliases so existing code and the seed tests keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TYPE_CHECKING

from ..radio.engine import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .labeling import Labeling

__all__ = ["Outcome"]


@dataclass
class Outcome:
    """Result of one end-to-end scheme execution — paper scheme or baseline.

    Attributes
    ----------
    scheme:
        Registry name of the scheme that produced this outcome
        (``"lambda"``, ``"round_robin"``, …).
    simulation:
        The raw simulator result (trace + final node objects; node objects
        are empty for array backends, which have no per-node state to
        return).
    completion_round:
        Round in which the last node first heard µ (``None`` if broadcast
        did not complete within the round budget).
    labeling:
        The :class:`~repro.core.labeling.Labeling` instance for the paper's
        schemes; ``None`` for baselines, whose label metadata lives in
        :attr:`label_bits` / :attr:`distinct_labels`.
    label_bits:
        Length of the labeling scheme (max label length over nodes), in bits.
    distinct_labels:
        Number of distinct labels the scheme assigned.
    acknowledgement_round:
        Round in which the source / coordinator first heard an ack
        (acknowledged variants only).
    common_completion_round:
        For B_arb: the common round in which all nodes know broadcast is done.
    bound_broadcast:
        The paper's broadcast bound ``2n − 3`` (Theorem 2.9); ``None`` for
        baselines, which the paper proves no comparable bound for.
    bound_acknowledgement:
        The paper's acknowledgement bound ``t + n − 2`` (Theorem 3.9);
        ``None`` where inapplicable.
    extras:
        Scheme-specific details (coordinator id, number of colours, schedule
        length, …).
    """

    scheme: str
    simulation: SimulationResult
    completion_round: Optional[int]
    labeling: Optional["Labeling"] = None
    label_bits: int = 0
    distinct_labels: int = 1
    acknowledgement_round: Optional[int] = None
    common_completion_round: Optional[int] = None
    bound_broadcast: Optional[int] = None
    bound_acknowledgement: Optional[int] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # shared accessors
    # ------------------------------------------------------------------ #
    @property
    def trace(self):
        """The execution trace."""
        return self.simulation.trace

    @property
    def completed(self) -> bool:
        """True iff every node heard µ."""
        return self.completion_round is not None

    @property
    def total_transmissions(self) -> int:
        """Total transmissions over the whole execution."""
        return self.trace.total_transmissions()

    @property
    def total_collisions(self) -> int:
        """Total (node, round) collision events over the whole execution."""
        return self.trace.total_collisions()

    # ------------------------------------------------------------------ #
    # legacy BaselineOutcome spelling (deprecated aliases)
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Deprecated alias of :attr:`scheme`."""
        return self.scheme

    @property
    def label_length_bits(self) -> int:
        """Deprecated alias of :attr:`label_bits`."""
        return self.label_bits

    @property
    def num_distinct_labels(self) -> int:
        """Deprecated alias of :attr:`distinct_labels`."""
        return self.distinct_labels

    def summary_row(self) -> Dict[str, Any]:
        """Flat dict used by the report tables."""
        return {
            "scheme": self.scheme,
            "label_bits": self.label_bits,
            "distinct_labels": self.distinct_labels,
            "rounds": self.completion_round,
            "transmissions": self.total_transmissions,
            "collisions": self.total_collisions,
        }

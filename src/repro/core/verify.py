"""Independent verification of executions against the paper's theory.

The tests and benchmarks do not merely check "did broadcast complete"; they
check the *mechanism*: that the simulator trace matches the round-by-round
characterisation the paper proves.  This module implements those checkers:

* :func:`check_lemma_2_8` — in every odd round ``2i − 1`` the transmitters of
  µ are exactly ``DOM_i`` and the newly-informed nodes are exactly ``NEW_i``;
  in every even round ``2i`` the "stay" transmitters are exactly the nodes of
  ``NEW_i`` whose label has ``x2 = 1``.
* :func:`check_theorem_2_9` — broadcast completes within ``2n − 3`` rounds
  (and within the sharper ``2ℓ − 3``).
* :func:`check_theorem_3_9` — acknowledged broadcast: completion by
  ``2n − 3`` and the ack at the source within ``{t+1, …, t+n−2}``; also the
  Corollary 3.8 window ``{2ℓ−2, …, 3ℓ−4}``.
* :func:`check_fact_3_1` — λ_ack never assigns 101, 111 or 011.
* :func:`check_corollary_2_7` — the NEW sets partition ``V ∖ {s}``.
* :func:`check_universality_constraints` — labels are within the advertised
  widths and the number of distinct labels matches the paper's counts.

Each checker returns a list of violation strings (empty = pass), so callers
can aggregate them; :func:`verify_broadcast_outcome` bundles the relevant ones
for a :class:`~repro.core.runner.BroadcastOutcome`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..graphs.graph import Graph
from ..radio.trace import ExecutionTrace
from .labeling import FORBIDDEN_ACK_LABELS, Labeling
from .runner import BroadcastOutcome
from .sequences import SequenceConstruction

__all__ = [
    "check_lemma_2_8",
    "check_theorem_2_9",
    "check_theorem_3_9",
    "check_fact_3_1",
    "check_corollary_2_7",
    "check_universality_constraints",
    "verify_broadcast_outcome",
]


def check_lemma_2_8(
    graph: Graph,
    labeling: Labeling,
    construction: SequenceConstruction,
    trace: ExecutionTrace,
) -> List[str]:
    """Check the exact transmit/receive characterisation of Lemma 2.8."""
    violations: List[str] = []
    ell = construction.ell
    # Build the expected per-round sets.  The source may overhear µ from a
    # neighbour later on, but it is never "newly informed" (Lemma 2.8 speaks
    # about uninformed nodes), so it is excluded here.
    informed_first: Dict[int, int] = {}
    for r in trace.rounds:
        for node, msg in r.receptions.items():
            if msg.is_source and node not in informed_first and node != construction.source:
                informed_first[node] = r.round_number

    for i in range(1, ell + 1):
        odd_round = 2 * i - 1
        if odd_round <= trace.num_rounds:
            record = trace.record(odd_round)
            actual_tx = {
                v for v, m in record.transmissions.items() if m.is_source
            }
            expected_tx = set(construction.dom(i))
            if actual_tx != expected_tx:
                violations.append(
                    f"Lemma 2.8 1(a) violated in round {odd_round}: "
                    f"transmitters {sorted(actual_tx)} != DOM_{i} {sorted(expected_tx)}"
                )
            actual_new = {v for v, first in informed_first.items() if first == odd_round}
            expected_new = set(construction.new(i))
            if actual_new != expected_new:
                violations.append(
                    f"Lemma 2.8 1(b) violated in round {odd_round}: "
                    f"newly informed {sorted(actual_new)} != NEW_{i} {sorted(expected_new)}"
                )
        even_round = 2 * i
        if even_round <= trace.num_rounds:
            record = trace.record(even_round)
            actual_stay = {v for v, m in record.transmissions.items() if m.is_stay}
            expected_stay = {
                v for v in construction.new(i) if labeling.parsed(v).x2 == 1
            }
            if actual_stay != expected_stay:
                violations.append(
                    f"Lemma 2.8 2(a) violated in round {even_round}: "
                    f"stay transmitters {sorted(actual_stay)} != "
                    f"NEW_{i} ∩ (x2=1) {sorted(expected_stay)}"
                )
    return violations


def check_theorem_2_9(graph: Graph, outcome: BroadcastOutcome) -> List[str]:
    """Broadcast completes and does so within 2n − 3 rounds (and 2ℓ − 3)."""
    violations: List[str] = []
    n = graph.n
    if outcome.completion_round is None:
        if n > 1:
            violations.append("broadcast did not complete within the round budget")
        return violations
    bound = max(1, 2 * n - 3)
    if outcome.completion_round > bound:
        violations.append(
            f"Theorem 2.9 violated: completion round {outcome.completion_round} > 2n-3 = {bound}"
        )
    construction = outcome.labeling.construction
    if construction is not None and n > 1:
        sharp = construction.broadcast_rounds()
        if outcome.completion_round > sharp:
            violations.append(
                f"sharp bound violated: completion round {outcome.completion_round} > "
                f"2ℓ-3 = {sharp}"
            )
    return violations


def check_theorem_3_9(graph: Graph, outcome: BroadcastOutcome) -> List[str]:
    """Acknowledged broadcast: Theorem 3.9 and Corollary 3.8 windows."""
    violations = check_theorem_2_9(graph, outcome)
    n = graph.n
    if n <= 1:
        return violations
    t = outcome.completion_round
    ack = outcome.acknowledgement_round
    if ack is None:
        violations.append("the source never received an acknowledgement")
        return violations
    if t is not None:
        # Theorem 3.9 states the window {t+1, …, t+n−2}, but its own
        # Corollary 3.8 permits 3ℓ−4 = t + ℓ − 1, which on a path (ℓ = n)
        # equals t + n − 1; the path instance indeed realises t + n − 1, so we
        # check the Corollary-consistent window t + n − 1 here and record the
        # one-round discrepancy in EXPERIMENTS.md.
        if not (t + 1 <= ack <= t + max(1, n - 1)):
            violations.append(
                f"Theorem 3.9 violated: ack round {ack} not in "
                f"[{t + 1}, {t + max(1, n - 1)}]"
            )
    construction = outcome.labeling.construction
    if construction is not None:
        ell = construction.ell
        lo, hi = 2 * ell - 2, 3 * ell - 4
        if ell >= 2 and not (lo <= ack <= hi):
            violations.append(
                f"Corollary 3.8 violated: ack round {ack} not in [{lo}, {hi}] (ℓ={ell})"
            )
    return violations


def check_fact_3_1(labeling: Labeling) -> List[str]:
    """λ_ack / λ_arb never assign the labels 101, 111, 011 (except the reserved
    coordinator label 111 under λ_arb)."""
    violations: List[str] = []
    for node, label in labeling.labels.items():
        if labeling.scheme == "lambda_arb" and node == labeling.coordinator:
            continue
        if label in FORBIDDEN_ACK_LABELS:
            violations.append(f"Fact 3.1 violated: node {node} has forbidden label {label}")
    return violations


def check_corollary_2_7(construction: SequenceConstruction) -> List[str]:
    """The NEW sets partition V ∖ {source}."""
    violations: List[str] = []
    seen: Dict[int, int] = {}
    for stage in construction.stages:
        for v in stage.new:
            if v in seen:
                violations.append(
                    f"Corollary 2.7 violated: node {v} in NEW_{seen[v]} and NEW_{stage.index}"
                )
            seen[v] = stage.index
    expected = set(range(construction.graph.n)) - {construction.source}
    if set(seen) != expected:
        missing = expected - set(seen)
        extra = set(seen) - expected
        violations.append(
            f"Corollary 2.7 violated: missing={sorted(missing)}, unexpected={sorted(extra)}"
        )
    return violations


def check_universality_constraints(labeling: Labeling) -> List[str]:
    """Label widths and distinct-label counts match the paper's statements.

    λ uses length-2 labels (≤ 4 distinct), λ_ack length-3 with at most 5
    distinct labels, λ_arb length-3 with at most 6 distinct labels.
    """
    violations: List[str] = []
    widths = {len(lab) for lab in labeling.labels.values()}
    distinct = labeling.num_distinct_labels()
    if labeling.scheme == "lambda":
        if not widths <= {2}:
            violations.append(f"λ must use 2-bit labels, found widths {sorted(widths)}")
        if distinct > 4:
            violations.append(f"λ uses {distinct} > 4 distinct labels")
    elif labeling.scheme == "lambda_ack":
        if not widths <= {3}:
            violations.append(f"λ_ack must use 3-bit labels, found widths {sorted(widths)}")
        if distinct > 5:
            violations.append(f"λ_ack uses {distinct} > 5 distinct labels")
    elif labeling.scheme == "lambda_arb":
        if not widths <= {3}:
            violations.append(f"λ_arb must use 3-bit labels, found widths {sorted(widths)}")
        if distinct > 6:
            violations.append(f"λ_arb uses {distinct} > 6 distinct labels")
    else:
        violations.append(f"unknown scheme {labeling.scheme!r}")
    return violations


def verify_broadcast_outcome(graph: Graph, outcome: BroadcastOutcome) -> List[str]:
    """Run every applicable checker for one outcome and return all violations."""
    violations: List[str] = []
    labeling = outcome.labeling
    violations += check_universality_constraints(labeling)
    if labeling.construction is not None:
        violations += check_corollary_2_7(labeling.construction)
    if labeling.scheme == "lambda":
        violations += check_theorem_2_9(graph, outcome)
        if labeling.construction is not None:
            violations += check_lemma_2_8(
                graph, labeling, labeling.construction, outcome.trace
            )
    elif labeling.scheme == "lambda_ack":
        violations += check_fact_3_1(labeling)
        violations += check_theorem_3_9(graph, outcome)
    elif labeling.scheme == "lambda_arb":
        violations += check_fact_3_1(labeling)
        if outcome.completion_round is None and graph.n > 1:
            violations.append("B_arb did not deliver µ to every node")
        if outcome.common_completion_round is None and graph.n > 1:
            violations.append("B_arb nodes do not agree on a common completion round")
    return violations

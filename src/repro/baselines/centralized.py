"""Centralised known-topology broadcast schedule (unbounded-advice reference).

The related-work section of the paper discusses centralised broadcast, where a
schedule is computed offline with complete knowledge of the network and each
node is simply told in which rounds to transmit (so the "label" is a full
transmission schedule — advice of unbounded length).  This module provides a
greedy scheduler in that spirit, used as the *reference point* in the
comparison tables: it shows how fast broadcast can be when advice size is not
a concern, which makes the cost of squeezing the advice down to 2 bits
visible.

The scheduler reuses the paper's own machinery, but without the
"newly-informed candidates only" restriction: in every round it picks a
minimal subset of **all** informed nodes dominating the frontier, transmits
it, and repeats.  One round per stage (no "stay" coordination is needed since
the schedule is precomputed), so the schedule length is at most ``n − 1``
rounds and usually close to the source eccentricity.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..graphs.graph import Graph, GraphError
from ..graphs.traversal import is_connected
from ..radio.messages import Message, source_message
from ..radio.node import RadioNode

__all__ = ["compute_centralized_schedule", "ScheduledNode", "run_centralized_schedule"]


def compute_centralized_schedule(
    graph: Graph, source: int, *, strategy: str = "greedy"
) -> List[FrozenSet[int]]:
    """Compute the per-round transmitter sets of the greedy centralised schedule.

    Returns a list whose ``r``-th entry (0-indexed) is the set of nodes
    scheduled to transmit in round ``r + 1``.  Every node is informed after
    the last round of the schedule.
    """
    from ..core.domination import minimal_dominating_subset

    if source not in graph:
        raise GraphError(f"source {source} is not a node of {graph!r}")
    if not is_connected(graph):
        raise GraphError("centralised scheduling requires a connected graph")

    informed: Set[int] = {source}
    schedule: List[FrozenSet[int]] = []
    all_nodes = set(graph.nodes())
    while informed != all_nodes:
        frontier = {
            v for v in all_nodes - informed if graph.neighbors(v) & informed
        }
        transmitters = minimal_dominating_subset(graph, informed, frontier, strategy=strategy)
        schedule.append(frozenset(transmitters))
        newly = {
            v for v in frontier if len(graph.neighbors(v) & transmitters) == 1
        }
        if not newly:
            raise GraphError("centralised schedule made no progress — internal error")
        informed |= newly
    return schedule


class ScheduledNode(RadioNode):
    """A node that transmits µ exactly in its precomputed rounds.

    The "label" is the node's own transmission round list; its length in bits
    is reported by the outcome so the advice-size comparison stays honest.
    """

    def __init__(self, node_id: int, label: str, *, is_source: bool = False,
                 source_payload: Any = None, transmit_rounds: Optional[Set[int]] = None) -> None:
        super().__init__(node_id, label, is_source=is_source, source_payload=source_payload)
        self.transmit_rounds = set(transmit_rounds or ())
        self.sourcemsg: Any = source_payload if is_source else None

    def decide(self, local_round: int) -> Optional[Message]:
        """Transmit µ when scheduled (the schedule guarantees we know µ by then)."""
        if local_round in self.transmit_rounds and self.sourcemsg is not None:
            return source_message(self.sourcemsg)
        return None

    def on_receive(self, local_round: int, message: Message) -> None:
        """Adopt the first µ heard."""
        if self.sourcemsg is None and message.is_source:
            self.sourcemsg = message.payload


def run_centralized_schedule(
    graph: Graph,
    source: int,
    *,
    payload: Any = "MSG",
    strategy: str = "greedy",
    max_rounds: Optional[int] = None,
    fault_model=None,
    clock_model=None,
    backend=None,
    trace_level: str = "full",
):
    """Run the centralised greedy schedule and collect comparison metrics.

    Thin wrapper over the registered ``"centralized"`` scheme (see
    :mod:`repro.api.schemes`); returns the unified outcome record.  The
    schedule travels with the task as declarative data, so the vectorized
    backend executes it natively instead of falling back to the object
    engine.
    """
    from ..api.schemes import get_scheme

    return get_scheme("centralized").run(
        graph, source, payload=payload, strategy=strategy, max_rounds=max_rounds,
        fault_model=fault_model, clock_model=clock_model,
        backend=backend, trace_level=trace_level,
    )

"""Anonymous bit-signalling broadcast under collision detection.

The paper's introduction observes that *with* collision detection, broadcast
is trivially feasible even in anonymous networks: "consecutive bits of the
source message can be transmitted by a sequence of silent and noisy rounds,
using silence as 0 and a message or collision as 1".  This baseline makes that
folklore remark concrete:

* The source serialises µ as a bit string prefixed by a fixed-width length
  header, and emits one *symbol* every ``SLOT = 3`` rounds: in the first round
  of a slot it transmits (anything) iff the symbol is 1, otherwise it stays
  silent.
* A node that hears its first energy (a message or a detected collision)
  learns its slot alignment; from then on it decodes symbol ``k`` from round
  ``t0 + 3k`` and *relays* it in round ``t0 + 3k + 1`` (transmit iff 1).
* Because relays are delayed by exactly one round per hop while slots are
  three rounds apart, the transmissions a node hears in its listening rounds
  all come from the previous BFS layer and all carry the same symbol value, so
  the OR-channel (silence/noise) delivers the stream uncorrupted.

The resulting scheme uses **no labels at all** (every node gets the same empty
role), needs ``3·(len(µ) + header) + D`` rounds, and — crucially — requires
the collision-detection channel variant; running it under the paper's default
no-detection model makes it fail, which the tests demonstrate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..graphs.graph import Graph
from ..radio.messages import Message, source_message
from ..radio.node import RadioNode

__all__ = [
    "SLOT_LENGTH",
    "LENGTH_HEADER_BITS",
    "encode_payload_bits",
    "decode_payload_bits",
    "BitSignalNode",
    "run_collision_detection_broadcast",
]

#: Rounds per transmitted symbol (1 transmit round + 2 guard rounds).
SLOT_LENGTH = 3
#: Fixed-width header carrying the payload length in bits.
LENGTH_HEADER_BITS = 16


def encode_payload_bits(payload: str) -> List[int]:
    """Serialise a text payload into header + data bits.

    The header is the number of *data* bits as a 16-bit big-endian integer;
    the data is the UTF-8 encoding of the payload.  A leading 1 bit (preamble)
    is added by the node, not here.
    """
    data = payload.encode("utf-8")
    data_bits: List[int] = []
    for byte in data:
        data_bits.extend((byte >> (7 - i)) & 1 for i in range(8))
    if len(data_bits) >= (1 << LENGTH_HEADER_BITS):
        raise ValueError("payload too long for the 16-bit length header")
    header_bits = [(len(data_bits) >> (LENGTH_HEADER_BITS - 1 - i)) & 1
                   for i in range(LENGTH_HEADER_BITS)]
    return header_bits + data_bits


def decode_payload_bits(bits: List[int]) -> Optional[str]:
    """Inverse of :func:`encode_payload_bits`; ``None`` if the stream is incomplete."""
    if len(bits) < LENGTH_HEADER_BITS:
        return None
    length = 0
    for b in bits[:LENGTH_HEADER_BITS]:
        length = (length << 1) | b
    data_bits = bits[LENGTH_HEADER_BITS : LENGTH_HEADER_BITS + length]
    if len(data_bits) < length:
        return None
    data = bytearray()
    for i in range(0, length, 8):
        byte = 0
        for b in data_bits[i : i + 8]:
            byte = (byte << 1) | b
        data.append(byte)
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError:
        return None


class BitSignalNode(RadioNode):
    """Slot-aligned OR-channel relay node for the bit-signalling broadcast."""

    def __init__(self, node_id: int, label: str, *, is_source: bool = False,
                 source_payload: Any = None) -> None:
        super().__init__(node_id, label, is_source=is_source, source_payload=source_payload)
        self.payload = source_payload if is_source else None
        # Source: [preamble 1] + header + data, one symbol per slot.
        self.symbols: Optional[List[int]] = (
            [1] + encode_payload_bits(str(source_payload)) if is_source else None
        )
        self.start_local_round: Optional[int] = None
        self.received_symbols: List[int] = []
        self.decoded: Optional[str] = str(source_payload) if is_source else None

    # ------------------------------------------------------------------ #
    def decide(self, local_round: int) -> Optional[Message]:
        """Source: emit symbol k at its slot.  Relay: echo symbol k one round later."""
        if self.is_source:
            if self.start_local_round is None:
                self.start_local_round = local_round
            k, offset = divmod(local_round - self.start_local_round, SLOT_LENGTH)
            if offset == 0 and self.symbols is not None and 0 <= k < len(self.symbols):
                if self.symbols[k] == 1:
                    return source_message("1")
            return None
        if self.start_local_round is None:
            return None
        k, offset = divmod(local_round - self.start_local_round, SLOT_LENGTH)
        # Relay symbol k one round after our listening round for it.
        if offset == 1 and 0 <= k < len(self.received_symbols):
            if self.received_symbols[k] == 1:
                return source_message("1")
        return None

    # ------------------------------------------------------------------ #
    def deliver(self, local_round, sent, heard, collision_detected=False) -> None:  # type: ignore[override]
        """Record the OR-channel observation for our listening rounds."""
        super().deliver(local_round, sent, heard, collision_detected)
        if self.is_source or sent is not None:
            return
        energy = heard is not None or collision_detected
        if self.start_local_round is None:
            if energy:
                # First energy ever: this is the preamble; slot 0 starts now.
                self.start_local_round = local_round
                self.received_symbols = [1]
            return
        k, offset = divmod(local_round - self.start_local_round, SLOT_LENGTH)
        if offset == 0 and k == len(self.received_symbols):
            self.received_symbols.append(1 if energy else 0)
            if self.decoded is None:
                self.decoded = decode_payload_bits(self.received_symbols[1:])

    @property
    def has_decoded(self) -> bool:
        """True once the node has reconstructed the full payload."""
        return self.decoded is not None


def run_collision_detection_broadcast(
    graph: Graph,
    source: int,
    *,
    payload: str = "MSG",
    max_rounds: Optional[int] = None,
    with_detection: bool = True,
    fault_model=None,
    clock_model=None,
    backend=None,
    trace_level: str = "full",
):
    """Run the anonymous bit-signalling broadcast.

    ``with_detection=False`` runs the same protocol under the paper's default
    no-collision-detection channel, where it is expected to fail — used by the
    tests to demonstrate that the scheme genuinely needs the stronger model.

    Thin wrapper over the registered ``"collision_detection"`` scheme (see
    :mod:`repro.api.schemes`); returns the unified outcome record.
    """
    from ..api.schemes import get_scheme

    return get_scheme("collision_detection").run(
        graph, source, payload=payload, max_rounds=max_rounds,
        with_detection=with_detection, fault_model=fault_model,
        clock_model=clock_model, backend=backend, trace_level=trace_level,
    )

"""Round-robin broadcast with distinct ``O(log n)``-bit labels.

This is the folklore scheme the paper's introduction uses to show that
``O(log n)``-bit labels always suffice: give every node a distinct identifier
and the network size, and let informed node ``k`` transmit µ exactly in the
rounds congruent to ``k`` modulo ``n``.  Within every window of ``n``
consecutive rounds each informed node transmits alone among all nodes, so each
uninformed node adjacent to an informed one hears at least one collision-free
transmission per window.  The informed set therefore absorbs the whole frontier
every ``n`` rounds and broadcast completes within ``n · (D + 1)`` rounds, where
``D`` is the source eccentricity.

The label of node ``k`` encodes the pair ``(k, n)`` as two fixed-width binary
fields (the universal algorithm may not know ``n``, so the scheme must write it
into the label), giving a scheme length of ``2·⌈log₂ n⌉`` bits.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..graphs.graph import Graph
from ..radio.messages import Message, source_message
from ..radio.node import RadioNode
from .base import bits_needed, int_to_bits

__all__ = ["round_robin_labels", "RoundRobinNode", "run_round_robin"]


def round_robin_labels(graph: Graph) -> Dict[int, str]:
    """Assign each node the label ``bits(node_id) ++ bits(n)``."""
    width = bits_needed(graph.n)
    return {
        v: int_to_bits(v, width) + int_to_bits(graph.n - 1, width) for v in graph.nodes()
    }


def _parse_label(label: str) -> tuple[int, int]:
    """Recover ``(node_id, n)`` from a round-robin label."""
    if len(label) % 2 != 0:
        raise ValueError(f"malformed round-robin label {label!r}")
    half = len(label) // 2
    return int(label[:half], 2), int(label[half:], 2) + 1


class RoundRobinNode(RadioNode):
    """Informed node ``k`` transmits µ in every round ``r`` with ``r ≡ k (mod n)``.

    The node counts rounds locally from its first active round; since all
    nodes start in the same global round, the slots are globally consistent.
    (Unlike the paper's algorithms this baseline *does* rely on a shared round
    counter — a known weakness of the folklore scheme that the comparison
    table points out.)
    """

    def __init__(self, node_id: int, label: str, *, is_source: bool = False,
                 source_payload: Any = None) -> None:
        super().__init__(node_id, label, is_source=is_source, source_payload=source_payload)
        self.my_slot, self.period = _parse_label(label)
        self.sourcemsg: Any = source_payload if is_source else None

    def decide(self, local_round: int) -> Optional[Message]:
        """Transmit µ in our slot once informed."""
        if self.sourcemsg is None:
            return None
        if local_round % self.period == self.my_slot % self.period:
            return source_message(self.sourcemsg)
        return None

    def on_receive(self, local_round: int, message: Message) -> None:
        """Adopt the first µ heard."""
        if self.sourcemsg is None and message.is_source:
            self.sourcemsg = message.payload


def run_round_robin(
    graph: Graph,
    source: int,
    *,
    payload: Any = "MSG",
    max_rounds: Optional[int] = None,
    fault_model=None,
    clock_model=None,
    backend=None,
    trace_level: str = "full",
):
    """Run the round-robin baseline and collect comparison metrics.

    Thin wrapper over the registered ``"round_robin"`` scheme (see
    :mod:`repro.api.schemes`); returns the unified outcome record.
    """
    from ..api.schemes import get_scheme

    return get_scheme("round_robin").run(
        graph, source, payload=payload, max_rounds=max_rounds,
        fault_model=fault_model, clock_model=clock_model,
        backend=backend, trace_level=trace_level,
    )

"""TDMA broadcast from a proper colouring of ``G²`` (``O(log Δ)``-bit labels).

The paper's introduction notes that colouring the *square* of the graph gives
labels of ``O(log Δ)`` bits that suffice for broadcast: if two nodes share a
colour they are at distance at least 3, so when all informed nodes of one
colour class transmit simultaneously, no listener has two transmitting
neighbours — collisions are impossible by construction.  Cycling through the
colour classes therefore grows the informed set by the entire frontier every
``C`` rounds, where ``C ≤ Δ² + 1`` is the number of colours used, and the
broadcast completes within ``C · (D + 1)`` rounds.

Each label encodes ``(colour, C)`` as two fixed-width fields, for a scheme
length of ``2·⌈log₂ C⌉ = O(log Δ)`` bits.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..graphs.coloring import square_coloring
from ..graphs.graph import Graph
from ..radio.messages import Message, source_message
from ..radio.node import RadioNode
from .base import bits_needed, int_to_bits

__all__ = ["coloring_tdma_labels", "ColoringTdmaNode", "run_coloring_tdma"]


def coloring_tdma_labels(graph: Graph) -> Tuple[Dict[int, str], int]:
    """Labels ``bits(colour) ++ bits(C)`` from a greedy colouring of ``G²``.

    Returns the label map and the number of colours ``C``.
    """
    colours = square_coloring(graph)
    num_colours = max(colours.values(), default=0) + 1
    width = bits_needed(num_colours)
    labels = {
        v: int_to_bits(colours[v], width) + int_to_bits(num_colours - 1, width)
        for v in graph.nodes()
    }
    return labels, num_colours


def _parse_label(label: str) -> Tuple[int, int]:
    """Recover ``(colour, C)`` from a TDMA label."""
    half = len(label) // 2
    return int(label[:half], 2), int(label[half:], 2) + 1


class ColoringTdmaNode(RadioNode):
    """Informed node of colour ``c`` transmits µ in rounds ``r ≡ c (mod C)``."""

    def __init__(self, node_id: int, label: str, *, is_source: bool = False,
                 source_payload: Any = None) -> None:
        super().__init__(node_id, label, is_source=is_source, source_payload=source_payload)
        self.colour, self.num_colours = _parse_label(label)
        self.sourcemsg: Any = source_payload if is_source else None

    def decide(self, local_round: int) -> Optional[Message]:
        """Transmit µ in our colour slot once informed."""
        if self.sourcemsg is None:
            return None
        if local_round % self.num_colours == self.colour % self.num_colours:
            return source_message(self.sourcemsg)
        return None

    def on_receive(self, local_round: int, message: Message) -> None:
        """Adopt the first µ heard."""
        if self.sourcemsg is None and message.is_source:
            self.sourcemsg = message.payload


def run_coloring_tdma(
    graph: Graph,
    source: int,
    *,
    payload: Any = "MSG",
    max_rounds: Optional[int] = None,
    fault_model=None,
    clock_model=None,
    backend=None,
    trace_level: str = "full",
):
    """Run the G²-colouring TDMA baseline and collect comparison metrics.

    Thin wrapper over the registered ``"coloring_tdma"`` scheme (see
    :mod:`repro.api.schemes`); returns the unified outcome record.
    """
    from ..api.schemes import get_scheme

    return get_scheme("coloring_tdma").run(
        graph, source, payload=payload, max_rounds=max_rounds,
        fault_model=fault_model, clock_model=clock_model,
        backend=backend, trace_level=trace_level,
    )

"""Baseline broadcast schemes the paper's introduction compares against."""

from .base import BaselineOutcome, bits_needed, int_to_bits
from .centralized import (
    ScheduledNode,
    compute_centralized_schedule,
    run_centralized_schedule,
)
from .collision_detection import (
    BitSignalNode,
    LENGTH_HEADER_BITS,
    SLOT_LENGTH,
    decode_payload_bits,
    encode_payload_bits,
    run_collision_detection_broadcast,
)
from .coloring_tdma import ColoringTdmaNode, coloring_tdma_labels, run_coloring_tdma
from .round_robin import RoundRobinNode, round_robin_labels, run_round_robin

__all__ = [
    "BaselineOutcome",
    "BitSignalNode",
    "ColoringTdmaNode",
    "LENGTH_HEADER_BITS",
    "RoundRobinNode",
    "SLOT_LENGTH",
    "ScheduledNode",
    "bits_needed",
    "coloring_tdma_labels",
    "compute_centralized_schedule",
    "decode_payload_bits",
    "encode_payload_bits",
    "int_to_bits",
    "round_robin_labels",
    "run_centralized_schedule",
    "run_collision_detection_broadcast",
    "run_coloring_tdma",
    "run_round_robin",
]

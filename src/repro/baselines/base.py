"""Common infrastructure for the baseline broadcast schemes.

The paper's introduction positions the 2-bit result against the classical
alternatives:

* with **distinct ``O(log n)``-bit labels**, round-robin broadcast always works;
* with a **proper colouring of G²** (``O(log Δ)``-bit labels), a TDMA schedule
  avoids all collisions;
* with **collision detection**, broadcast is trivially feasible even with no
  labels at all (bit signalling through silence vs. noise);
* with **complete topology knowledge**, a centralised schedule can be
  precomputed (unbounded advice).

Each baseline in this package produces a labeling, a node factory for the
radio simulator, and a :class:`BaselineOutcome` with the metrics the benchmark
tables compare: label length, completion round, number of transmissions and
collisions.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.outcome import Outcome
from ..radio.engine import SimulationResult

__all__ = ["BaselineOutcome"]


class BaselineOutcome(Outcome):
    """Deprecated alias of the unified :class:`~repro.core.outcome.Outcome`.

    Kept so existing code can keep constructing baseline outcomes with the
    historical keyword spelling (``name`` / ``label_length_bits`` /
    ``num_distinct_labels``); the attributes of the same names remain
    available as read-only aliases on every :class:`Outcome`.
    """

    def __init__(
        self,
        *,
        name: str,
        label_length_bits: int,
        num_distinct_labels: int,
        completion_round: Optional[int],
        simulation: SimulationResult,
        extras: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(
            scheme=name,
            simulation=simulation,
            completion_round=completion_round,
            label_bits=label_length_bits,
            distinct_labels=num_distinct_labels,
            extras=dict(extras or {}),
        )


def int_to_bits(value: int, width: int) -> str:
    """Fixed-width big-endian binary encoding of a non-negative integer."""
    if value < 0:
        raise ValueError(f"cannot encode negative value {value}")
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return format(value, f"0{width}b")


def bits_needed(count: int) -> int:
    """Number of bits needed to encode values ``0 .. count-1`` (at least 1)."""
    if count <= 1:
        return 1
    return (count - 1).bit_length()

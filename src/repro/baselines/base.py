"""Common infrastructure for the baseline broadcast schemes.

The paper's introduction positions the 2-bit result against the classical
alternatives:

* with **distinct ``O(log n)``-bit labels**, round-robin broadcast always works;
* with a **proper colouring of G²** (``O(log Δ)``-bit labels), a TDMA schedule
  avoids all collisions;
* with **collision detection**, broadcast is trivially feasible even with no
  labels at all (bit signalling through silence vs. noise);
* with **complete topology knowledge**, a centralised schedule can be
  precomputed (unbounded advice).

Each baseline in this package produces a labeling, a node factory for the
radio simulator, and a :class:`BaselineOutcome` with the metrics the benchmark
tables compare: label length, completion round, number of transmissions and
collisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..graphs.graph import Graph
from ..radio.engine import SimulationResult

__all__ = ["BaselineOutcome"]


@dataclass
class BaselineOutcome:
    """Result of running one baseline scheme on one (graph, source) instance.

    Attributes
    ----------
    name:
        Baseline identifier (``"round_robin"``, ``"coloring_tdma"``, …).
    label_length_bits:
        Length of the labeling scheme (max label length over nodes), in bits.
    num_distinct_labels:
        Number of distinct labels the scheme assigned.
    completion_round:
        Round by which every node was informed, or ``None`` on failure.
    simulation:
        The underlying simulator result (trace + nodes).
    extras:
        Baseline-specific details (e.g. number of colours, bits per symbol).
    """

    name: str
    label_length_bits: int
    num_distinct_labels: int
    completion_round: Optional[int]
    simulation: SimulationResult
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        """True iff every node heard the source message."""
        return self.completion_round is not None

    @property
    def total_transmissions(self) -> int:
        """Total transmissions over the execution."""
        return self.simulation.trace.total_transmissions()

    @property
    def total_collisions(self) -> int:
        """Total (node, round) collision events over the execution."""
        return self.simulation.trace.total_collisions()

    def summary_row(self) -> Dict[str, Any]:
        """Flat dict used by the report tables."""
        return {
            "scheme": self.name,
            "label_bits": self.label_length_bits,
            "distinct_labels": self.num_distinct_labels,
            "rounds": self.completion_round,
            "transmissions": self.total_transmissions,
            "collisions": self.total_collisions,
        }


def int_to_bits(value: int, width: int) -> str:
    """Fixed-width big-endian binary encoding of a non-negative integer."""
    if value < 0:
        raise ValueError(f"cannot encode negative value {value}")
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return format(value, f"0{width}b")


def bits_needed(count: int) -> int:
    """Number of bits needed to encode values ``0 .. count-1`` (at least 1)."""
    if count <= 1:
        return 1
    return (count - 1).bit_length()

"""Batched multi-instance vectorized backend: many tasks, one kernel loop.

The paper's headline claims are statistical — broadcast-time bounds that hold
across whole *families* of radio networks — so reproducing them means
sweeping thousands of small instances.  At n ≤ 64 the per-round NumPy
dispatch overhead of the single-instance :class:`~repro.backends.vectorized.
VectorizedBackend` dominates its runtime; this module removes it by stacking
the CSR adjacency blocks of many :class:`~repro.backends.base.SimulationTask`s
into one **block-diagonal** structure and advancing all instances with a
single set of array kernels per round:

* the stacked graph has no cross-instance edges, so one
  :class:`~repro.backends.vectorized._Channel` resolution over the union
  adjacency resolves every instance's round at once;
* protocol state lives in global arrays indexed by *stacked* node id; the
  decision rules are the same element-wise masks as the single-instance
  kernels, so outcomes stay **bit-for-bit identical** (asserted by
  ``tests/test_batched_equivalence.py`` against both the vectorized and the
  reference engines);
* every instance keeps its own round counter bookkeeping (all instances start
  at round 1 together; an instance that meets its stop rule or exhausts its
  budget is masked out of the transmit vectors and stops recording — its
  trace ends exactly where a solo run's would);
* per-instance trace recording splits the round's sorted global id arrays at
  the block offsets (one ``searchsorted`` per array), so each instance gets
  the same :class:`~repro.radio.trace.ExecutionTrace` a solo run produces.

Determinism needs no per-instance RNG plumbing: the compiled protocols are
deterministic, and the only randomized channel semantics (fault models, which
memoise per-(round, node) coin flips) are exactly the tasks the batched
kernels do not cover — those fall back to per-task execution with their own
model objects, keeping every instance's random stream independent of how the
batch was composed.

Tasks the stacked kernels do not cover (custom node factories, non-default
fault/clock models) are executed per task through the single-instance
vectorized backend (which itself falls back to the reference engine where
needed), so ``--backend batched`` is always safe to pass.  All seven
registered schemes — B_arb included, its per-instance coordinator state
carried as stacked arrays — run inside the stacked kernels under the paper's
default channel models.
Batches must be *homogeneous* in protocol and trace level; mixing either is a
caller error and raises :class:`~repro.backends.base.BackendError`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..baselines.collision_detection import (
    LENGTH_HEADER_BITS,
    SLOT_LENGTH,
    decode_payload_bits,
    encode_payload_bits,
)
from ..radio.engine import SimulationResult
from ..radio.messages import (
    Message,
    ack_message,
    initialize_message,
    ready_message,
    source_message,
    stay_message,
)
from ..radio.trace import TRACE_FULL, ExecutionTrace
from .base import BackendError, BackendResult, SimulationBackend, SimulationTask
from .vectorized import (
    _EMPTY,
    _K_ACK,
    _K_INIT,
    _K_READY,
    _K_SOURCE,
    _K_STAY,
    _KIND_NAMES,
    _NEVER,
    VectorizedBackend,
    _Channel,
    _int_payload_bits,
    _parse_bit_labels,
    _parse_slot_labels,
    _Recorder,
    _stamp_bits,
)

__all__ = [
    "BatchedVectorizedBackend",
    "run_broadcast_batch",
    "run_acknowledged_batch",
    "run_arbitrary_batch",
    "run_slotted_batch",
    "run_centralized_batch",
    "run_collision_detection_batch",
]


# --------------------------------------------------------------------------- #
# block-diagonal stacking
# --------------------------------------------------------------------------- #
class _BatchLayout:
    """Stacked CSR blocks of a batch plus the id arithmetic around them.

    Instance ``b``'s nodes occupy the contiguous stacked-id range
    ``[offsets[b], offsets[b+1])``; because blocks never share edges, any
    sorted array of stacked ids (transmitters, hearers, collisions, …) splits
    into per-instance slices with one ``searchsorted`` against ``offsets``.
    """

    def __init__(self, tasks: Sequence[SimulationTask]) -> None:
        self.tasks = list(tasks)
        self.B = len(self.tasks)
        self.ns = np.array([t.graph.n for t in self.tasks], dtype=np.int64)
        self.offsets = np.zeros(self.B + 1, dtype=np.int64)
        np.cumsum(self.ns, out=self.offsets[1:])
        self.total = int(self.offsets[-1])
        self.owner = np.repeat(np.arange(self.B, dtype=np.int64), self.ns)
        indptr_parts = [np.zeros(1, dtype=np.int64)]
        index_parts = []
        edge_base = 0
        for b, task in enumerate(self.tasks):
            indptr, indices = task.graph.csr()
            index_parts.append(indices.astype(np.int64) + self.offsets[b])
            indptr_parts.append(indptr[1:].astype(np.int64) + edge_base)
            edge_base += int(indices.size)
        self.indptr = np.concatenate(indptr_parts)
        self.indices = np.concatenate(index_parts) if index_parts else _EMPTY
        self.sources = np.array(
            [self.offsets[b] + int(t.source) for b, t in enumerate(self.tasks)],
            dtype=np.int64,
        )
        self.max_rounds = np.array([t.max_rounds for t in self.tasks], dtype=np.int64)

    def channel(self) -> _Channel:
        return _Channel.from_arrays(self.indptr, self.indices, self.total)

    def counts(self, ids: np.ndarray) -> np.ndarray:
        """Per-instance element counts of an array of stacked node ids.

        Forced to ``int64`` so count accumulators built from these never wrap
        on platforms where ``bincount`` returns 32-bit integers.
        """
        return np.bincount(self.owner[ids], minlength=self.B).astype(
            np.int64, copy=False
        )

    def split_points(self, ids: np.ndarray) -> np.ndarray:
        """Slice boundaries of a *sorted* stacked-id array at the block offsets."""
        return np.searchsorted(ids, self.offsets)


class _BatchRun:
    """Per-instance activity / stop / trace bookkeeping shared by all kernels.

    With no full-level task in the batch (``fast``), kernels skip per-round
    per-instance recording entirely: they accumulate whole-run aggregates in
    :class:`_SummaryAggregates` arrays and materialise every trace once at
    the end via :meth:`ExecutionTrace.from_aggregates` — the recording cost
    per round stays O(1) kernel calls instead of O(batch) Python calls,
    which is where the per-instance dispatch overhead actually lives.
    """

    def __init__(self, lay: _BatchLayout) -> None:
        self.lay = lay
        self.fast = all(t.trace_level != TRACE_FULL for t in lay.tasks)
        self.recs = (
            None
            if self.fast
            else [_Recorder(t.graph.n, t.source, t.trace_level) for t in lay.tasks]
        )
        self.active = lay.max_rounds >= 1
        self.stop_round = np.zeros(lay.B, dtype=np.int64)
        self.stop_reason = ["budget"] * lay.B

    def node_active(self) -> np.ndarray:
        return self.active[self.lay.owner]

    def finish_round(self, r: int, condition_met: np.ndarray) -> None:
        """Close round ``r``: record stop rounds, retire satisfied/budget-out
        instances.  ``condition_met`` flags instances whose stop rule held."""
        self.stop_round[self.active] = r
        met = self.active & condition_met
        for b in np.flatnonzero(met):
            self.stop_reason[b] = "condition"
        self.active = self.active & ~met & (r < self.lay.max_rounds)

    def results(
        self,
        derived: List[Dict[str, Any]],
        traces: Optional[List[Any]] = None,
    ) -> List[BackendResult]:
        if traces is None:
            traces = [rec.trace for rec in self.recs]
        return [
            BackendResult(
                simulation=SimulationResult(
                    trace=traces[b],
                    nodes=[],
                    stop_round=int(self.stop_round[b]),
                    stop_reason=self.stop_reason[b],
                ),
                derived=derived[b],
            )
            for b in range(self.lay.B)
        ]


class _SummaryAggregates:
    """Whole-run per-instance aggregates for the fast (summary/none) path.

    Totals live in length-B arrays updated with one bincount per round;
    per-node first-informed / first-ack / last-ack rounds live in stacked
    arrays (0 = never; real rounds start at 1), exactly the state the
    incremental trace recorder would have built.
    """

    def __init__(self, lay: _BatchLayout) -> None:
        self.lay = lay
        self.tx = np.zeros(lay.B, dtype=np.int64)
        self.rx = np.zeros(lay.B, dtype=np.int64)
        self.col = np.zeros(lay.B, dtype=np.int64)
        self.fixed = np.zeros(lay.B, dtype=np.float64)
        self.first_informed = np.zeros(lay.total, dtype=np.int64)
        self.ack_first = np.zeros(lay.total, dtype=np.int64)
        self.ack_last = np.zeros(lay.total, dtype=np.int64)

    def add_channel(self, tx_ids, hears_ids, collision_ids) -> None:
        self.tx += self.lay.counts(tx_ids)
        self.rx += self.lay.counts(hears_ids)
        self.col += self.lay.counts(collision_ids)

    def mark_informed(self, ids: np.ndarray, r: int) -> None:
        if ids.size:
            unset = self.first_informed[ids] == 0
            self.first_informed[ids[unset]] = r

    def mark_acks(self, ids: np.ndarray, r: int) -> None:
        if ids.size:
            unset = self.ack_first[ids] == 0
            self.ack_first[ids[unset]] = r
            self.ack_last[ids] = r

    def trace_for(
        self,
        b: int,
        *,
        num_rounds: int,
        kind_hist: Dict[str, int],
        fixed_bits: float,
        payload_messages: int,
    ):
        task = self.lay.tasks[b]
        lo, hi = self.lay.offsets[b], self.lay.offsets[b + 1]
        informed_first: Dict[int, int] = {}
        ack_first: Dict[int, int] = {}
        ack_last: Dict[int, int] = {}
        if task.trace_level != "none":
            for v, first in enumerate(self.first_informed[lo:hi]):
                if first:
                    informed_first[v] = int(first)
            for v, first in enumerate(self.ack_first[lo:hi]):
                if first:
                    ack_first[v] = int(first)
                    ack_last[v] = int(self.ack_last[lo + v])
        return ExecutionTrace.from_aggregates(
            task.graph.n,
            task.source,
            level=task.trace_level,
            num_rounds=int(num_rounds),
            total_transmissions=int(self.tx[b]),
            total_receptions=int(self.rx[b]),
            total_collisions=int(self.col[b]),
            kind_hist=kind_hist,
            fixed_bits=int(round(fixed_bits)),
            payload_messages=int(payload_messages),
            informed_first=informed_first,
            ack_first=ack_first,
            ack_last=ack_last,
        )


def _stack_bit_labels(lay: _BatchLayout) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    x1 = np.zeros(lay.total, dtype=bool)
    x2 = np.zeros(lay.total, dtype=bool)
    x3 = np.zeros(lay.total, dtype=bool)
    for b, task in enumerate(lay.tasks):
        lo, hi = lay.offsets[b], lay.offsets[b + 1]
        a1, a2, a3 = _parse_bit_labels(task.labels, task.graph.n)
        x1[lo:hi], x2[lo:hi], x3[lo:hi] = a1, a2, a3
    return x1, x2, x3


def _stop_rule_mask(lay: _BatchLayout, rule: str) -> np.ndarray:
    return np.array([t.stop_rule == rule for t in lay.tasks], dtype=bool)


# --------------------------------------------------------------------------- #
# Algorithm B — plain broadcast, all instances per round
# --------------------------------------------------------------------------- #
def run_broadcast_batch(tasks: Sequence[SimulationTask]) -> List[BackendResult]:
    lay = _BatchLayout(tasks)
    run = _BatchRun(lay)
    channel = lay.channel()
    x1, x2, _ = _stack_bit_labels(lay)
    stop_all = _stop_rule_mask(lay, "all_informed")

    informed = np.zeros(lay.total, dtype=bool)
    informed[lay.sources] = True
    informed_count = np.ones(lay.B, dtype=np.int64)
    informed_r = np.full(lay.total, _NEVER, dtype=np.int64)
    sent_src_prev = np.zeros(lay.total, dtype=bool)
    sent_src_prev2 = np.zeros(lay.total, dtype=bool)
    heard_stay_prev = np.zeros(lay.total, dtype=bool)
    completion: List[Optional[int]] = [None] * lay.B
    agg = _SummaryAggregates(lay) if run.fast else None
    src_tx_total = np.zeros(lay.B, dtype=np.int64)

    r = 0
    while run.active.any():
        r += 1
        node_active = run.node_active()

        m3 = (informed_r == r - 2) & node_active
        m4 = (informed_r == r - 1) & node_active
        tx_source = (m3 & x1) | (
            informed & ~m3 & ~m4 & sent_src_prev2 & heard_stay_prev & node_active
        )
        if r == 1:
            tx_source[lay.sources[run.active]] = True
        tx_stay = m4 & x2

        tx_ids, hears_ids, senders, collision_ids = channel.resolve(tx_source | tx_stay)

        heard_stay_now = np.zeros(lay.total, dtype=bool)
        if hears_ids.size:
            sender_is_stay = tx_stay[senders]
            heard_stay_now[hears_ids[sender_is_stay]] = True
            mu_hearers = hears_ids[~sender_is_stay]
            new_ids = mu_hearers[~informed[mu_hearers]]
            informed[new_ids] = True
            informed_r[new_ids] = r
            informed_count += lay.counts(new_ids)
        else:
            mu_hearers = _EMPTY

        if run.fast:
            agg.add_channel(tx_ids, hears_ids, collision_ids)
            src_tx_total += lay.counts(tx_ids[tx_source[tx_ids]])
            agg.mark_informed(mu_hearers, r)
        else:
            tx_pts = lay.split_points(tx_ids)
            rx_pts = lay.split_points(hears_ids)
            col_pts = lay.split_points(collision_ids)
            mu_pts = lay.split_points(mu_hearers)
            for b in np.flatnonzero(run.active):
                rec, off = run.recs[b], lay.offsets[b]
                b_tx = tx_ids[tx_pts[b] : tx_pts[b + 1]]
                n_src_tx = int(np.count_nonzero(tx_source[b_tx]))
                n_stay_tx = int(b_tx.size) - n_src_tx
                if rec.full:
                    src_msg = source_message(lay.tasks[b].payload)
                    stay_msg = stay_message()
                    transmissions = {
                        int(u - off): (src_msg if tx_source[u] else stay_msg)
                        for u in b_tx
                    }
                    receptions = {
                        int(v - off): transmissions[int(u - off)]
                        for v, u in zip(
                            hears_ids[rx_pts[b] : rx_pts[b + 1]],
                            senders[rx_pts[b] : rx_pts[b + 1]],
                        )
                    }
                    rec.full_round(
                        r, transmissions, receptions,
                        collision_ids[col_pts[b] : col_pts[b + 1]] - off,
                    )
                else:
                    rec.summary_round(
                        r,
                        transmissions=int(b_tx.size),
                        receptions=int(rx_pts[b + 1] - rx_pts[b]),
                        collisions=int(col_pts[b + 1] - col_pts[b]),
                        kinds={"source": n_src_tx, "stay": n_stay_tx},
                        fixed_bits=2 * n_stay_tx,
                        payload_messages=n_src_tx,
                        informed=mu_hearers[mu_pts[b] : mu_pts[b + 1]] - off,
                        ack_hearers=(),
                    )

        sent_src_prev2, sent_src_prev = sent_src_prev, tx_source
        heard_stay_prev = heard_stay_now
        done = informed_count == lay.ns
        for b in np.flatnonzero(run.active & done):
            if completion[b] is None:
                completion[b] = r
        run.finish_round(r, stop_all & done)

    derived = [{"completion_round": completion[b]} for b in range(lay.B)]
    if run.fast:
        traces = []
        for b in range(lay.B):
            n_src = int(src_tx_total[b])
            n_stay = int(agg.tx[b]) - n_src
            traces.append(
                agg.trace_for(
                    b,
                    num_rounds=run.stop_round[b],
                    kind_hist={"source": n_src, "stay": n_stay},
                    fixed_bits=2 * n_stay,
                    payload_messages=n_src,
                )
            )
        return run.results(derived, traces)
    return run.results(derived)


# --------------------------------------------------------------------------- #
# Algorithm B_ack — acknowledged broadcast, all instances per round
# --------------------------------------------------------------------------- #
def run_acknowledged_batch(tasks: Sequence[SimulationTask]) -> List[BackendResult]:
    lay = _BatchLayout(tasks)
    run = _BatchRun(lay)
    channel = lay.channel()
    x1, x2, x3 = _stack_bit_labels(lay)
    stop_ack = _stop_rule_mask(lay, "acknowledged")
    stop_all = _stop_rule_mask(lay, "all_informed")
    is_src = np.zeros(lay.total, dtype=bool)
    is_src[lay.sources] = True
    src_of = lay.sources[lay.owner]  # each node's own instance source

    informed = np.zeros(lay.total, dtype=bool)
    informed[lay.sources] = True
    informed_count = np.ones(lay.B, dtype=np.int64)
    informed_r = np.full(lay.total, _NEVER, dtype=np.int64)
    informed_stamp = np.zeros(lay.total, dtype=np.int64)
    sent_src_prev = np.zeros(lay.total, dtype=bool)
    sent_src_prev2 = np.zeros(lay.total, dtype=bool)
    heard_stay_prev = np.zeros(lay.total, dtype=bool)
    heard_stay_stamp = np.zeros(lay.total, dtype=np.int64)
    prev_acks: List[Tuple[int, int]] = []  # (stacked hearer id, heard stamp)
    transmit_stamps: Dict[int, Set[int]] = {}  # keyed by stacked id: disjoint per instance

    first_ack: List[Optional[int]] = [None] * lay.B
    completion: List[Optional[int]] = [None] * lay.B
    agg = _SummaryAggregates(lay) if run.fast else None
    src_tx_total = np.zeros(lay.B, dtype=np.int64)
    stay_tx_total = np.zeros(lay.B, dtype=np.int64)

    r = 0
    while run.active.any():
        r += 1
        node_active = run.node_active()
        tx_kind = np.zeros(lay.total, dtype=np.int8)
        tx_stamp = np.zeros(lay.total, dtype=np.int64)

        if r == 1:
            srcs = lay.sources[run.active]
            tx_kind[srcs] = _K_SOURCE
            tx_stamp[srcs] = 1
        m3 = (informed_r == r - 2) & node_active
        m4 = (informed_r == r - 1) & node_active
        a3 = m3 & x1
        if a3.any():
            ids = np.flatnonzero(a3)
            stamps = informed_stamp[ids] + 2
            tx_kind[ids] = _K_SOURCE
            tx_stamp[ids] = stamps
            for v, s in zip(ids, stamps):
                transmit_stamps.setdefault(int(v), set()).add(int(s))
        a4_ack = m4 & x3
        tx_kind[a4_ack] = _K_ACK
        tx_stamp[a4_ack] = informed_stamp[a4_ack]
        a4_stay = m4 & ~x3 & x2
        tx_kind[a4_stay] = _K_STAY
        tx_stamp[a4_stay] = informed_stamp[a4_stay] + 1
        m5 = informed & ~m3 & ~m4 & heard_stay_prev & node_active
        a5 = m5 & sent_src_prev2
        if a5.any():
            ids = np.flatnonzero(a5)
            stamps = heard_stay_stamp[ids] + 1
            tx_kind[ids] = _K_SOURCE
            tx_stamp[ids] = stamps
            for v, s in zip(ids, stamps):
                if not is_src[v]:
                    transmit_stamps.setdefault(int(v), set()).add(int(s))
        for v, heard_stamp in prev_acks:
            if is_src[v] or not informed[v] or not node_active[v]:
                continue
            ir = informed_r[v]
            if ir == r - 2 or ir == r - 1 or heard_stay_prev[v] or tx_kind[v]:
                continue
            if heard_stamp in transmit_stamps.get(v, ()):
                tx_kind[v] = _K_ACK
                tx_stamp[v] = informed_stamp[v]

        tx_ids, hears_ids, senders, collision_ids = channel.resolve(tx_kind > 0)

        heard_stay_now = np.zeros(lay.total, dtype=bool)
        heard_stay_stamp_now = np.zeros(lay.total, dtype=np.int64)
        next_acks: List[Tuple[int, int]] = []
        mu_hearers = _EMPTY
        ack_hearers = _EMPTY
        if hears_ids.size:
            heard_kind = tx_kind[senders]
            heard_stamp = tx_stamp[senders]
            mu_sel = heard_kind == _K_SOURCE
            mu_hearers = hears_ids[mu_sel]
            new_sel = mu_sel & ~informed[hears_ids]
            new_ids = hears_ids[new_sel]
            informed[new_ids] = True
            informed_r[new_ids] = r
            informed_stamp[new_ids] = heard_stamp[new_sel]
            informed_count += lay.counts(new_ids)
            stay_sel = heard_kind == _K_STAY
            heard_stay_now[hears_ids[stay_sel]] = True
            heard_stay_stamp_now[hears_ids[stay_sel]] = heard_stamp[stay_sel]
            ack_sel = heard_kind == _K_ACK
            ack_hearers = hears_ids[ack_sel]
            next_acks = [
                (int(v), int(s)) for v, s in zip(ack_hearers, heard_stamp[ack_sel])
            ]
            for v in ack_hearers[ack_hearers == src_of[ack_hearers]]:
                b = int(lay.owner[v])
                if first_ack[b] is None:
                    first_ack[b] = r

        if run.fast:
            agg.add_channel(tx_ids, hears_ids, collision_ids)
            kinds_tx = tx_kind[tx_ids]
            src_tx_total += lay.counts(tx_ids[kinds_tx == _K_SOURCE])
            stay_tx_total += lay.counts(tx_ids[kinds_tx == _K_STAY])
            if tx_ids.size:
                agg.fixed += np.bincount(
                    lay.owner[tx_ids],
                    weights=_stamp_bits(tx_stamp[tx_ids]),
                    minlength=lay.B,
                )
            agg.mark_informed(mu_hearers, r)
            agg.mark_acks(ack_hearers, r)
        else:
            tx_pts = lay.split_points(tx_ids)
            rx_pts = lay.split_points(hears_ids)
            col_pts = lay.split_points(collision_ids)
            mu_pts = lay.split_points(mu_hearers)
            ack_pts = lay.split_points(ack_hearers)
            for b in np.flatnonzero(run.active):
                rec, off = run.recs[b], lay.offsets[b]
                b_tx = tx_ids[tx_pts[b] : tx_pts[b + 1]]
                if rec.full:
                    transmissions: Dict[int, Message] = {}
                    for u in b_tx:
                        u = int(u)
                        stamp = int(tx_stamp[u])
                        if tx_kind[u] == _K_SOURCE:
                            msg = source_message(lay.tasks[b].payload, round_stamp=stamp)
                        elif tx_kind[u] == _K_STAY:
                            msg = stay_message(round_stamp=stamp)
                        else:
                            msg = ack_message(stamp)
                        transmissions[u - int(off)] = msg
                    receptions = {
                        int(v - off): transmissions[int(u - off)]
                        for v, u in zip(
                            hears_ids[rx_pts[b] : rx_pts[b + 1]],
                            senders[rx_pts[b] : rx_pts[b + 1]],
                        )
                    }
                    rec.full_round(
                        r, transmissions, receptions,
                        collision_ids[col_pts[b] : col_pts[b + 1]] - off,
                    )
                else:
                    kinds_tx = tx_kind[b_tx]
                    stamps = tx_stamp[b_tx]
                    n_src_tx = int(np.count_nonzero(kinds_tx == _K_SOURCE))
                    n_stay_tx = int(np.count_nonzero(kinds_tx == _K_STAY))
                    n_ack_tx = int(b_tx.size) - n_src_tx - n_stay_tx
                    fixed = int(_stamp_bits(stamps).sum()) + 2 * (n_stay_tx + n_ack_tx)
                    rec.summary_round(
                        r,
                        transmissions=int(b_tx.size),
                        receptions=int(rx_pts[b + 1] - rx_pts[b]),
                        collisions=int(col_pts[b + 1] - col_pts[b]),
                        kinds={"source": n_src_tx, "stay": n_stay_tx, "ack": n_ack_tx},
                        fixed_bits=fixed,
                        payload_messages=n_src_tx,
                        informed=mu_hearers[mu_pts[b] : mu_pts[b + 1]] - off,
                        ack_hearers=ack_hearers[ack_pts[b] : ack_pts[b + 1]] - off,
                    )

        sent_src_prev2, sent_src_prev = sent_src_prev, tx_kind == _K_SOURCE
        heard_stay_prev = heard_stay_now
        heard_stay_stamp = heard_stay_stamp_now
        prev_acks = next_acks
        done = informed_count == lay.ns
        for b in np.flatnonzero(run.active & done):
            if completion[b] is None:
                completion[b] = r
        acked = np.array([fa is not None for fa in first_ack], dtype=bool)
        run.finish_round(r, (stop_ack & acked) | (stop_all & done))

    derived = [
        {"completion_round": completion[b], "acknowledgement_round": first_ack[b]}
        for b in range(lay.B)
    ]
    if run.fast:
        traces = []
        for b in range(lay.B):
            n_src = int(src_tx_total[b])
            n_stay = int(stay_tx_total[b])
            n_ack = int(agg.tx[b]) - n_src - n_stay
            traces.append(
                agg.trace_for(
                    b,
                    num_rounds=run.stop_round[b],
                    kind_hist={"source": n_src, "stay": n_stay, "ack": n_ack},
                    fixed_bits=agg.fixed[b] + 2 * (n_stay + n_ack),
                    payload_messages=n_src,
                )
            )
        return run.results(derived, traces)
    return run.results(derived)


# --------------------------------------------------------------------------- #
# Algorithm B_arb — arbitrary-source broadcast, all instances per round
# --------------------------------------------------------------------------- #
def run_arbitrary_batch(tasks: Sequence[SimulationTask]) -> List[BackendResult]:
    """B_arb over stacked instances: per-instance coordinator state as arrays.

    The blocker that kept B_arb out of the stacked engine was the
    coordinator's scalar scheduling state (T, the READY/SOURCE phase timers,
    the learned payload).  Here every scalar becomes a length-B array — with
    ``-1`` standing in for "not scheduled" (real rounds start at 1) and a
    ``has`` mask wherever 0 is a legal value — and the coordinator branches
    become per-instance masks, so one kernel round advances every instance's
    three acknowledged-broadcast phases together.  The sparse events (the
    ack chains, the per-node transmitted-stamp sets) stay keyed by *stacked*
    node id, which is disjoint across instances by construction; outcomes are
    bit-for-bit identical to the single-instance kernel (asserted by
    ``tests/test_batched_equivalence.py``).
    """
    lay = _BatchLayout(tasks)
    run = _BatchRun(lay)
    channel = lay.channel()
    x1, x2, x3 = _stack_bit_labels(lay)
    stop_arb = _stop_rule_mask(lay, "arb_complete")
    B, total = lay.B, lay.total

    coords_local: List[int] = []
    for task in lay.tasks:
        coordinator = task.extras.get("coordinator")
        if coordinator is None:
            matches = [v for v in range(task.graph.n) if task.labels[v] == "111"]
            if not matches:
                raise BackendError("λ_arb labeling has no coordinator label '111'")
            coordinator = matches[0]
        coords_local.append(int(coordinator))
    coords = lay.offsets[:-1] + np.array(coords_local, dtype=np.int64)
    srcs = lay.sources
    coord_of = coords[lay.owner]  # each node's own instance coordinator
    payloads = [t.payload for t in lay.tasks]

    # Per-phase stacked state: 0 = initialize, 1 = ready, 2 = source.
    ph_inf = np.full((3, total), _NEVER, dtype=np.int64)
    ph_stamp = np.zeros((3, total), dtype=np.int64)
    transmit_stamps: Tuple[Dict[int, Set[int]], ...] = ({}, {}, {})
    t_v = np.full(total, -1, dtype=np.int64)
    t_v[coords] = 0
    T_arr = np.full(total, -1, dtype=np.int64)
    known = np.zeros(total, dtype=bool)
    completion_known = np.zeros(total, dtype=np.int64)

    sent_kind_prev = np.zeros(total, dtype=np.int8)
    sent_kind_prev2 = np.zeros(total, dtype=np.int8)
    heard_stay_prev = np.zeros(total, dtype=bool)
    heard_stay_stamp = np.zeros(total, dtype=np.int64)
    prev_acks: List[Tuple[int, int, Any]] = []  # (stacked hearer, stamp, payload)

    # Coordinator / actual-source scheduling state, one slot per instance.
    # T_c_val is only meaningful where T_c_has (0 is a legal T value).
    T_c_val = np.zeros(B, dtype=np.int64)
    T_c_has = np.zeros(B, dtype=bool)
    sched_ready = np.full(B, -1, dtype=np.int64)
    sched_source = np.full(B, -1, dtype=np.int64)
    ready_sent = np.full(B, -1, dtype=np.int64)
    sched_src_ack = np.full(B, -1, dtype=np.int64)
    learned_payload: List[Any] = [
        payloads[b] if coords_local[b] == int(srcs[b] - lay.offsets[b]) else None
        for b in range(B)
    ]
    coord_ack_first: List[Optional[int]] = [None] * B
    coord_ack_last: List[Optional[int]] = [None] * B

    agg = _SummaryAggregates(lay) if run.fast else None
    kind_tx_total = np.zeros((6, B), dtype=np.int64)  # indexed by kind code
    ack_fixed_extra = np.zeros(B, dtype=np.int64)
    ack_payload_msgs = np.zeros(B, dtype=np.int64)

    r = 0
    while run.active.any():
        r += 1
        node_active = run.node_active()
        active = run.active
        tx_kind = np.zeros(total, dtype=np.int8)
        tx_stamp = np.zeros(total, dtype=np.int64)
        ack_payloads: Dict[int, Any] = {}
        decided = np.zeros(total, dtype=bool)

        # Coordinator phase starts (the single-instance kernel's elif chain,
        # checked first; every instance's local clock starts at round 1).
        if r == 1:
            ids = coords[active]
            tx_kind[ids] = _K_INIT
            tx_stamp[ids] = 1
            decided[ids] = True
        else:
            m_ready = active & (sched_ready == r) & T_c_has
            if m_ready.any():
                ready_sent[m_ready] = r
                m_rs = m_ready & (coords == srcs)
                sched_source[m_rs] = r + T_c_val[m_rs] + 1
                ids = coords[m_ready]
                tx_kind[ids] = _K_READY
                tx_stamp[ids] = r
                decided[ids] = True
            learned_has = np.fromiter(
                (lp is not None for lp in learned_payload), dtype=bool, count=B
            )
            m_src = active & ~m_ready & (sched_source == r) & learned_has
            if m_src.any():
                ids = coords[m_src]
                known[ids] = True
                completion_known[ids] = r + T_c_val[m_src] - 1
                tx_kind[ids] = _K_SOURCE
                tx_stamp[ids] = r
                decided[ids] = True

        # The actual source starts the phase-2 acknowledgement after its timer.
        m_sa = active & (sched_src_ack == r) & ~decided[srcs]
        if m_sa.any():
            ids = srcs[m_sa]
            tx_kind[ids] = _K_ACK
            tx_stamp[ids] = ph_stamp[1][ids]
            for b in np.flatnonzero(m_sa):
                ack_payloads[int(srcs[b])] = payloads[b]
            decided[ids] = True

        # Shared B_ack rules, per phase, in phase order.
        und = ~decided & node_active
        for k in range(3):
            inf_k = ph_inf[k]
            stamp_k = ph_stamp[k]
            mA = und & (inf_k == r - 2) & x1
            if mA.any():
                ids = np.flatnonzero(mA)
                stamps = stamp_k[ids] + 2
                tx_kind[ids] = _K_INIT + k
                tx_stamp[ids] = stamps
                for v, s in zip(ids, stamps):
                    transmit_stamps[k].setdefault(int(v), set()).add(int(s))
                und &= ~mA
            newly1 = inf_k == r - 1
            if k == 0:  # z starts the phase-1 ack, appending T = t_z
                mAck = und & newly1 & x3
                if mAck.any():
                    ids = np.flatnonzero(mAck)
                    tx_kind[ids] = _K_ACK
                    tx_stamp[ids] = stamp_k[ids]
                    for v in ids:
                        ack_payloads[int(v)] = int(stamp_k[v])
                    und &= ~mAck
            mStay = und & newly1 & x2
            if mStay.any():
                tx_kind[mStay] = _K_STAY
                tx_stamp[mStay] = stamp_k[mStay] + 1
                und &= ~mStay

        # Stay-triggered retransmission (any phase, coordinator included).
        mS = und & heard_stay_prev
        aS = mS & (sent_kind_prev2 >= _K_INIT) & (sent_kind_prev2 <= _K_SOURCE)
        if aS.any():
            ids = np.flatnonzero(aS)
            stamps = heard_stay_stamp[ids] + 1
            tx_kind[ids] = sent_kind_prev2[ids]
            tx_stamp[ids] = stamps
            for v, s in zip(ids, stamps):
                if int(v) != int(coord_of[v]):
                    transmit_stamps[int(sent_kind_prev2[v]) - _K_INIT].setdefault(
                        int(v), set()
                    ).add(int(s))
            und &= ~aS

        # Ack relaying (sparse: each chain walks back one hop per round).
        for v, heard_stamp, ack_pay in prev_acks:
            if v == int(coord_of[v]) or not und[v] or tx_kind[v]:
                continue
            for k in range(3):
                stamps_v = transmit_stamps[k].get(v)
                if stamps_v and heard_stamp in stamps_v:
                    tx_kind[v] = _K_ACK
                    tx_stamp[v] = ph_stamp[k][v]
                    ack_payloads[v] = ack_pay
                    break

        tx_ids, hears_ids, senders, collision_ids = channel.resolve(tx_kind > 0)

        # Deliver.
        heard_stay_now = np.zeros(total, dtype=bool)
        heard_stay_stamp_now = np.zeros(total, dtype=np.int64)
        next_acks: List[Tuple[int, int, Any]] = []
        mu_hearers = _EMPTY
        ack_hearers = _EMPTY
        if hears_ids.size:
            heard_kind = tx_kind[senders]
            heard_stamp = tx_stamp[senders]
            for k in range(3):  # first receipt of a phase's broadcast payload
                sel = heard_kind == _K_INIT + k
                if not sel.any():
                    continue
                vs = hears_ids[sel]
                sts = heard_stamp[sel]
                keep = (vs != coord_of[vs]) & (ph_inf[k][vs] == _NEVER)
                vs, sts = vs[keep], sts[keep]
                if vs.size == 0:
                    continue
                ph_inf[k][vs] = r
                ph_stamp[k][vs] = sts
                if k == 0:
                    t_v[vs] = sts
                elif k == 1:
                    ov = lay.owner[vs]
                    T_arr[vs] = np.where(T_c_has[ov], T_c_val[ov], 0)
                    src_hits = vs[vs == srcs[ov]]
                    for v in src_hits:
                        b = int(lay.owner[v])
                        sched_src_ack[b] = r + int(T_arr[v]) + 1
                else:
                    ready_t = (T_arr[vs] >= 0) & (t_v[vs] >= 0)
                    done = vs[ready_t]
                    known[done] = True
                    completion_known[done] = r + T_arr[done] - t_v[done]
            mu_hearers = hears_ids[heard_kind == _K_SOURCE]
            stay_sel = heard_kind == _K_STAY
            heard_stay_now[hears_ids[stay_sel]] = True
            heard_stay_stamp_now[hears_ids[stay_sel]] = heard_stamp[stay_sel]
            ack_sel = heard_kind == _K_ACK
            ack_hearers = hears_ids[ack_sel]
            if ack_hearers.size:
                for v, s, u in zip(
                    ack_hearers, heard_stamp[ack_sel], senders[ack_sel]
                ):
                    pay = ack_payloads.get(int(u))
                    next_acks.append((int(v), int(s), pay))
                    if int(v) == int(coord_of[v]):
                        b = int(lay.owner[v])
                        coord_ack_last[b] = r
                        if coord_ack_first[b] is None:
                            coord_ack_first[b] = r
                        if not T_c_has[b]:
                            T_c_val[b] = int(pay) if pay is not None else 0
                            T_c_has[b] = True
                            sched_ready[b] = r + T_c_val[b] + 1
                        elif (
                            ready_sent[b] != -1
                            and r > ready_sent[b]
                            and sched_source[b] == -1
                        ):
                            learned_payload[b] = pay
                            sched_source[b] = r + T_c_val[b] + 1

        # Record.
        if run.fast:
            agg.add_channel(tx_ids, hears_ids, collision_ids)
            kinds_tx = tx_kind[tx_ids]
            for code in range(_K_INIT, _K_ACK + 1):
                sel = kinds_tx == code
                if sel.any():
                    kind_tx_total[code] += lay.counts(tx_ids[sel])
            if tx_ids.size:
                agg.fixed += np.bincount(
                    lay.owner[tx_ids],
                    weights=_stamp_bits(tx_stamp[tx_ids]),
                    minlength=B,
                )
            for u in tx_ids[kinds_tx == _K_ACK]:
                pay = ack_payloads.get(int(u))
                if pay is None:
                    continue
                b = int(lay.owner[u])
                if isinstance(pay, int):
                    ack_fixed_extra[b] += _int_payload_bits(pay)
                else:
                    ack_payload_msgs[b] += 1
            agg.mark_informed(mu_hearers, r)
            agg.mark_acks(ack_hearers, r)
        else:
            tx_pts = lay.split_points(tx_ids)
            rx_pts = lay.split_points(hears_ids)
            col_pts = lay.split_points(collision_ids)
            mu_pts = lay.split_points(mu_hearers)
            ack_pts = lay.split_points(ack_hearers)
            for b in np.flatnonzero(run.active):
                rec, off = run.recs[b], lay.offsets[b]
                b_tx = tx_ids[tx_pts[b] : tx_pts[b + 1]]
                if rec.full:
                    transmissions: Dict[int, Message] = {}
                    for u in b_tx:
                        u = int(u)
                        kind = int(tx_kind[u])
                        stamp = int(tx_stamp[u])
                        if kind == _K_INIT:
                            msg = initialize_message(round_stamp=stamp)
                        elif kind == _K_READY:
                            msg = ready_message(int(T_c_val[b]), round_stamp=stamp)
                        elif kind == _K_SOURCE:
                            msg = source_message(payloads[b], round_stamp=stamp)
                        elif kind == _K_STAY:
                            msg = stay_message(round_stamp=stamp)
                        else:
                            msg = ack_message(stamp, payload=ack_payloads.get(u))
                        transmissions[u - int(off)] = msg
                    receptions = {
                        int(v - off): transmissions[int(u - off)]
                        for v, u in zip(
                            hears_ids[rx_pts[b] : rx_pts[b + 1]],
                            senders[rx_pts[b] : rx_pts[b + 1]],
                        )
                    }
                    rec.full_round(
                        r, transmissions, receptions,
                        collision_ids[col_pts[b] : col_pts[b + 1]] - off,
                    )
                else:
                    kinds_tx = tx_kind[b_tx]
                    stamps = tx_stamp[b_tx]
                    counts = {
                        name: int(np.count_nonzero(kinds_tx == code))
                        for code, name in _KIND_NAMES.items()
                        if np.any(kinds_tx == code)
                    }
                    n_src_tx = counts.get("source", 0)
                    n_ready_tx = counts.get("ready", 0)
                    non_source = int(b_tx.size) - n_src_tx
                    fixed = int(_stamp_bits(stamps).sum()) + 2 * non_source
                    if n_ready_tx:
                        fixed += n_ready_tx * _int_payload_bits(int(T_c_val[b]))
                    payload_msgs = n_src_tx
                    for u in b_tx[kinds_tx == _K_ACK]:
                        pay = ack_payloads.get(int(u))
                        if pay is None:
                            continue
                        if isinstance(pay, int):
                            fixed += _int_payload_bits(pay)
                        else:
                            payload_msgs += 1
                    rec.summary_round(
                        r,
                        transmissions=int(b_tx.size),
                        receptions=int(rx_pts[b + 1] - rx_pts[b]),
                        collisions=int(col_pts[b + 1] - col_pts[b]),
                        kinds=counts,
                        fixed_bits=fixed,
                        payload_messages=payload_msgs,
                        informed=mu_hearers[mu_pts[b] : mu_pts[b + 1]] - off,
                        ack_hearers=ack_hearers[ack_pts[b] : ack_pts[b + 1]] - off,
                    )

        sent_kind_prev2, sent_kind_prev = sent_kind_prev, tx_kind
        heard_stay_prev = heard_stay_now
        heard_stay_stamp = heard_stay_stamp_now
        prev_acks = next_acks
        known_all = np.bincount(lay.owner[known], minlength=B) == lay.ns
        run.finish_round(r, stop_arb & known_all)

    # Derived outcomes, mirroring the single-instance kernel's derivation.
    derived: List[Dict[str, Any]] = []
    for b in range(B):
        lo, hi = int(lay.offsets[b]), int(lay.offsets[b + 1])
        c_local = coords_local[b]
        src_local = int(srcs[b]) - lo
        receipt_rounds: List[int] = []
        missing = False
        for v in range(hi - lo):
            if v in (src_local, c_local):
                continue
            if ph_inf[2][lo + v] == _NEVER:
                missing = True
                break
            receipt_rounds.append(int(ph_inf[2][lo + v]))
        coordinator_learned_round = (
            coord_ack_last[b] if c_local != src_local else None
        )
        completion: Optional[int] = None
        if not missing and (learned_payload[b] is not None or c_local == src_local):
            candidates = list(receipt_rounds)
            if coordinator_learned_round is not None:
                candidates.append(coordinator_learned_round)
            completion = max(candidates) if candidates else 1
        common: Optional[int] = None
        if bool(known[lo:hi].all()) and hi > lo:
            values = np.unique(completion_known[lo:hi])
            if values.size == 1:
                common = int(values[0])
        derived.append(
            {
                "completion_round": completion,
                "acknowledgement_round": coord_ack_first[b],
                "common_completion_round": common,
                "coordinator": c_local,
            }
        )

    if run.fast:
        traces = []
        for b in range(B):
            counts = {
                name: int(kind_tx_total[code][b])
                for code, name in _KIND_NAMES.items()
                if kind_tx_total[code][b]
            }
            n_src = counts.get("source", 0)
            n_ready = counts.get("ready", 0)
            non_source = int(agg.tx[b]) - n_src
            fixed = agg.fixed[b] + 2 * non_source + int(ack_fixed_extra[b])
            if n_ready:
                # T is fixed from the moment the first READY exists, so the
                # whole-run payload-bit total is one multiply.
                fixed += n_ready * _int_payload_bits(int(T_c_val[b]))
            traces.append(
                agg.trace_for(
                    b,
                    num_rounds=run.stop_round[b],
                    kind_hist=counts,
                    fixed_bits=fixed,
                    payload_messages=n_src + int(ack_payload_msgs[b]),
                )
            )
        return run.results(derived, traces)
    return run.results(derived)


# --------------------------------------------------------------------------- #
# Source-flood baselines: shared stacked loop
# --------------------------------------------------------------------------- #
def _run_flood_batch(tasks, make_tx_mask) -> List[BackendResult]:
    """Stacked version of the single-instance source-flood loop.

    ``make_tx_mask(lay)`` compiles the batch's per-round transmit rule into a
    callable ``tx(r, informed, active) -> bool mask`` over stacked node ids.
    """
    lay = _BatchLayout(tasks)
    run = _BatchRun(lay)
    channel = lay.channel()
    tx_mask_for_round = make_tx_mask(lay)
    stop_all = _stop_rule_mask(lay, "all_informed")

    informed = np.zeros(lay.total, dtype=bool)
    informed[lay.sources] = True
    informed_count = np.ones(lay.B, dtype=np.int64)
    completion: List[Optional[int]] = [None] * lay.B
    agg = _SummaryAggregates(lay) if run.fast else None

    r = 0
    while run.active.any():
        r += 1
        tx_mask = tx_mask_for_round(r, informed, run.active) & run.node_active()
        tx_ids, hears_ids, senders, collision_ids = channel.resolve(tx_mask)
        if hears_ids.size:
            new_ids = hears_ids[~informed[hears_ids]]
            informed[new_ids] = True
            informed_count += lay.counts(new_ids)

        if run.fast:
            agg.add_channel(tx_ids, hears_ids, collision_ids)
            agg.mark_informed(hears_ids, r)
        else:
            tx_pts = lay.split_points(tx_ids)
            rx_pts = lay.split_points(hears_ids)
            col_pts = lay.split_points(collision_ids)
            for b in np.flatnonzero(run.active):
                rec, off = run.recs[b], lay.offsets[b]
                n_tx = int(tx_pts[b + 1] - tx_pts[b])
                b_rx = hears_ids[rx_pts[b] : rx_pts[b + 1]]
                if rec.full:
                    msg = source_message(lay.tasks[b].payload)
                    transmissions = {
                        int(u - off): msg for u in tx_ids[tx_pts[b] : tx_pts[b + 1]]
                    }
                    receptions = {int(v - off): msg for v in b_rx}
                    rec.full_round(
                        r, transmissions, receptions,
                        collision_ids[col_pts[b] : col_pts[b + 1]] - off,
                    )
                else:
                    rec.summary_round(
                        r,
                        transmissions=n_tx,
                        receptions=int(b_rx.size),
                        collisions=int(col_pts[b + 1] - col_pts[b]),
                        kinds={"source": n_tx},
                        fixed_bits=0,
                        payload_messages=n_tx,
                        informed=b_rx - off,
                        ack_hearers=(),
                    )

        done = informed_count == lay.ns
        for b in np.flatnonzero(run.active & done):
            if completion[b] is None:
                completion[b] = r
        run.finish_round(r, stop_all & done)

    derived = [{"completion_round": completion[b]} for b in range(lay.B)]
    if run.fast:
        traces = [
            agg.trace_for(
                b,
                num_rounds=run.stop_round[b],
                kind_hist={"source": int(agg.tx[b])},
                fixed_bits=0,
                payload_messages=int(agg.tx[b]),
            )
            for b in range(lay.B)
        ]
        return run.results(derived, traces)
    return run.results(derived)


def run_slotted_batch(tasks: Sequence[SimulationTask]) -> List[BackendResult]:
    """Round-robin / G²-colouring TDMA over stacked instances."""

    def make(lay: _BatchLayout):
        slots = np.zeros(lay.total, dtype=np.int64)
        periods = np.ones(lay.total, dtype=np.int64)
        for b, task in enumerate(lay.tasks):
            lo, hi = lay.offsets[b], lay.offsets[b + 1]
            s, p = _parse_slot_labels(task.labels, task.graph.n)
            slots[lo:hi], periods[lo:hi] = s, p
        slot_residue = slots % periods

        def tx(r: int, informed: np.ndarray, active: np.ndarray) -> np.ndarray:
            return informed & ((r % periods) == slot_residue)

        return tx

    return _run_flood_batch(tasks, make)


def run_centralized_batch(tasks: Sequence[SimulationTask]) -> List[BackendResult]:
    """Centralized precomputed schedules over stacked instances."""

    def make(lay: _BatchLayout):
        schedules = [
            [
                np.asarray(round_ids, dtype=np.int64) + lay.offsets[b]
                for round_ids in task.extras.get("schedule", ())
            ]
            for b, task in enumerate(lay.tasks)
        ]

        def tx(r: int, informed: np.ndarray, active: np.ndarray) -> np.ndarray:
            mask = np.zeros(lay.total, dtype=bool)
            for b in np.flatnonzero(active):
                schedule = schedules[b]
                if r <= len(schedule):
                    mask[schedule[r - 1]] = True
            return mask & informed

        return tx

    return _run_flood_batch(tasks, make)


# --------------------------------------------------------------------------- #
# Collision-detection bit signalling — the OR-channel relay as array kernels
# --------------------------------------------------------------------------- #
def run_collision_detection_batch(tasks: Sequence[SimulationTask]) -> List[BackendResult]:
    """Anonymous bit-signalling broadcast, all instances per round.

    Mirrors :class:`~repro.baselines.collision_detection.BitSignalNode` branch
    for branch: the source emits symbol ``k`` in round ``3k + 1``; a node's
    first perceived energy (a message, or a collision under the detection
    channel) fixes its slot alignment; from then on it appends one symbol per
    slot (energy = 1, silence = 0) and relays symbol ``k`` one round after
    its listening round.  Payload decoding — the only non-array step — runs
    once per node, when its stream first spans the length header plus the
    advertised data bits.
    """
    lay = _BatchLayout(tasks)
    run = _BatchRun(lay)
    channel = lay.channel()
    stop_decoded = _stop_rule_mask(lay, "all_decoded")
    payload_strs = [str(t.payload) for t in lay.tasks]
    detection = np.array(
        [getattr(t.collision_model, "provides_detection", False) for t in lay.tasks],
        dtype=bool,
    )
    det_node = detection[lay.owner]
    is_src = np.zeros(lay.total, dtype=bool)
    is_src[lay.sources] = True

    # Source symbol streams: [preamble 1] + header + data, one per instance.
    streams = [
        np.array([1] + encode_payload_bits(p), dtype=np.int8) for p in payload_strs
    ]
    sym_len = np.array([s.size for s in streams], dtype=np.int64)
    s_max = int(sym_len.max())
    sym_arr = np.zeros((lay.B, s_max), dtype=np.int8)
    for b, stream in enumerate(streams):
        sym_arr[b, : stream.size] = stream

    # Received symbol streams.  A corrupted header can advertise more data
    # bits than the true stream carries, but a node can never append more
    # than one symbol per slot, so the budget bounds the stream length.
    cap = int(lay.max_rounds.max()) // SLOT_LENGTH + 2 if lay.B else 2
    recv = np.zeros((lay.total, cap), dtype=np.int8)
    recv_len = np.zeros(lay.total, dtype=np.int64)
    start_r = np.full(lay.total, -1, dtype=np.int64)
    decoded = np.zeros(lay.total, dtype=bool)
    decoded[lay.sources] = True
    matches = np.zeros(lay.total, dtype=bool)
    matches[lay.sources] = True  # the source holds µ verbatim
    attempted = np.zeros(lay.total, dtype=bool)
    need_len = np.full(lay.total, -1, dtype=np.int64)
    decoded_count = np.ones(lay.B, dtype=np.int64)
    pow_header = (1 << np.arange(LENGTH_HEADER_BITS - 1, -1, -1)).astype(np.int64)
    agg = _SummaryAggregates(lay) if run.fast else None

    r = 0
    while run.active.any():
        r += 1
        node_active = run.node_active()
        tx_mask = np.zeros(lay.total, dtype=bool)

        # Sources: all slots are globally aligned (every instance starts at
        # round 1), so one (k, offset) pair covers every source.
        k_src, off_src = divmod(r - 1, SLOT_LENGTH)
        if off_src == 0 and k_src < s_max:
            emit = run.active & (k_src < sym_len) & (sym_arr[:, k_src] == 1)
            tx_mask[lay.sources[emit]] = True
        # Relays: echo symbol k one round after the listening round for it.
        started_ids = np.flatnonzero((start_r >= 0) & node_active)
        if started_ids.size:
            delta = r - start_r[started_ids]
            k = delta // SLOT_LENGTH
            relay = (delta % SLOT_LENGTH == 1) & (k < recv_len[started_ids])
            rel_ids = started_ids[relay]
            if rel_ids.size:
                bits = recv[rel_ids, k[relay]]
                tx_mask[rel_ids[bits == 1]] = True

        tx_ids, hears_ids, senders, collision_ids = channel.resolve(tx_mask)

        # Perceived energy: a heard message always; a collision only under
        # the detection channel.
        energy = np.zeros(lay.total, dtype=bool)
        energy[hears_ids] = True
        if collision_ids.size:
            energy[collision_ids[det_node[collision_ids]]] = True
        listeners = ~is_src & node_active & ~tx_mask

        new_start = listeners & energy & (start_r < 0)
        ns_ids = np.flatnonzero(new_start)
        if ns_ids.size:
            start_r[ns_ids] = r
            recv[ns_ids, 0] = 1
            recv_len[ns_ids] = 1

        appenders = np.flatnonzero(listeners & (start_r >= 0) & ~new_start)
        if appenders.size:
            delta = r - start_r[appenders]
            k = delta // SLOT_LENGTH
            sel = (delta % SLOT_LENGTH == 0) & (k == recv_len[appenders])
            aids = appenders[sel]
            if aids.size:
                recv[aids, k[sel]] = energy[aids].astype(np.int8)
                recv_len[aids] += 1
                data_bits = recv_len[aids] - 1  # the preamble is not data
                hdr_ids = aids[
                    (need_len[aids] < 0) & (data_bits >= LENGTH_HEADER_BITS)
                ]
                if hdr_ids.size:
                    need_len[hdr_ids] = LENGTH_HEADER_BITS + (
                        recv[hdr_ids, 1 : 1 + LENGTH_HEADER_BITS].astype(np.int64)
                        @ pow_header
                    )
                complete = aids[
                    ~attempted[aids]
                    & (need_len[aids] >= 0)
                    & (data_bits >= need_len[aids])
                ]
                for v in complete:
                    v = int(v)
                    attempted[v] = True  # decode is a pure function of the
                    # now-fixed stream prefix: one attempt settles it forever
                    text = decode_payload_bits(
                        [int(bit) for bit in recv[v, 1 : recv_len[v]]]
                    )
                    if text is not None:
                        decoded[v] = True
                        b = int(lay.owner[v])
                        decoded_count[b] += 1
                        matches[v] = text == payload_strs[b]

        if run.fast:
            agg.add_channel(tx_ids, hears_ids, collision_ids)
            agg.mark_informed(hears_ids, r)
        else:
            tx_pts = lay.split_points(tx_ids)
            rx_pts = lay.split_points(hears_ids)
            col_pts = lay.split_points(collision_ids)
            for b in np.flatnonzero(run.active):
                rec, off = run.recs[b], lay.offsets[b]
                n_tx = int(tx_pts[b + 1] - tx_pts[b])
                b_rx = hears_ids[rx_pts[b] : rx_pts[b + 1]]
                if rec.full:
                    msg = source_message("1")
                    transmissions = {
                        int(u - off): msg for u in tx_ids[tx_pts[b] : tx_pts[b + 1]]
                    }
                    receptions = {int(v - off): msg for v in b_rx}
                    rec.full_round(
                        r, transmissions, receptions,
                        collision_ids[col_pts[b] : col_pts[b + 1]] - off,
                    )
                else:
                    rec.summary_round(
                        r,
                        transmissions=n_tx,
                        receptions=int(b_rx.size),
                        collisions=int(col_pts[b + 1] - col_pts[b]),
                        kinds={"source": n_tx},
                        fixed_bits=0,
                        payload_messages=n_tx,
                        informed=b_rx - off,
                        ack_hearers=(),
                    )

        run.finish_round(r, stop_decoded & (decoded_count == lay.ns))

    derived = []
    for b in range(lay.B):
        lo, hi = lay.offsets[b], lay.offsets[b + 1]
        derived.append(
            {
                "all_decoded": bool(decoded[lo:hi].all()),
                "decoded_correctly": bool(matches[lo:hi].all()),
            }
        )
    if run.fast:
        traces = [
            agg.trace_for(
                b,
                num_rounds=run.stop_round[b],
                kind_hist={"source": int(agg.tx[b])},
                fixed_bits=0,
                payload_messages=int(agg.tx[b]),
            )
            for b in range(lay.B)
        ]
        return run.results(derived, traces)
    return run.results(derived)


# --------------------------------------------------------------------------- #
# the backend
# --------------------------------------------------------------------------- #
_BATCH_KERNELS = {
    "broadcast": run_broadcast_batch,
    "acknowledged": run_acknowledged_batch,
    "arbitrary": run_arbitrary_batch,
    "round_robin": run_slotted_batch,
    "coloring_tdma": run_slotted_batch,
    "centralized": run_centralized_batch,
    "collision_detection": run_collision_detection_batch,
}


class BatchedVectorizedBackend(SimulationBackend):
    """Stacked-CSR NumPy kernels advancing many instances per round.

    Parameters
    ----------
    strict:
        If true, :meth:`run_batch` raises :class:`BackendError` on tasks the
        stacked kernels cannot execute instead of silently running them per
        task through the single-instance vectorized backend.
    """

    name = "batched"

    def __init__(self, *, strict: bool = False) -> None:
        self.strict = strict
        self._fallback = VectorizedBackend()

    def supports(self, task: SimulationTask) -> bool:
        """True if a stacked kernel covers ``task`` (same model envelope as
        the single-instance vectorized backend)."""
        return task.protocol in _BATCH_KERNELS and self._fallback.supports(task)

    def run_task(self, task: SimulationTask) -> BackendResult:
        return self.run_batch([task])[0]

    def run_batch(self, tasks: Sequence[SimulationTask]) -> List[BackendResult]:
        """Execute a homogeneous batch, stacked where possible.

        All tasks must share one protocol and one trace level (mixing either
        is a grouping bug in the caller and raises).  Tasks outside the
        stacked kernels' envelope — non-default fault/clock/collision models,
        custom node factories — run per task through the vectorized backend,
        which itself falls back to the reference engine where needed, so
        results are always exactly what per-task execution would have
        produced (and each result's ``backend`` tag names the engine that
        actually ran it).
        """
        tasks = list(tasks)
        if not tasks:
            return []
        protocols = sorted({t.protocol for t in tasks})
        if len(protocols) > 1:
            raise BackendError(
                f"cannot batch tasks with mixed protocols {protocols}; "
                f"group tasks by protocol before batching"
            )
        levels = sorted({t.trace_level for t in tasks})
        if len(levels) > 1:
            raise BackendError(
                f"cannot batch tasks with mixed trace levels {levels}; "
                f"group tasks by trace level before batching"
            )
        stacked = [i for i, t in enumerate(tasks) if self.supports(t)]
        stacked_set = set(stacked)
        fallback = [i for i in range(len(tasks)) if i not in stacked_set]
        if fallback and self.strict:
            task = tasks[fallback[0]]
            raise BackendError(
                f"batched backend has no stacked kernel for protocol "
                f"{task.protocol!r} with the given channel models"
            )
        results: List[Optional[BackendResult]] = [None] * len(tasks)
        if stacked:
            for i, out in zip(
                stacked, _BATCH_KERNELS[protocols[0]]([tasks[i] for i in stacked])
            ):
                out.backend = self.name
                results[i] = out
        for i in fallback:
            # Fallback results keep the inner engine's provenance tag, so the
            # metrics row of a per-task fallback names the engine that ran it.
            results[i] = self._fallback.run_task(tasks[i])
        return results

"""ELL/padded adjacency layout and the optional JIT-compiled kernel tier.

The CSR channel in :mod:`repro.backends.vectorized` resolves each round with
a ``bincount`` over the concatenated neighbour slices of the transmitters —
fast, but every round pays NumPy dispatch for a dozen array ops over
``n``-sized state.  For the near-regular families the repo sweeps most (grid,
geometric, bounded-degree gnp), where max-degree ≈ mean-degree, a fixed-width
padded neighbour table (ELL/ELLPACK, the classic SpMV layout) gives
branch-free rows that a JIT can turn into tight machine loops.

Three pieces live here:

* :class:`EllAdjacency` — the layout: an ``int64[n, width]`` table whose row
  ``v`` holds ``v``'s neighbours followed by *self-padding* (copies of ``v``'s
  own id).  Self-padding makes the padded entries harmless by construction:
  a pad only ever contributes to the pad-owner's own receive count, and
  transmitters' counts are zeroed anyway ("transmitters hear nothing"), so
  no mask is needed, degree-0 nodes have rows that never read garbage, and
  the NumPy kernels can ``bincount`` whole rows unconditionally.  The
  ``padding_ratio = n * width / m`` regularity probe guards the layout:
  irregular graphs (star: ratio ≈ n/2) fall back to the CSR backend.

* The **NumPy ELL tier** — :class:`_EllChannel` is a drop-in replacement for
  the CSR ``_Channel`` (same ``resolve`` quadruple, bit for bit), injected
  into the *same* round loops (``_run_broadcast_kernel`` /
  ``_run_slotted_kernel``), so equivalence with the vectorized backend holds
  by construction.

* The **JIT tier** — when numba imports (``pip install "repro[jit]"``; it is
  an optional extra, never required by tier-1 tests), each round runs as one
  compiled function fusing decide → transmit → receive → update over the
  padded rows.  The kernels are *event-driven*: the decide step walks the
  compact candidate lists the protocol structure exposes (nodes informed at
  ``r-2`` / ``r-1``, last round's *stay*-hearers) and the receive step pushes
  only the transmitters' padded rows into a scratch count array, resolving
  just the touched nodes — per-round cost scales with the broadcast frontier,
  not with ``n``.  Without numba the same functions run as plain Python
  (the differential tests exercise them at small ``n`` either way) and the
  backend silently degrades to the NumPy ELL path for real workloads.

``EllBackend`` covers the ``broadcast``, ``round_robin`` and
``coloring_tdma`` protocols under the paper's default channel models and
delegates everything else to :class:`~repro.backends.vectorized.VectorizedBackend`
(which may in turn delegate to the reference engine) — the delegated result
keeps its own provenance tag, so rows always record the engine that actually
ran them.
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple

import numpy as np

from ..radio.clock import SynchronizedClocks
from ..radio.collision import NoCollisionDetection
from ..radio.engine import SimulationResult
from ..radio.faults import NoFaults
from ..radio.messages import source_message, stay_message
from .base import BackendError, BackendResult, SimulationBackend, SimulationTask
from .vectorized import (
    _EMPTY,
    _NEVER,
    _Recorder,
    _parse_bit_labels,
    _parse_slot_labels,
    _run_broadcast_kernel,
    _run_slotted_kernel,
)
from .vectorized import VectorizedBackend

__all__ = ["DEFAULT_MAX_PADDING_RATIO", "EllAdjacency", "EllBackend", "jit_available"]

try:  # pragma: no cover - exercised only in the numba CI leg
    import numba as _numba

    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default environment
    _numba = None
    _HAVE_NUMBA = False


def jit_available() -> bool:
    """True when numba imports, i.e. ``--backend ell`` auto-selects the JIT tier."""
    return _HAVE_NUMBA


def _maybe_njit(func):
    """Compile with numba when available; otherwise run as plain Python.

    The fallback keeps the kernel *logic* importable and testable without
    numba (the differential suite runs it at small ``n``); production use
    without numba goes through the NumPy ELL channel instead.
    """
    if _HAVE_NUMBA:  # pragma: no cover - exercised only in the numba CI leg
        return _numba.njit(cache=True, nogil=True)(func)
    return func


#: Above this ``n * width / m`` blow-up the padded table is mostly padding
#: (star: ratio ≈ n/2) and the backend falls back to the CSR engine.
DEFAULT_MAX_PADDING_RATIO = 4.0


# --------------------------------------------------------------------------- #
# the layout
# --------------------------------------------------------------------------- #
class EllAdjacency:
    """Padded fixed-width neighbour table (ELL/ELLPACK) with self-padding.

    Row ``v`` of :attr:`neighbors` holds ``v``'s neighbours in CSR order,
    followed by ``width - degree(v)`` copies of ``v`` itself.  See the module
    docstring for why self-padding is bit-safe.
    """

    __slots__ = ("n", "width", "neighbors", "degrees", "padding_ratio", "__weakref__")

    def __init__(
        self,
        n: int,
        width: int,
        neighbors: np.ndarray,
        degrees: np.ndarray,
        padding_ratio: float,
    ) -> None:
        self.n = int(n)
        self.width = int(width)
        self.neighbors = neighbors
        self.degrees = degrees
        self.padding_ratio = float(padding_ratio)

    @classmethod
    def from_csr(cls, indptr: np.ndarray, indices: np.ndarray, n: int) -> "EllAdjacency":
        """Build the padded table from CSR arrays (vectorized, no Python loop)."""
        degrees = np.diff(indptr).astype(np.int64, copy=False)
        width = int(degrees.max()) if n > 0 and degrees.size else 0
        neighbors = np.repeat(np.arange(n, dtype=np.int64), width).reshape(n, width)
        if width:
            mask = np.arange(width, dtype=np.int64)[None, :] < degrees[:, None]
            neighbors[mask] = indices
        m = int(indptr[-1]) if n > 0 else 0
        ratio = (n * width / m) if m else 1.0
        return cls(n, width, neighbors, degrees, ratio)

    @classmethod
    def from_graph(cls, graph) -> "EllAdjacency":
        indptr, indices = graph.csr()
        return cls.from_csr(indptr, indices, graph.n)

    def to_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Reconstruct the CSR arrays (exact round-trip of :meth:`from_csr`)."""
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(self.degrees, out=indptr[1:])
        if self.width:
            mask = np.arange(self.width, dtype=np.int64)[None, :] < self.degrees[:, None]
            indices = self.neighbors[mask]
        else:
            indices = np.empty(0, dtype=np.int64)
        return indptr, indices


def padding_ratio_of(graph) -> float:
    """The regularity probe ``n * width / m`` without building the table."""
    n = graph.n
    if n == 0:
        return 1.0
    indptr, _ = graph.csr()
    degrees = np.diff(indptr)
    width = int(degrees.max()) if degrees.size else 0
    m = int(indptr[-1])
    return (n * width / m) if m else 1.0


# --------------------------------------------------------------------------- #
# the NumPy ELL tier: a drop-in _Channel over padded rows
# --------------------------------------------------------------------------- #
class _EllChannel:
    """ELL counterpart of the CSR ``_Channel`` — same ``resolve`` contract.

    One ``bincount`` over the transmitters' *whole* padded rows: self-padding
    only ever increments the transmitters' own counts, which are zeroed
    ("transmitters hear nothing in their own round"), so no pad mask is
    needed and the weighted sender ``bincount`` stays exact at count-1 nodes.
    """

    def __init__(self, ell: EllAdjacency) -> None:
        self.n = ell.n
        self.width = ell.width
        self.neighbors = ell.neighbors

    def resolve(
        self, tx_mask: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        tx_ids = np.flatnonzero(tx_mask)
        if tx_ids.size == 0 or self.width == 0:
            return tx_ids, _EMPTY, _EMPTY, _EMPTY
        targets = self.neighbors[tx_ids].ravel()
        counts = np.bincount(targets, minlength=self.n).astype(np.int64, copy=False)
        counts[tx_ids] = 0  # transmitters hear nothing in their own round
        hears_ids = np.flatnonzero(counts == 1)
        collision_ids = np.flatnonzero(counts >= 2)
        if hears_ids.size:
            owners = np.repeat(tx_ids, self.width).astype(np.float64)
            sums = np.bincount(targets, weights=owners, minlength=self.n)
            senders = sums[hears_ids].astype(np.int64)
        else:
            senders = _EMPTY
        return tx_ids, hears_ids, senders, collision_ids


# --------------------------------------------------------------------------- #
# the JIT tier: one fused compiled function per protocol round
# --------------------------------------------------------------------------- #
@_maybe_njit
def _ell_broadcast_round(
    neighbors,  # int64[n, width] self-padded rows
    r,  # current round (int)
    src,  # source node id (int)
    x1,  # bool[n] label bit 1
    x2,  # bool[n] label bit 2
    informed,  # bool[n] protocol state (updated in place)
    informed_r,  # int64[n] first-informed round (updated in place)
    flag_src2,  # bool[n]: transmitted *source* at round r-2
    newly1,  # int64 list: nodes informed at r-1
    n1,
    newly2,  # int64 list: nodes informed at r-2
    n2,
    stay_prev,  # int64 list: stay-hearers of round r-1
    nsp,
    tx_flag,  # int8[n] scratch, all zero between rounds (1=source, 2=stay)
    counts,  # int64[n] scratch, all zero between rounds
    sender_arr,  # int64[n] scratch (stale values are never read)
    txsrc_buf,  # int64[n] out: this round's source transmitters
    txstay_buf,  # int64[n] out: this round's stay transmitters
    touched_buf,  # int64[n] scratch: nodes whose count went 0 -> 1
    mu_buf,  # int64[n] out: all hearers of a source message
    stay_buf,  # int64[n] out: all hearers of a stay message
    new_buf,  # int64[n] out: newly informed nodes
    coll_buf,  # int64[n] out: collision nodes
):
    # Decide (Algorithm 1): the only candidates are nodes informed exactly at
    # r-2 (label bit x1), nodes informed at r-1 (stay, bit x2), and last
    # round's stay-hearers that transmitted source two rounds ago.
    t_src = 0
    if r == 1:
        txsrc_buf[t_src] = src
        t_src += 1
    for i in range(n2):
        v = newly2[i]
        if x1[v]:
            txsrc_buf[t_src] = v
            t_src += 1
    for i in range(nsp):
        v = stay_prev[i]
        if informed[v] and flag_src2[v]:
            ir = informed_r[v]
            if ir != r - 2 and ir != r - 1:
                txsrc_buf[t_src] = v
                t_src += 1
    t_stay = 0
    for i in range(n1):
        v = newly1[i]
        if x2[v]:
            txstay_buf[t_stay] = v
            t_stay += 1

    # Transmit: push each transmitter's padded row into the scratch counts.
    # Self-pads only increment the transmitter's own (skipped) count.
    width = neighbors.shape[1]
    for i in range(t_src):
        tx_flag[txsrc_buf[i]] = 1
    for i in range(t_stay):
        tx_flag[txstay_buf[i]] = 2
    tt = 0
    for i in range(t_src + t_stay):
        u = txsrc_buf[i] if i < t_src else txstay_buf[i - t_src]
        for j in range(width):
            w = neighbors[u, j]
            c = counts[w]
            if c == 0:
                touched_buf[tt] = w
                tt += 1
                sender_arr[w] = u
            counts[w] = c + 1

    # Receive + update: resolve only the touched nodes, resetting the
    # scratch counts as we go.
    n_hears = 0
    mu_t = 0
    stay_t = 0
    new_t = 0
    coll_t = 0
    for i in range(tt):
        w = touched_buf[i]
        c = counts[w]
        counts[w] = 0
        if tx_flag[w] != 0:
            continue  # transmitters hear nothing in their own round
        if c == 1:
            n_hears += 1
            u = sender_arr[w]
            if tx_flag[u] == 2:
                stay_buf[stay_t] = w
                stay_t += 1
            else:
                mu_buf[mu_t] = w
                mu_t += 1
                if not informed[w]:
                    informed[w] = True
                    informed_r[w] = r
                    new_buf[new_t] = w
                    new_t += 1
        elif c >= 2:
            coll_buf[coll_t] = w
            coll_t += 1
    for i in range(t_src):
        tx_flag[txsrc_buf[i]] = 0
    for i in range(t_stay):
        tx_flag[txstay_buf[i]] = 0
    return t_src, t_stay, n_hears, mu_t, stay_t, new_t, coll_t


@_maybe_njit
def _ell_slotted_round(
    neighbors,
    r,
    slot_residue,  # int64[n]
    periods,  # int64[n]
    informed,  # bool[n] (updated in place)
    tx_flag,  # bool[n] scratch, all zero between rounds
    counts,  # int64[n] scratch, all zero between rounds
    sender_arr,  # int64[n] scratch
    tx_buf,
    touched_buf,
    hear_buf,  # out: all hearers (every heard message carries µ here)
    new_buf,  # out: newly informed nodes
    coll_buf,  # out: collision nodes
):
    n = informed.shape[0]
    width = neighbors.shape[1]
    t = 0
    for v in range(n):
        if informed[v] and (r % periods[v]) == slot_residue[v]:
            tx_buf[t] = v
            tx_flag[v] = True
            t += 1
    tt = 0
    for i in range(t):
        u = tx_buf[i]
        for j in range(width):
            w = neighbors[u, j]
            c = counts[w]
            if c == 0:
                touched_buf[tt] = w
                tt += 1
                sender_arr[w] = u
            counts[w] = c + 1
    hear_t = 0
    new_t = 0
    coll_t = 0
    for i in range(tt):
        w = touched_buf[i]
        c = counts[w]
        counts[w] = 0
        if tx_flag[w]:
            continue
        if c == 1:
            hear_buf[hear_t] = w
            hear_t += 1
            if not informed[w]:
                informed[w] = True
                new_buf[new_t] = w
                new_t += 1
        elif c >= 2:
            coll_buf[coll_t] = w
            coll_t += 1
    for i in range(t):
        tx_flag[tx_buf[i]] = False
    return t, hear_t, new_t, coll_t


def _run_broadcast_jit(task: SimulationTask, ell: EllAdjacency) -> BackendResult:
    """Algorithm B through the fused event-driven round kernel.

    Mirrors ``vectorized._run_broadcast_kernel`` decision for decision —
    the per-round Python work is O(active nodes), never O(n).
    """
    n = task.graph.n
    src = task.source
    payload = task.payload
    rec = _Recorder(n, src, task.trace_level)
    x1, x2, _ = _parse_bit_labels(task.labels, n)

    informed = np.zeros(n, dtype=bool)
    informed[src] = True
    informed_count = 1
    informed_r = np.full(n, _NEVER, dtype=np.int64)
    flag_src2 = np.zeros(n, dtype=bool)
    src_r1 = _EMPTY  # source transmitters of round r-1
    src_r2 = _EMPTY  # source transmitters of round r-2
    newly1 = _EMPTY  # nodes informed at r-1
    newly2 = _EMPTY  # nodes informed at r-2
    stay_prev = _EMPTY  # stay-hearers of round r-1

    tx_flag = np.zeros(n, dtype=np.int8)
    counts = np.zeros(n, dtype=np.int64)
    sender_arr = np.zeros(n, dtype=np.int64)
    txsrc_buf = np.empty(n, dtype=np.int64)
    txstay_buf = np.empty(n, dtype=np.int64)
    touched_buf = np.empty(n, dtype=np.int64)
    mu_buf = np.empty(n, dtype=np.int64)
    stay_buf = np.empty(n, dtype=np.int64)
    new_buf = np.empty(n, dtype=np.int64)
    coll_buf = np.empty(n, dtype=np.int64)

    completion: Optional[int] = None
    stop_round, stop_reason = 0, "budget"

    for r in range(1, task.max_rounds + 1):
        t_src, t_stay, n_hears, mu_t, stay_t, new_t, coll_t = _ell_broadcast_round(
            ell.neighbors, r, src, x1, x2, informed, informed_r,
            flag_src2,
            newly1, newly1.size, newly2, newly2.size, stay_prev, stay_prev.size,
            tx_flag, counts, sender_arr,
            txsrc_buf, txstay_buf, touched_buf,
            mu_buf, stay_buf, new_buf, coll_buf,
        )
        informed_count += new_t

        if rec.full:
            src_msg, stay_msg = source_message(payload), stay_message()
            transmissions = {int(u): src_msg for u in np.sort(txsrc_buf[:t_src])}
            for u in np.sort(txstay_buf[:t_stay]):
                transmissions[int(u)] = stay_msg
            hears = np.sort(np.concatenate([mu_buf[:mu_t], stay_buf[:stay_t]]))
            receptions = {
                int(v): transmissions[int(u)] for v, u in zip(hears, sender_arr[hears])
            }
            rec.full_round(r, transmissions, receptions, coll_buf[:coll_t])
        else:
            rec.summary_round(
                r,
                transmissions=t_src + t_stay,
                receptions=n_hears,
                collisions=coll_t,
                kinds={"source": t_src, "stay": t_stay},
                fixed_bits=2 * t_stay,
                payload_messages=t_src,
                informed=np.sort(mu_buf[:mu_t]) if rec.per_node else (),
                ack_hearers=(),
            )

        # Rotate the event lists and their O(1)-lookup flags.
        flag_src2[src_r2] = False
        flag_src2[src_r1] = True
        src_r2, src_r1 = src_r1, txsrc_buf[:t_src].copy()
        stay_prev = stay_buf[:stay_t].copy()
        newly2, newly1 = newly1, new_buf[:new_t].copy()

        stop_round = r
        if completion is None and informed_count == n:
            completion = r
        if task.stop_rule == "all_informed" and informed_count == n:
            stop_reason = "condition"
            break

    sim = SimulationResult(
        trace=rec.trace, nodes=[], stop_round=stop_round, stop_reason=stop_reason
    )
    return BackendResult(simulation=sim, derived={"completion_round": completion})


def _run_slotted_jit(task: SimulationTask, ell: EllAdjacency) -> BackendResult:
    """Round-robin / TDMA source flood through the fused round kernel."""
    n = task.graph.n
    src = task.source
    payload = task.payload
    rec = _Recorder(n, src, task.trace_level)
    slots, periods = _parse_slot_labels(task.labels, n)
    slot_residue = slots % periods

    informed = np.zeros(n, dtype=bool)
    informed[src] = True
    informed_count = 1

    tx_flag = np.zeros(n, dtype=bool)
    counts = np.zeros(n, dtype=np.int64)
    sender_arr = np.zeros(n, dtype=np.int64)
    tx_buf = np.empty(n, dtype=np.int64)
    touched_buf = np.empty(n, dtype=np.int64)
    hear_buf = np.empty(n, dtype=np.int64)
    new_buf = np.empty(n, dtype=np.int64)
    coll_buf = np.empty(n, dtype=np.int64)

    completion: Optional[int] = None
    stop_round, stop_reason = 0, "budget"

    for r in range(1, task.max_rounds + 1):
        t, hear_t, new_t, coll_t = _ell_slotted_round(
            ell.neighbors, r, slot_residue, periods, informed,
            tx_flag, counts, sender_arr,
            tx_buf, touched_buf, hear_buf, new_buf, coll_buf,
        )
        informed_count += new_t
        if rec.full:
            msg = source_message(payload)
            transmissions = {int(u): msg for u in np.sort(tx_buf[:t])}
            receptions = {int(v): msg for v in np.sort(hear_buf[:hear_t])}
            rec.full_round(r, transmissions, receptions, coll_buf[:coll_t])
        else:
            rec.summary_round(
                r,
                transmissions=t,
                receptions=hear_t,
                collisions=coll_t,
                kinds={"source": t},
                fixed_bits=0,
                payload_messages=t,
                informed=np.sort(hear_buf[:hear_t]) if rec.per_node else (),
                ack_hearers=(),
            )
        stop_round = r
        if completion is None and informed_count == n:
            completion = r
        if task.stop_rule == "all_informed" and informed_count == n:
            stop_reason = "condition"
            break

    sim = SimulationResult(
        trace=rec.trace, nodes=[], stop_round=stop_round, stop_reason=stop_reason
    )
    return BackendResult(simulation=sim, derived={"completion_round": completion})


_JIT_KERNELS = {
    "broadcast": _run_broadcast_jit,
    "round_robin": _run_slotted_jit,
    "coloring_tdma": _run_slotted_jit,
}

_NUMPY_KERNELS = {
    "broadcast": _run_broadcast_kernel,
    "round_robin": _run_slotted_kernel,
    "coloring_tdma": _run_slotted_kernel,
}


# --------------------------------------------------------------------------- #
# the backend
# --------------------------------------------------------------------------- #
class EllBackend(SimulationBackend):
    """Padded-adjacency (ELL) engine with an optional JIT-compiled tier.

    Parameters
    ----------
    mode:
        ``"auto"`` (the ``"ell"`` spec) runs the JIT tier when numba imports
        and the NumPy ELL tier otherwise; ``"jit"`` (``"ell:jit"``) prefers
        the JIT tier, silently degrading to NumPy when numba is absent;
        ``"numpy"`` (``"ell:numpy"``) forces the NumPy tier.
    strict:
        If true, raise :class:`~repro.backends.base.BackendError` on tasks
        the ELL kernels cannot execute instead of delegating them to the
        vectorized backend.
    max_padding_ratio:
        Regularity-probe threshold: tasks whose graph pads worse than this
        (``n * width / m``) are delegated to the CSR engine.
    """

    name = "ell"

    _PROTOCOLS = ("broadcast", "round_robin", "coloring_tdma")
    _MODES = ("auto", "jit", "numpy")

    def __init__(
        self,
        *,
        mode: str = "auto",
        strict: bool = False,
        max_padding_ratio: float = DEFAULT_MAX_PADDING_RATIO,
    ) -> None:
        if mode not in self._MODES:
            raise BackendError(
                f"unknown ell mode {mode!r}; expected one of {self._MODES}"
            )
        self.mode = mode
        self.strict = strict
        self.max_padding_ratio = float(max_padding_ratio)
        self._fallback = VectorizedBackend()
        self._layouts: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._ratios: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    @property
    def jit_active(self) -> bool:
        """True when tasks this backend supports run through compiled kernels."""
        return self.mode != "numpy" and _HAVE_NUMBA

    def _padding_ratio(self, graph) -> float:
        ratio = self._ratios.get(graph)
        if ratio is None:
            ratio = padding_ratio_of(graph)
            self._ratios[graph] = ratio
        return ratio

    def _layout(self, graph) -> EllAdjacency:
        ell = self._layouts.get(graph)
        if ell is None:
            ell = EllAdjacency.from_graph(graph)
            self._layouts[graph] = ell
        return ell

    def supports(self, task: SimulationTask) -> bool:
        """True if an ELL kernel covers ``task`` (incl. the regularity probe)."""
        if task.protocol not in self._PROTOCOLS:
            return False
        if task.source is None or task.graph.n == 0:
            return False
        if task.collision_model is not None and type(task.collision_model) is not NoCollisionDetection:
            return False
        if task.fault_model is not None and type(task.fault_model) is not NoFaults:
            return False
        if task.clock_model is not None and type(task.clock_model) is not SynchronizedClocks:
            return False
        return self._padding_ratio(task.graph) <= self.max_padding_ratio

    def run_task(self, task: SimulationTask) -> BackendResult:
        if not self.supports(task):
            if self.strict:
                raise BackendError(
                    f"ell backend has no kernel for protocol {task.protocol!r} "
                    f"with the given channel models (or the graph failed the "
                    f"padding-ratio probe)"
                )
            # The fallback result keeps its own provenance tag.
            return self._fallback.run_task(task)
        ell = self._layout(task.graph)
        if self.jit_active:  # pragma: no cover - exercised only in the numba CI leg
            result = _JIT_KERNELS[task.protocol](task, ell)
            result.backend = "ell:jit"
        else:
            result = _NUMPY_KERNELS[task.protocol](task, _EllChannel(ell))
            result.backend = self.name
        return result

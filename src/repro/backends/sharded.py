"""Sharded single-instance backend: one big graph, many processes per round.

The batched engine (PR 3) made *many small* instances fast; a single n ≥ 10⁶
graph still ran the whole round loop on one core.  This backend splits that
loop's per-round work across a persistent pool of worker processes by
partitioning the instance's CSR adjacency into contiguous **node-range
segments**:

* the CSR arrays, the label bits and every per-node protocol state array live
  in :mod:`multiprocessing.shared_memory` blocks, so workers read and write
  them in place — the per-round message over each worker's pipe is a tiny
  ``("round", op, r, …)`` tuple, and the array layout is shipped once per
  task;
* each round, worker *i* runs the transmit-decision kernel for segment *i*
  (the same element-wise masks as the single-instance vectorized kernels,
  restricted to ``[lo, hi)`` — including rotating its own slice of the
  round-state arrays) and expands its transmitters' CSR neighbour slices into
  per-segment target/owner scratch regions;
* the parent reduces the per-segment receive contributions with a single
  ``bincount`` merge over the concatenated target lists (for sparse rounds an
  order-preserving sort/unique merge computes the identical counts without
  touching all ``n`` nodes), applies the delivery rules and records the
  round.

Because segment boundaries only change *where* work happens — ``bincount``
over a concatenation is independent of how the concatenation was split, and a
count-1 listener's unique sender is exact under any merge order — outcomes
are **bit-for-bit identical** to the single-instance
:class:`~repro.backends.vectorized.VectorizedBackend` at any shard count
(asserted by ``tests/test_sharded_equivalence.py`` at shards ∈ {1, 2, 3, 7}).

Sharded kernels cover the protocols whose per-round decision is a dense
element-wise function of per-node state — Algorithm B (``broadcast``) and the
slotted baselines (``round_robin`` / ``coloring_tdma``).  Everything else
(B_ack's sparse ack chains, B_arb, centralized schedules, non-default channel
models) is delegated to the vectorized backend, so ``--backend sharded`` is
always safe to pass; delegated results keep their actual engine's provenance
tag.

Shard selection threads through the whole stack as the spec string
``"sharded[:K]"``: ``resolve_backend("sharded:4")``, ``Scenario(shards=4)``,
``GridConfig(shards=4)`` and the CLI ``--shards 4`` all construct this
backend with a 4-worker pool.  The shard count is pure parallelism and is
*excluded* from result-store keys (like ``jobs`` and ``batch_size``), so a
store-backed sweep resumed with a different shard count still hits its cache.

Sharding multiplies with sweep fan-out: every ``jobs > 1`` grid worker that
touches a covered task spawns its own segment pool, so a sharded sweep wants
``jobs=1`` (and an explicit modest ``--shards``) — the backend exists for
*few large* instances, where per-round segment parallelism beats process
fan-out; for many small instances use the batched backend instead.
"""

from __future__ import annotations

import os
import uuid
from multiprocessing import get_context, shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..radio.engine import SimulationResult
from .base import BackendError, BackendResult, SimulationBackend, SimulationTask
from .vectorized import (
    _EMPTY,
    _NEVER,
    VectorizedBackend,
    _parse_bit_labels,
    _parse_slot_labels,
    _Recorder,
)

__all__ = ["ShardedVectorizedBackend", "DEFAULT_SHARDS"]

#: Shard count used when none is requested: one worker per CPU.
DEFAULT_SHARDS = max(1, os.cpu_count() or 1)

#: Protocols with a sharded round kernel.
_SHARDED_PROTOCOLS = ("broadcast", "round_robin", "coloring_tdma")

#: Dense/sparse merge crossover: below ``n / _SPARSE_FACTOR`` concatenated
#: targets the sort/unique merge beats zeroing an n-length count array.
_SPARSE_FACTOR = 8


# --------------------------------------------------------------------------- #
# shared-memory sessions
# --------------------------------------------------------------------------- #
#: ``{field: (shm name, dtype str, shape)}`` — everything a worker needs to
#: rebuild its views; shipped once per task in the "open" message.
_Layout = Dict[str, Tuple[str, str, Tuple[int, ...]]]


class _Session:
    """Parent-side bundle of shared arrays for one task execution."""

    def __init__(self, arrays: Dict[str, np.ndarray]) -> None:
        self.key = uuid.uuid4().hex
        self._blocks: List[shared_memory.SharedMemory] = []
        self.views: Dict[str, np.ndarray] = {}
        self.layout: _Layout = {}
        try:
            for name, src in arrays.items():
                block = shared_memory.SharedMemory(create=True, size=max(1, src.nbytes))
                self._blocks.append(block)
                view = np.ndarray(src.shape, dtype=src.dtype, buffer=block.buf)
                view[...] = src
                self.views[name] = view
                self.layout[name] = (block.name, src.dtype.str, src.shape)
        except BaseException:
            # /dev/shm filling up mid-loop must not leak the named blocks
            # created so far — nobody else holds a reference to unlink them.
            self.close()
            raise

    def close(self) -> None:
        self.views.clear()
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover - teardown
                pass
        self._blocks.clear()


# --------------------------------------------------------------------------- #
# the worker process
# --------------------------------------------------------------------------- #
def _attach_views(layout: _Layout):
    blocks, views = [], {}
    for name, (shm_name, dtype, shape) in layout.items():
        # Fork workers share the parent's resource tracker, so this attach's
        # registration is an idempotent no-op and the parent's unlink is the
        # single deregistration — no tracker bookkeeping needed here.
        block = shared_memory.SharedMemory(name=shm_name)
        blocks.append(block)
        views[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
    return blocks, views


def _release_views(blocks) -> None:
    for block in blocks:
        try:
            block.close()
        except OSError:  # pragma: no cover - teardown
            pass


def _expand_segment(v, lo: int, tx_mask: np.ndarray) -> Tuple[int, int]:
    """Write the segment's transmitter ids and their CSR target expansion.

    ``tx_mask`` is the segment-local boolean transmit mask.  Transmitter ids
    land in ``txids[lo:lo+cnt]``; their concatenated neighbour slices (and the
    matching owner ids) land in ``targets``/``owners`` at the segment's CSR
    edge offset — a node's out-edge region is contiguous, so a segment's
    expansion always fits in its own slice of an E-length scratch buffer.
    """
    indptr, indices = v["indptr"], v["indices"]
    tx_ids = np.flatnonzero(tx_mask) + lo
    cnt = int(tx_ids.size)
    v["txids"][lo : lo + cnt] = tx_ids
    if cnt == 0:
        return 0, 0
    deg = indptr[tx_ids + 1] - indptr[tx_ids]
    total = int(deg.sum())
    if total:
        base = int(indptr[lo])
        pos = np.repeat(indptr[tx_ids] - (np.cumsum(deg) - deg), deg)
        v["targets"][base : base + total] = indices[pos + np.arange(total, dtype=np.int64)]
        v["owners"][base : base + total] = np.repeat(tx_ids, deg)
    return cnt, total


def _broadcast_round(v, lo: int, hi: int, r: int, src: int) -> Tuple[int, int, int]:
    sl = slice(lo, hi)
    if r > 1:
        # Rotate this segment's slice of the round-state arrays in place —
        # the slices are worker-exclusive, so no cross-process coordination
        # is needed and the parent's serial section stays small.
        v["sent_src_prev2"][sl] = v["sent_src_prev"][sl]
        v["sent_src_prev"][sl] = v["tx_source"][sl]
    informed_r = v["informed_r"][sl]
    m3 = informed_r == r - 2
    m4 = informed_r == r - 1
    tx_src = (m3 & v["x1"][sl]) | (
        v["informed"][sl]
        & ~m3
        & ~m4
        & v["sent_src_prev2"][sl]
        & v["heard_stay_prev"][sl]
    )
    if r == 1 and lo <= src < hi:
        tx_src[src - lo] = True
    tx_stay = m4 & v["x2"][sl]
    v["tx_source"][sl] = tx_src
    v["tx_stay"][sl] = tx_stay
    cnt, total = _expand_segment(v, lo, tx_src | tx_stay)
    return cnt, total, int(np.count_nonzero(tx_src))


def _slotted_round(v, lo: int, hi: int, r: int) -> Tuple[int, int]:
    sl = slice(lo, hi)
    tx = v["informed"][sl] & ((r % v["periods"][sl]) == v["slot_residue"][sl])
    return _expand_segment(v, lo, tx)


def _worker_main(conn) -> None:
    """Dedicated segment worker: attach once per task, then one tiny message
    per round.  Exits on ``("exit",)``, a closed pipe, or parent death."""
    blocks: list = []
    views: Optional[Dict[str, np.ndarray]] = None
    lo = hi = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent died
            break
        op = msg[0]
        try:
            if op == "open":
                _release_views(blocks)
                blocks, views = _attach_views(msg[1])
                lo, hi = msg[2], msg[3]
                conn.send(("ok",))
            elif op == "broadcast":
                conn.send(_broadcast_round(views, lo, hi, msg[1], msg[2]))
            elif op == "slotted":
                conn.send(_slotted_round(views, lo, hi, msg[1]))
            elif op == "close":
                _release_views(blocks)
                blocks, views = [], None
                conn.send(("ok",))
            elif op == "exit":
                break
            else:  # pragma: no cover - protocol bug
                conn.send(("error", f"unknown op {op!r}"))
        except Exception as exc:  # pragma: no cover - surfaced parent-side
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break
    _release_views(blocks)


class _WorkerHandle:
    """One persistent worker process plus its parent-side pipe end."""

    def __init__(self, ctx) -> None:
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
        self.proc.start()
        child.close()

    def request(self, msg):
        self.conn.send(msg)

    def response(self):
        try:
            out = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise BackendError(f"sharded worker died mid-round: {exc}") from exc
        if isinstance(out, tuple) and out and out[0] == "error":
            raise BackendError(f"sharded worker failed: {out[1]}")
        return out

    def stop(self) -> None:
        try:
            self.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=2)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.terminate()
        self.conn.close()


# --------------------------------------------------------------------------- #
# the backend
# --------------------------------------------------------------------------- #
class ShardedVectorizedBackend(SimulationBackend):
    """Round-level CSR segment sharding over persistent worker processes.

    Parameters
    ----------
    shards:
        Worker process count (node-range segments per round).  ``None`` uses
        one shard per CPU.  Results are bit-for-bit identical to the
        vectorized backend at any shard count.
    strict:
        If true, raise :class:`BackendError` on tasks the sharded kernels do
        not cover instead of delegating them to the vectorized backend.
    """

    name = "sharded"

    def __init__(self, *, shards: Optional[int] = None, strict: bool = False) -> None:
        if shards is not None:
            shards = int(shards)
            if shards < 1:
                raise BackendError(f"shard count must be >= 1, got {shards}")
        self.shards = shards if shards is not None else DEFAULT_SHARDS
        self.strict = strict
        self._fallback = VectorizedBackend()
        self._workers: List[_WorkerHandle] = []
        self._workers_pid: Optional[int] = None

    # ------------------------------------------------------------------ #
    # worker lifecycle
    # ------------------------------------------------------------------ #
    def _get_workers(self, count: int) -> List[_WorkerHandle]:
        if self._workers and self._workers_pid != os.getpid():
            # Inherited across a fork (e.g. a grid worker): the pipes belong
            # to the parent process, so drop the stale handles untouched.
            self._workers = []
        self._workers = [w for w in self._workers if w.proc.is_alive()]
        if len(self._workers) < count:
            try:
                ctx = get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = get_context()
            self._workers.extend(
                _WorkerHandle(ctx) for _ in range(count - len(self._workers))
            )
            self._workers_pid = os.getpid()
        return self._workers[:count]

    def close(self) -> None:
        """Stop the worker processes (they are respawned lazily on next use)."""
        if self._workers and self._workers_pid == os.getpid():
            for worker in self._workers:
                worker.stop()
        self._workers = []

    def __del__(self):  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def supports(self, task: SimulationTask) -> bool:
        """True if a sharded round kernel covers ``task``."""
        return task.protocol in _SHARDED_PROTOCOLS and self._fallback.supports(task)

    def run_task(self, task: SimulationTask) -> BackendResult:
        if not self.supports(task):
            if self.strict:
                raise BackendError(
                    f"sharded backend has no segment kernel for protocol "
                    f"{task.protocol!r} with the given channel models"
                )
            # Delegated results keep the inner engine's provenance tag.
            return self._fallback.run_task(task)
        if task.protocol == "broadcast":
            result = self._run_broadcast(task)
        else:
            result = self._run_slotted(task)
        result.backend = self.name
        return result

    def _segments(self, indptr: np.ndarray, n: int) -> List[Tuple[int, int]]:
        """Edge-balanced contiguous node ranges, empty segments dropped."""
        k = max(1, min(self.shards, n))
        cuts = np.searchsorted(indptr, np.linspace(0, int(indptr[-1]), k + 1))
        cuts[0], cuts[-1] = 0, n
        cuts = np.maximum.accumulate(cuts)
        return [(int(a), int(b)) for a, b in zip(cuts[:-1], cuts[1:]) if a < b]

    def _open_session(self, session: _Session, segments) -> List[_WorkerHandle]:
        workers = self._get_workers(len(segments))
        for worker, (lo, hi) in zip(workers, segments):
            worker.request(("open", session.layout, lo, hi))
        for worker in workers:
            worker.response()
        return workers

    @staticmethod
    def _close_session(workers: List[_WorkerHandle]) -> None:
        for worker in workers:
            try:
                worker.request(("close",))
            except (BrokenPipeError, OSError):  # pragma: no cover - teardown
                continue
        for worker in workers:
            try:
                worker.response()
            except BackendError:  # pragma: no cover - teardown
                pass

    @staticmethod
    def _fanout(workers: List[_WorkerHandle], msg) -> List[Tuple[int, ...]]:
        for worker in workers:
            worker.request(msg)
        return [worker.response() for worker in workers]

    # ------------------------------------------------------------------ #
    # the reduce: per-segment receive contributions -> (hears, senders, colls)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _merge(
        session: _Session,
        segments: List[Tuple[int, int]],
        seg_counts: List[int],
        seg_totals: List[int],
        n: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One bincount merge of the segments' target lists.

        Returns ``(tx_ids, hears_ids, senders, collision_ids)`` exactly as
        :meth:`repro.backends.vectorized._Channel.resolve` would for the same
        global transmit mask: the concatenated target list equals the
        single-core expansion (segments are ascending node ranges and each
        worker expands its transmitters in ascending order), and receive
        counts are merge-order independent.  Sparse rounds (fewer targets
        than ``n / 8``) take a sort/unique path computing identical counts
        without an n-length pass.
        """
        v = session.views
        indptr = v["indptr"]
        tx_views = [
            v["txids"][lo : lo + cnt] for (lo, _), cnt in zip(segments, seg_counts) if cnt
        ]
        tx_ids = np.concatenate(tx_views) if tx_views else _EMPTY
        tgt_views = [
            v["targets"][int(indptr[lo]) : int(indptr[lo]) + tot]
            for (lo, _), tot in zip(segments, seg_totals)
            if tot
        ]
        if not tgt_views:
            return tx_ids, _EMPTY, _EMPTY, _EMPTY
        all_targets = np.concatenate(tgt_views)
        own_views = [
            v["owners"][int(indptr[lo]) : int(indptr[lo]) + tot]
            for (lo, _), tot in zip(segments, seg_totals)
            if tot
        ]
        if all_targets.size * _SPARSE_FACTOR >= n:
            counts = np.bincount(all_targets, minlength=n).astype(np.int64, copy=False)
            counts[tx_ids] = 0  # transmitters hear nothing in their own round
            hears_ids = np.flatnonzero(counts == 1)
            collision_ids = np.flatnonzero(counts >= 2)
            if hears_ids.size:
                owners = np.concatenate(own_views).astype(np.float64)
                sums = np.bincount(all_targets, weights=owners, minlength=n)
                senders = sums[hears_ids].astype(np.int64)
            else:
                senders = _EMPTY
            return tx_ids, hears_ids, senders, collision_ids
        # Sparse merge: counts via sort/unique over just the targets.
        order = np.argsort(all_targets, kind="stable")
        uniq, first, counts = np.unique(
            all_targets[order], return_index=True, return_counts=True
        )
        # Membership of each unique target in the (sorted) transmitter list;
        # targets imply at least one transmitter, so tx_ids is non-empty here.
        pos = np.minimum(np.searchsorted(tx_ids, uniq), tx_ids.size - 1)
        is_tx = tx_ids[pos] == uniq
        one = (counts == 1) & ~is_tx
        hears_ids = uniq[one]
        collision_ids = uniq[(counts >= 2) & ~is_tx]
        if hears_ids.size:
            all_owners = np.concatenate(own_views)
            senders = all_owners[order[first[one]]]
        else:
            senders = _EMPTY
        return tx_ids, hears_ids, senders, collision_ids

    # ------------------------------------------------------------------ #
    # Algorithm B — the sharded round loop
    # ------------------------------------------------------------------ #
    def _run_broadcast(self, task: SimulationTask) -> BackendResult:
        from ..radio.messages import source_message, stay_message

        graph, n = task.graph, task.graph.n
        src = task.source
        indptr, indices = graph.csr()
        x1, x2, _ = _parse_bit_labels(task.labels, n)
        rec = _Recorder(n, src, task.trace_level)

        informed = np.zeros(n, dtype=bool)
        informed[src] = True
        session = _Session(
            {
                "indptr": np.ascontiguousarray(indptr, dtype=np.int64),
                "indices": np.ascontiguousarray(indices, dtype=np.int64),
                "x1": x1,
                "x2": x2,
                "informed": informed,
                "informed_r": np.full(n, _NEVER, dtype=np.int64),
                "sent_src_prev": np.zeros(n, dtype=bool),
                "sent_src_prev2": np.zeros(n, dtype=bool),
                "heard_stay_prev": np.zeros(n, dtype=bool),
                "tx_source": np.zeros(n, dtype=bool),
                "tx_stay": np.zeros(n, dtype=bool),
                "txids": np.zeros(n, dtype=np.int64),
                "targets": np.zeros(max(1, indices.size), dtype=np.int64),
                "owners": np.zeros(max(1, indices.size), dtype=np.int64),
            }
        )
        workers: List[_WorkerHandle] = []
        try:
            v = session.views
            segments = self._segments(v["indptr"], n)
            workers = self._open_session(session, segments)
            informed_count = 1
            completion: Optional[int] = None
            stop_round, stop_reason = 0, "budget"

            for r in range(1, task.max_rounds + 1):
                parts = self._fanout(workers, ("broadcast", r, src))
                seg_counts = [p[0] for p in parts]
                seg_totals = [p[1] for p in parts]
                n_src_tx = sum(p[2] for p in parts)
                tx_ids, hears_ids, senders, collision_ids = self._merge(
                    session, segments, seg_counts, seg_totals, n
                )

                # Deliver (identical to the single-instance kernel).
                tx_stay = v["tx_stay"]
                stay_hearers = _EMPTY
                if hears_ids.size:
                    sender_is_stay = tx_stay[senders]
                    stay_hearers = hears_ids[sender_is_stay]
                    mu_hearers = hears_ids[~sender_is_stay]
                    new_ids = mu_hearers[~v["informed"][mu_hearers]]
                    v["informed"][new_ids] = True
                    v["informed_r"][new_ids] = r
                    informed_count += int(new_ids.size)
                else:
                    mu_hearers = _EMPTY

                n_stay_tx = int(tx_ids.size) - n_src_tx
                if rec.full:
                    tx_source = v["tx_source"]
                    src_msg, stay_msg = source_message(task.payload), stay_message()
                    transmissions = {
                        int(u): (src_msg if tx_source[u] else stay_msg) for u in tx_ids
                    }
                    receptions = {
                        int(w): transmissions[int(u)]
                        for w, u in zip(hears_ids, senders)
                    }
                    rec.full_round(r, transmissions, receptions, collision_ids)
                else:
                    rec.summary_round(
                        r,
                        transmissions=int(tx_ids.size),
                        receptions=int(hears_ids.size),
                        collisions=int(collision_ids.size),
                        kinds={"source": n_src_tx, "stay": n_stay_tx},
                        fixed_bits=2 * n_stay_tx,
                        payload_messages=n_src_tx,
                        informed=mu_hearers,
                        ack_hearers=(),
                    )

                # Workers rotate sent_src_prev/prev2 for their own slices at
                # the start of the next round; only the cross-segment stay
                # scatter stays in the parent's serial section.
                v["heard_stay_prev"][...] = False
                v["heard_stay_prev"][stay_hearers] = True
                stop_round = r
                if completion is None and informed_count == n:
                    completion = r
                if task.stop_rule == "all_informed" and informed_count == n:
                    stop_reason = "condition"
                    break
        finally:
            self._close_session(workers)
            session.close()

        sim = SimulationResult(
            trace=rec.trace, nodes=[], stop_round=stop_round, stop_reason=stop_reason
        )
        return BackendResult(simulation=sim, derived={"completion_round": completion})

    # ------------------------------------------------------------------ #
    # Slotted baselines — round-robin / G²-colouring TDMA
    # ------------------------------------------------------------------ #
    def _run_slotted(self, task: SimulationTask) -> BackendResult:
        from ..radio.messages import source_message

        graph, n = task.graph, task.graph.n
        src = task.source
        indptr, indices = graph.csr()
        slots, periods = _parse_slot_labels(task.labels, n)
        rec = _Recorder(n, src, task.trace_level)

        informed = np.zeros(n, dtype=bool)
        informed[src] = True
        session = _Session(
            {
                "indptr": np.ascontiguousarray(indptr, dtype=np.int64),
                "indices": np.ascontiguousarray(indices, dtype=np.int64),
                "informed": informed,
                "slot_residue": slots % periods,
                "periods": periods,
                "txids": np.zeros(n, dtype=np.int64),
                "targets": np.zeros(max(1, indices.size), dtype=np.int64),
                "owners": np.zeros(max(1, indices.size), dtype=np.int64),
            }
        )
        workers: List[_WorkerHandle] = []
        try:
            v = session.views
            segments = self._segments(v["indptr"], n)
            workers = self._open_session(session, segments)
            informed_count = 1
            completion: Optional[int] = None
            stop_round, stop_reason = 0, "budget"

            for r in range(1, task.max_rounds + 1):
                parts = self._fanout(workers, ("slotted", r))
                tx_ids, hears_ids, senders, collision_ids = self._merge(
                    session, segments, [p[0] for p in parts], [p[1] for p in parts], n
                )
                if hears_ids.size:
                    new_ids = hears_ids[~v["informed"][hears_ids]]
                    v["informed"][new_ids] = True
                    informed_count += int(new_ids.size)
                if rec.full:
                    msg = source_message(task.payload)
                    transmissions = {int(u): msg for u in tx_ids}
                    receptions = {int(w): msg for w in hears_ids}
                    rec.full_round(r, transmissions, receptions, collision_ids)
                else:
                    rec.summary_round(
                        r,
                        transmissions=int(tx_ids.size),
                        receptions=int(hears_ids.size),
                        collisions=int(collision_ids.size),
                        kinds={"source": int(tx_ids.size)},
                        fixed_bits=0,
                        payload_messages=int(tx_ids.size),
                        informed=hears_ids,
                        ack_hearers=(),
                    )
                stop_round = r
                if completion is None and informed_count == n:
                    completion = r
                if task.stop_rule == "all_informed" and informed_count == n:
                    stop_reason = "condition"
                    break
        finally:
            self._close_session(workers)
            session.close()

        sim = SimulationResult(
            trace=rec.trace, nodes=[], stop_round=stop_round, stop_reason=stop_reason
        )
        return BackendResult(simulation=sim, derived={"completion_round": completion})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardedVectorizedBackend(shards={self.shards})"

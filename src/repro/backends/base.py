"""Backend abstraction: *what* to simulate, decoupled from *how*.

The tentpole refactor of this layer splits the execution core in two:

* a :class:`SimulationTask` is a declarative description of one protocol
  execution — topology, labeling, protocol name, source, round budget, stop
  rule and channel semantics;
* a :class:`SimulationBackend` turns a task into a
  :class:`~repro.radio.engine.SimulationResult` plus a ``derived`` dict of
  protocol-level outcomes (completion round, acknowledgement round, …).

Two backends ship:

* :class:`~repro.backends.reference.ReferenceBackend` drives the faithful
  per-node object engine (:mod:`repro.radio.engine`) — the ground truth;
* :class:`~repro.backends.vectorized.VectorizedBackend` compiles the labeled
  protocols and the TDMA baselines into NumPy array kernels over the graph's
  CSR adjacency, producing bit-for-bit identical outcomes at a fraction of
  the cost (the equivalence suite in ``tests/test_backend_equivalence.py``
  asserts this on a grid of families × sizes × seeds).

Callers never need the per-protocol plumbing: :func:`resolve_backend` maps
``"reference"`` / ``"vectorized"`` (or an existing backend instance) to a
shared backend object.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from ..graphs.graph import Graph
from ..radio.clock import ClockModel
from ..radio.collision import CollisionModel
from ..radio.engine import NodeFactory, SimulationResult
from ..radio.faults import FaultModel

__all__ = [
    "PROTOCOLS",
    "STOP_RULES",
    "BackendError",
    "BackendResult",
    "SimulationBackend",
    "SimulationTask",
]

#: Protocol names a task may carry.  ``node_factory`` covers anything else.
PROTOCOLS = (
    "broadcast",
    "acknowledged",
    "arbitrary",
    "round_robin",
    "coloring_tdma",
    "collision_detection",
    "centralized",
    "custom",
)

#: Declarative stop rules every backend understands.
STOP_RULES = ("all_informed", "acknowledged", "arb_complete", "all_decoded")


class BackendError(RuntimeError):
    """Raised when a backend cannot execute the task it was handed."""


@dataclass
class SimulationTask:
    """One protocol execution, described declaratively.

    Attributes
    ----------
    protocol:
        Semantic protocol name (see :data:`PROTOCOLS`).  Array backends key
        their compiled kernels off this; the reference backend only needs
        :attr:`node_factory`.
    graph / labels / source / payload:
        The workload: topology, labeling, designated source (the node holding
        µ) and the payload µ itself.
    node_factory:
        Builds the per-node protocol object for the reference engine.
    max_rounds:
        Hard round budget.
    stop_rule:
        One of :data:`STOP_RULES` or ``None`` (run to budget).  Backends stop
        after the first round in which the rule holds.
    stop_condition:
        Optional callable ``sim -> bool`` used by the reference engine when
        the rule needs node introspection (e.g. B_arb's common-completion
        check).  Takes precedence over :attr:`stop_rule` on the reference
        path; array backends implement :attr:`stop_rule` natively.
    trace_level:
        ``"full"`` / ``"summary"`` / ``"none"`` (see :mod:`repro.radio.trace`).
    collision_model / fault_model / clock_model:
        Channel semantics; ``None`` selects the paper's defaults.  Non-default
        models force array backends to fall back to the reference engine.
    extras:
        Protocol-specific knobs (e.g. the B_arb coordinator id).
    """

    protocol: str
    graph: Graph
    labels: Mapping[int, str]
    node_factory: Optional[NodeFactory] = None
    source: Optional[int] = None
    payload: Any = "MSG"
    max_rounds: int = 0
    stop_rule: Optional[str] = None
    stop_condition: Optional[Callable[..., bool]] = None
    trace_level: str = "full"
    collision_model: Optional[CollisionModel] = None
    fault_model: Optional[FaultModel] = None
    clock_model: Optional[ClockModel] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; known: {PROTOCOLS}")
        if self.stop_rule is not None and self.stop_rule not in STOP_RULES:
            raise ValueError(f"unknown stop rule {self.stop_rule!r}; known: {STOP_RULES}")
        if self.max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {self.max_rounds}")


@dataclass
class BackendResult:
    """What a backend hands back: the simulation plus derived outcomes.

    ``derived`` carries protocol-level conclusions the backend computed while
    running (``completion_round``, ``acknowledgement_round``,
    ``common_completion_round``, …).  The reference backend leaves it empty —
    callers derive outcomes from the trace and node objects as before — while
    array backends fill it, since they have no node objects to inspect.

    ``backend`` is execution provenance: the registry name of the engine that
    *actually* ran the task.  Backends that delegate uncovered tasks (the
    vectorized backend to the reference engine, the batched and sharded
    backends to the vectorized one) leave the inner engine's tag in place, so
    a row produced through a fallback is never mislabeled as having run on
    the outer engine.
    """

    simulation: SimulationResult
    derived: Dict[str, Any] = field(default_factory=dict)
    backend: Optional[str] = None

    @property
    def trace(self):
        """The execution trace."""
        return self.simulation.trace


class SimulationBackend(ABC):
    """Strategy interface every simulation engine implements."""

    #: Registry / CLI name of the backend.
    name: str = "abstract"

    @abstractmethod
    def run_task(self, task: SimulationTask) -> BackendResult:
        """Execute ``task`` and return the result."""

    def run_batch(self, tasks: Sequence[SimulationTask]) -> List[BackendResult]:
        """Execute several tasks and return their results in input order.

        The default simply loops; backends that can amortise per-task
        overhead (see :class:`~repro.backends.batched.BatchedVectorizedBackend`)
        override this with a genuinely stacked execution.  Results must be
        identical to per-task :meth:`run_task` calls.
        """
        return [self.run_task(task) for task in tasks]

    def supports(self, task: SimulationTask) -> bool:
        """True if this backend can execute ``task`` natively."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

"""The faithful per-node object engine, wrapped as a backend.

This is the paper's model executed literally: one :class:`~repro.radio.node.
RadioNode` per node, a Python ``decide``/``deliver`` cycle per round.  It is
the ground truth every other backend is tested against, and the only backend
that supports arbitrary node factories, fault/clock/collision models and
custom stop conditions.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..radio.engine import RadioSimulator
from .base import BackendError, BackendResult, SimulationBackend, SimulationTask

__all__ = ["ReferenceBackend"]


class ReferenceBackend(SimulationBackend):
    """Round-synchronous object simulator (see :mod:`repro.radio.engine`)."""

    name = "reference"

    def run_task(self, task: SimulationTask) -> BackendResult:
        if task.node_factory is None:
            raise BackendError(
                f"the reference backend needs a node_factory for protocol "
                f"{task.protocol!r}"
            )
        # The object engine materialises RoundRecords either way; "none"
        # degrades to "summary" so stop rules keep working.
        trace_level = "summary" if task.trace_level == "none" else task.trace_level
        sim = RadioSimulator(
            task.graph,
            task.labels,
            task.node_factory,
            source=task.source,
            source_payload=task.payload,
            collision_model=task.collision_model,
            fault_model=task.fault_model,
            clock_model=task.clock_model,
            trace_level=trace_level,
        )
        stop = self._stop_condition(task)
        result = sim.run(task.max_rounds, stop)
        return BackendResult(simulation=result, derived={}, backend=self.name)

    def _stop_condition(self, task: SimulationTask) -> Optional[Callable]:
        if task.stop_condition is not None:
            return task.stop_condition
        if task.stop_rule is None:
            return None
        if task.stop_rule == "all_informed":
            return lambda sim: sim.all_informed()
        if task.stop_rule == "acknowledged":
            return lambda sim: sim.source_acknowledged()
        raise BackendError(
            f"stop rule {task.stop_rule!r} needs an explicit stop_condition "
            f"on the reference backend"
        )

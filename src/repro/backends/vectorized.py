"""Vectorized CSR simulation backend.

One round of the paper's radio model — "a listener hears a message iff exactly
one neighbour transmits" — is a sparse matrix–vector product of the adjacency
matrix with the 0/1 transmit vector.  This backend precompiles the three
labeled protocols (B, B_ack, B_arb), the round-robin / TDMA baselines and the
centralized-schedule baseline into NumPy array kernels over the graph's
prebuilt CSR arrays:

* the per-listener transmitter count is one ``bincount`` over the concatenated
  CSR neighbour slices of the transmitters (the SpMV);
* the identity of the unique transmitter heard by a count-1 listener falls out
  of a second weighted ``bincount`` (sum of transmitter ids — exact where the
  count is one);
* protocol state transitions ("informed two rounds ago", "heard *stay* last
  round") are boolean masks over per-node arrays, mirroring the decision
  rules of the object protocols branch for branch, in the same priority
  order, so outcomes are **bit-for-bit identical** to the
  :class:`~repro.backends.reference.ReferenceBackend` (asserted by
  ``tests/test_backend_equivalence.py``).

Only the genuinely sparse events — acknowledgement-chain bookkeeping, the
B_arb coordinator — stay in Python, bounded by the handful of nodes they
touch per round.  With ``trace_level="summary"``/``"none"`` the hot loop
allocates only small per-round work arrays proportional to the number of
transmitters, never to ``n × rounds``.

The collision-detection bit-signalling baseline is compiled too — its kernel
natively implements the detection channel (energy = message or collision) and
the slot-aligned symbol relay.  Tasks the kernels do not cover (custom node
factories, fault/clock models other than the paper's defaults) are delegated
to the reference backend, so ``--backend vectorized`` is always safe to pass.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from ..radio.clock import SynchronizedClocks
from ..radio.collision import NoCollisionDetection, WithCollisionDetection
from ..radio.engine import SimulationResult
from ..radio.faults import NoFaults
from ..radio.messages import (
    Message,
    ack_message,
    initialize_message,
    ready_message,
    source_message,
    stay_message,
)
from ..radio.trace import ExecutionTrace, RoundRecord
from .base import BackendError, BackendResult, SimulationBackend, SimulationTask
from .reference import ReferenceBackend

__all__ = ["VectorizedBackend"]

# Transmission kind codes used by the kernels (0 = listen).
_K_NONE = 0
_K_INIT = 1
_K_READY = 2
_K_SOURCE = 3
_K_STAY = 4
_K_ACK = 5
_KIND_NAMES = {
    _K_INIT: "initialize",
    _K_READY: "ready",
    _K_SOURCE: "source",
    _K_STAY: "stay",
    _K_ACK: "ack",
}

#: Sentinel for "never" in round-number arrays (any valid round is >= 1, and
#: the rules compare against r-2 >= -1, so -5 can never match).
_NEVER = -5

_EMPTY = np.empty(0, dtype=np.int64)


# --------------------------------------------------------------------------- #
# label parsing
# --------------------------------------------------------------------------- #
def _parse_bit_labels(labels, n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``x1 x2 [x3]`` labels into three boolean arrays."""
    x1 = np.zeros(n, dtype=bool)
    x2 = np.zeros(n, dtype=bool)
    x3 = np.zeros(n, dtype=bool)
    for v in range(n):
        lab = labels[v]
        x1[v] = len(lab) > 0 and lab[0] == "1"
        x2[v] = len(lab) > 1 and lab[1] == "1"
        x3[v] = len(lab) > 2 and lab[2] == "1"
    return x1, x2, x3


def _parse_slot_labels(labels, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Split two-field ``bits(slot) ++ bits(period-1)`` labels into arrays."""
    slots = np.zeros(n, dtype=np.int64)
    periods = np.ones(n, dtype=np.int64)
    for v in range(n):
        lab = labels[v]
        if len(lab) % 2 != 0:
            raise BackendError(f"malformed slotted label {lab!r} for node {v}")
        half = len(lab) // 2
        slots[v] = int(lab[:half], 2)
        periods[v] = int(lab[half:], 2) + 1
    return slots, periods


# --------------------------------------------------------------------------- #
# bit accounting
# --------------------------------------------------------------------------- #
def _stamp_bits(stamps: np.ndarray) -> np.ndarray:
    """``max(1, ceil(log2(stamp + 2)))`` per stamp — the paper's stamp cost."""
    # ceil(log2(s + 2)) == bit_length(s + 1) for s >= 0; exact in float64 for
    # every round stamp a simulation can produce.
    return np.floor(np.log2(stamps.astype(np.float64) + 1.0)).astype(np.int64) + 1


def _int_payload_bits(value: int) -> int:
    """Bits charged for an integer payload (``max(1, ceil(log2(|v| + 2)))``)."""
    return max(1, (abs(int(value)) + 1).bit_length())


# --------------------------------------------------------------------------- #
# the channel: one SpMV per round
# --------------------------------------------------------------------------- #
class _Channel:
    """CSR adjacency plus the per-round collision-resolution kernel."""

    def __init__(self, graph) -> None:
        self.n = graph.n
        self.indptr, self.indices = graph.csr()

    @classmethod
    def from_arrays(cls, indptr: np.ndarray, indices: np.ndarray, n: int) -> "_Channel":
        """Build a channel over prestacked CSR arrays (the batched engine's
        block-diagonal adjacency) without materialising a Graph."""
        channel = cls.__new__(cls)
        channel.n = n
        channel.indptr = indptr
        channel.indices = indices
        return channel

    def resolve(
        self, tx_mask: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Resolve one round of the radio channel.

        Returns ``(tx_ids, hears_ids, senders, collision_ids)`` where
        ``senders[i]`` is the unique transmitting neighbour heard by
        ``hears_ids[i]`` and ``collision_ids`` are the listeners with two or
        more transmitting neighbours.
        """
        tx_ids = np.flatnonzero(tx_mask)
        if tx_ids.size == 0:
            return tx_ids, _EMPTY, _EMPTY, _EMPTY
        indptr, indices = self.indptr, self.indices
        deg = indptr[tx_ids + 1] - indptr[tx_ids]
        total = int(deg.sum())
        if total == 0:
            return tx_ids, _EMPTY, _EMPTY, _EMPTY
        base = np.repeat(indptr[tx_ids] - (np.cumsum(deg) - deg), deg)
        targets = indices[base + np.arange(total, dtype=np.int64)]
        # ``bincount`` returns the platform's intp dtype; force 64-bit so
        # receive counts (and everything derived from them) can never wrap on
        # 32-bit platforms even for n >= 10^6 high-degree instances.
        counts = np.bincount(targets, minlength=self.n).astype(np.int64, copy=False)
        counts[tx_ids] = 0  # transmitters hear nothing in their own round
        hears_ids = np.flatnonzero(counts == 1)
        collision_ids = np.flatnonzero(counts >= 2)
        if hears_ids.size:
            owners = np.repeat(tx_ids, deg).astype(np.float64)
            sums = np.bincount(targets, weights=owners, minlength=self.n)
            senders = sums[hears_ids].astype(np.int64)
        else:
            senders = _EMPTY
        return tx_ids, hears_ids, senders, collision_ids


class _Recorder:
    """Shared trace plumbing: full RoundRecords or O(1) summary increments."""

    def __init__(self, n: int, source: Optional[int], level: str) -> None:
        self.level = level
        self.full = level == "full"
        self.per_node = level != "none"
        self.trace = ExecutionTrace(num_nodes=n, source=source, level=level)

    def full_round(
        self,
        r: int,
        transmissions: Dict[int, Message],
        receptions: Dict[int, Message],
        collision_ids: np.ndarray,
    ) -> None:
        self.trace.append(
            RoundRecord(
                round_number=r,
                transmissions=transmissions,
                receptions=receptions,
                collisions=frozenset(int(v) for v in collision_ids),
            )
        )

    def summary_round(self, r: int, **kwargs) -> None:
        if not self.per_node:
            kwargs["informed"] = ()
            kwargs["ack_hearers"] = ()
        self.trace.record_summary_round(r, **kwargs)


# --------------------------------------------------------------------------- #
# Algorithm B — plain broadcast
# --------------------------------------------------------------------------- #
def _run_broadcast_kernel(task: SimulationTask, channel=None) -> BackendResult:
    graph, n = task.graph, task.graph.n
    src = task.source
    payload = task.payload
    if channel is None:
        channel = _Channel(graph)
    rec = _Recorder(n, src, task.trace_level)
    x1, x2, _ = _parse_bit_labels(task.labels, n)

    informed = np.zeros(n, dtype=bool)
    informed[src] = True
    informed_count = 1
    informed_r = np.full(n, _NEVER, dtype=np.int64)
    sent_src_prev = np.zeros(n, dtype=bool)
    sent_src_prev2 = np.zeros(n, dtype=bool)
    heard_stay_prev = np.zeros(n, dtype=bool)

    completion: Optional[int] = None
    stop_round, stop_reason = 0, "budget"

    for r in range(1, task.max_rounds + 1):
        # Decide (Algorithm 1, in the object protocol's priority order).
        m3 = informed_r == r - 2
        m4 = informed_r == r - 1
        tx_source = (m3 & x1) | (informed & ~m3 & ~m4 & sent_src_prev2 & heard_stay_prev)
        if r == 1:
            tx_source[src] = True
        tx_stay = m4 & x2

        # Channel.
        tx_ids, hears_ids, senders, collision_ids = channel.resolve(tx_source | tx_stay)

        # Deliver.
        heard_stay_now = np.zeros(n, dtype=bool)
        if hears_ids.size:
            sender_is_stay = tx_stay[senders]
            heard_stay_now[hears_ids[sender_is_stay]] = True
            mu_hearers = hears_ids[~sender_is_stay]
            new_ids = mu_hearers[~informed[mu_hearers]]
            informed[new_ids] = True
            informed_r[new_ids] = r
            informed_count += new_ids.size
        else:
            mu_hearers = _EMPTY

        # Record.
        n_src_tx = int(np.count_nonzero(tx_source))
        n_stay_tx = int(tx_ids.size) - n_src_tx
        if rec.full:
            src_msg, stay_msg = source_message(payload), stay_message()
            transmissions = {
                int(u): (src_msg if tx_source[u] else stay_msg) for u in tx_ids
            }
            receptions = {
                int(v): transmissions[int(u)] for v, u in zip(hears_ids, senders)
            }
            rec.full_round(r, transmissions, receptions, collision_ids)
        else:
            rec.summary_round(
                r,
                transmissions=int(tx_ids.size),
                receptions=int(hears_ids.size),
                collisions=int(collision_ids.size),
                kinds={"source": n_src_tx, "stay": n_stay_tx},
                fixed_bits=2 * n_stay_tx,
                payload_messages=n_src_tx,
                informed=mu_hearers,
                ack_hearers=(),
            )

        sent_src_prev2, sent_src_prev = sent_src_prev, tx_source
        heard_stay_prev = heard_stay_now
        stop_round = r
        if completion is None and informed_count == n:
            completion = r
        if task.stop_rule == "all_informed" and informed_count == n:
            stop_reason = "condition"
            break

    sim = SimulationResult(
        trace=rec.trace, nodes=[], stop_round=stop_round, stop_reason=stop_reason
    )
    return BackendResult(simulation=sim, derived={"completion_round": completion})


# --------------------------------------------------------------------------- #
# Algorithm B_ack — acknowledged broadcast
# --------------------------------------------------------------------------- #
def _run_acknowledged_kernel(task: SimulationTask) -> BackendResult:
    graph, n = task.graph, task.graph.n
    src = task.source
    payload = task.payload
    channel = _Channel(graph)
    rec = _Recorder(n, src, task.trace_level)
    x1, x2, x3 = _parse_bit_labels(task.labels, n)

    informed = np.zeros(n, dtype=bool)
    informed[src] = True
    informed_count = 1
    informed_r = np.full(n, _NEVER, dtype=np.int64)
    informed_stamp = np.zeros(n, dtype=np.int64)
    sent_src_prev = np.zeros(n, dtype=bool)
    sent_src_prev2 = np.zeros(n, dtype=bool)
    heard_stay_prev = np.zeros(n, dtype=bool)
    heard_stay_stamp = np.zeros(n, dtype=np.int64)
    prev_acks: List[Tuple[int, int]] = []  # (hearer, heard stamp) from last round
    transmit_stamps: Dict[int, Set[int]] = {}

    first_ack_round: Optional[int] = None
    completion: Optional[int] = None
    stop_round, stop_reason = 0, "budget"

    for r in range(1, task.max_rounds + 1):
        tx_kind = np.zeros(n, dtype=np.int8)
        tx_stamp = np.zeros(n, dtype=np.int64)

        # Algorithm 2, branch for branch.
        if r == 1:  # lines 4-5: the source transmits (µ, 1)
            tx_kind[src] = _K_SOURCE
            tx_stamp[src] = 1
        m3 = informed_r == r - 2
        m4 = informed_r == r - 1
        a3 = m3 & x1  # lines 12-16
        if a3.any():
            ids = np.flatnonzero(a3)
            stamps = informed_stamp[ids] + 2
            tx_kind[ids] = _K_SOURCE
            tx_stamp[ids] = stamps
            for v, s in zip(ids, stamps):
                transmit_stamps.setdefault(int(v), set()).add(int(s))
        a4_ack = m4 & x3  # lines 17-22
        tx_kind[a4_ack] = _K_ACK
        tx_stamp[a4_ack] = informed_stamp[a4_ack]
        a4_stay = m4 & ~x3 & x2
        tx_kind[a4_stay] = _K_STAY
        tx_stamp[a4_stay] = informed_stamp[a4_stay] + 1
        # lines 23-27: nodes that heard "stay" return here whether or not they
        # retransmit, so they are excluded from the ack-relay rule below.
        m5 = informed & ~m3 & ~m4 & heard_stay_prev
        a5 = m5 & sent_src_prev2
        if a5.any():
            ids = np.flatnonzero(a5)
            stamps = heard_stay_stamp[ids] + 1
            tx_kind[ids] = _K_SOURCE
            tx_stamp[ids] = stamps
            for v, s in zip(ids, stamps):
                if int(v) != src:
                    transmit_stamps.setdefault(int(v), set()).add(int(s))
        for v, heard_stamp in prev_acks:  # lines 28-31 (sparse: the ack chain)
            if v == src or not informed[v]:
                continue
            ir = informed_r[v]
            if ir == r - 2 or ir == r - 1 or heard_stay_prev[v] or tx_kind[v]:
                continue
            if heard_stamp in transmit_stamps.get(v, ()):
                tx_kind[v] = _K_ACK
                tx_stamp[v] = informed_stamp[v]

        # Channel.
        tx_ids, hears_ids, senders, collision_ids = channel.resolve(tx_kind > 0)

        # Deliver.
        heard_stay_now = np.zeros(n, dtype=bool)
        heard_stay_stamp_now = np.zeros(n, dtype=np.int64)
        next_acks: List[Tuple[int, int]] = []
        mu_hearers = _EMPTY
        ack_hearers = _EMPTY
        if hears_ids.size:
            heard_kind = tx_kind[senders]
            heard_stamp = tx_stamp[senders]
            mu_sel = heard_kind == _K_SOURCE
            mu_hearers = hears_ids[mu_sel]
            new_sel = mu_sel & ~informed[hears_ids]
            new_ids = hears_ids[new_sel]
            informed[new_ids] = True
            informed_r[new_ids] = r
            informed_stamp[new_ids] = heard_stamp[new_sel]
            informed_count += new_ids.size
            stay_sel = heard_kind == _K_STAY
            heard_stay_now[hears_ids[stay_sel]] = True
            heard_stay_stamp_now[hears_ids[stay_sel]] = heard_stamp[stay_sel]
            ack_sel = heard_kind == _K_ACK
            ack_hearers = hears_ids[ack_sel]
            next_acks = [
                (int(v), int(s))
                for v, s in zip(ack_hearers, heard_stamp[ack_sel])
            ]
            if first_ack_round is None and np.any(ack_hearers == src):
                first_ack_round = r

        # Record.
        if rec.full:
            transmissions: Dict[int, Message] = {}
            for u in tx_ids:
                u = int(u)
                stamp = int(tx_stamp[u])
                if tx_kind[u] == _K_SOURCE:
                    transmissions[u] = source_message(payload, round_stamp=stamp)
                elif tx_kind[u] == _K_STAY:
                    transmissions[u] = stay_message(round_stamp=stamp)
                else:
                    transmissions[u] = ack_message(stamp)
            receptions = {
                int(v): transmissions[int(u)] for v, u in zip(hears_ids, senders)
            }
            rec.full_round(r, transmissions, receptions, collision_ids)
        else:
            stamps = tx_stamp[tx_ids]
            n_src_tx = int(np.count_nonzero(tx_kind[tx_ids] == _K_SOURCE))
            n_stay_tx = int(np.count_nonzero(tx_kind[tx_ids] == _K_STAY))
            n_ack_tx = int(tx_ids.size) - n_src_tx - n_stay_tx
            fixed = int(_stamp_bits(stamps).sum()) + 2 * (n_stay_tx + n_ack_tx)
            rec.summary_round(
                r,
                transmissions=int(tx_ids.size),
                receptions=int(hears_ids.size),
                collisions=int(collision_ids.size),
                kinds={"source": n_src_tx, "stay": n_stay_tx, "ack": n_ack_tx},
                fixed_bits=fixed,
                payload_messages=n_src_tx,
                informed=mu_hearers,
                ack_hearers=ack_hearers,
            )

        sent_src_prev2, sent_src_prev = sent_src_prev, tx_kind == _K_SOURCE
        heard_stay_prev = heard_stay_now
        heard_stay_stamp = heard_stay_stamp_now
        prev_acks = next_acks
        stop_round = r
        if completion is None and informed_count == n:
            completion = r
        if task.stop_rule == "acknowledged" and first_ack_round is not None:
            stop_reason = "condition"
            break
        if task.stop_rule == "all_informed" and informed_count == n:
            stop_reason = "condition"
            break

    sim = SimulationResult(
        trace=rec.trace, nodes=[], stop_round=stop_round, stop_reason=stop_reason
    )
    derived = {
        "completion_round": completion,
        "acknowledgement_round": first_ack_round,
    }
    return BackendResult(simulation=sim, derived=derived)


# --------------------------------------------------------------------------- #
# Algorithm B_arb — arbitrary-source broadcast
# --------------------------------------------------------------------------- #
def _run_arbitrary_kernel(task: SimulationTask) -> BackendResult:
    graph, n = task.graph, task.graph.n
    src = task.source  # the node actually holding µ (the paper's s_G)
    payload = task.payload
    channel = _Channel(graph)
    rec = _Recorder(n, src, task.trace_level)
    x1, x2, x3 = _parse_bit_labels(task.labels, n)

    coordinator = task.extras.get("coordinator")
    if coordinator is None:
        matches = [v for v in range(n) if task.labels[v] == "111"]
        if not matches:
            raise BackendError("λ_arb labeling has no coordinator label '111'")
        coordinator = matches[0]
    c = int(coordinator)

    # Per-phase state: 0 = initialize, 1 = ready, 2 = source.
    ph_inf = np.full((3, n), _NEVER, dtype=np.int64)
    ph_stamp = np.zeros((3, n), dtype=np.int64)
    transmit_stamps: Tuple[Dict[int, Set[int]], ...] = ({}, {}, {})
    t_v = np.full(n, -1, dtype=np.int64)
    t_v[c] = 0
    T_arr = np.full(n, -1, dtype=np.int64)
    known = np.zeros(n, dtype=bool)
    completion_known = np.zeros(n, dtype=np.int64)

    sent_kind_prev = np.zeros(n, dtype=np.int8)
    sent_kind_prev2 = np.zeros(n, dtype=np.int8)
    heard_stay_prev = np.zeros(n, dtype=bool)
    heard_stay_stamp = np.zeros(n, dtype=np.int64)
    prev_acks: List[Tuple[int, int, Any]] = []  # (hearer, stamp, ack payload)

    # Coordinator / actual-source scheduling state.
    T_c: Optional[int] = None
    sched_ready: Optional[int] = None
    sched_source: Optional[int] = None
    ready_sent: Optional[int] = None
    learned_payload: Any = payload if c == src else None
    sched_src_ack: Optional[int] = None
    coord_ack_first: Optional[int] = None
    coord_ack_last: Optional[int] = None

    def phase_payload(kind_code: int) -> Any:
        if kind_code == _K_INIT:
            return None
        if kind_code == _K_READY:
            return T_c
        return payload

    stop_round, stop_reason = 0, "budget"

    for r in range(1, task.max_rounds + 1):
        tx_kind = np.zeros(n, dtype=np.int8)
        tx_stamp = np.zeros(n, dtype=np.int64)
        ack_payloads: Dict[int, Any] = {}
        decided = np.zeros(n, dtype=bool)

        # Coordinator phase starts (checked first, as in the object protocol;
        # its local clock starts at 1, so the global stamp is just r).
        if r == 1:
            tx_kind[c] = _K_INIT
            tx_stamp[c] = 1
            decided[c] = True
        elif sched_ready == r and T_c is not None:
            ready_sent = r
            if c == src:
                sched_source = r + T_c + 1
            tx_kind[c] = _K_READY
            tx_stamp[c] = r
            decided[c] = True
        elif sched_source == r and learned_payload is not None:
            known[c] = True
            completion_known[c] = r + (T_c or 0) - 1
            tx_kind[c] = _K_SOURCE
            tx_stamp[c] = r
            decided[c] = True

        # The actual source starts the phase-2 acknowledgement after its timer.
        if sched_src_ack == r and not decided[src]:
            tx_kind[src] = _K_ACK
            tx_stamp[src] = ph_stamp[1][src]
            ack_payloads[src] = payload
            decided[src] = True

        # Shared B_ack rules, per phase, in phase order.
        und = ~decided
        for k in range(3):
            inf_k = ph_inf[k]
            stamp_k = ph_stamp[k]
            mA = und & (inf_k == r - 2) & x1
            if mA.any():
                ids = np.flatnonzero(mA)
                stamps = stamp_k[ids] + 2
                tx_kind[ids] = _K_INIT + k
                tx_stamp[ids] = stamps
                for v, s in zip(ids, stamps):
                    transmit_stamps[k].setdefault(int(v), set()).add(int(s))
                und &= ~mA
            newly1 = inf_k == r - 1
            if k == 0:  # z starts the phase-1 ack, appending T = t_z
                mAck = und & newly1 & x3
                if mAck.any():
                    ids = np.flatnonzero(mAck)
                    tx_kind[ids] = _K_ACK
                    tx_stamp[ids] = stamp_k[ids]
                    for v in ids:
                        ack_payloads[int(v)] = int(stamp_k[v])
                    und &= ~mAck
            mStay = und & newly1 & x2
            if mStay.any():
                tx_kind[mStay] = _K_STAY
                tx_stamp[mStay] = stamp_k[mStay] + 1
                und &= ~mStay

        # Stay-triggered retransmission (any phase, coordinator included).
        mS = und & heard_stay_prev
        aS = mS & (sent_kind_prev2 >= _K_INIT) & (sent_kind_prev2 <= _K_SOURCE)
        if aS.any():
            ids = np.flatnonzero(aS)
            stamps = heard_stay_stamp[ids] + 1
            tx_kind[ids] = sent_kind_prev2[ids]
            tx_stamp[ids] = stamps
            for v, s in zip(ids, stamps):
                if int(v) != c:
                    transmit_stamps[int(sent_kind_prev2[v]) - _K_INIT].setdefault(
                        int(v), set()
                    ).add(int(s))
            und &= ~aS

        # Ack relaying (sparse: the chain walks back one hop per round).
        for v, heard_stamp, ack_pay in prev_acks:
            if v == c or not und[v] or tx_kind[v]:
                continue
            for k in range(3):
                stamps_v = transmit_stamps[k].get(v)
                if stamps_v and heard_stamp in stamps_v:
                    tx_kind[v] = _K_ACK
                    tx_stamp[v] = ph_stamp[k][v]
                    ack_payloads[v] = ack_pay
                    break

        # Channel.
        tx_ids, hears_ids, senders, collision_ids = channel.resolve(tx_kind > 0)

        # Deliver.
        heard_stay_now = np.zeros(n, dtype=bool)
        heard_stay_stamp_now = np.zeros(n, dtype=np.int64)
        next_acks: List[Tuple[int, int, Any]] = []
        mu_hearers = _EMPTY
        ack_hearers = _EMPTY
        if hears_ids.size:
            heard_kind = tx_kind[senders]
            heard_stamp = tx_stamp[senders]
            for k in range(3):  # first receipt of a phase's broadcast payload
                sel = heard_kind == _K_INIT + k
                if not sel.any():
                    continue
                vs = hears_ids[sel]
                sts = heard_stamp[sel]
                keep = (vs != c) & (ph_inf[k][vs] == _NEVER)
                vs, sts = vs[keep], sts[keep]
                if vs.size == 0:
                    continue
                ph_inf[k][vs] = r
                ph_stamp[k][vs] = sts
                if k == 0:
                    t_v[vs] = sts
                elif k == 1:
                    T_arr[vs] = T_c if T_c is not None else 0
                    if np.any(vs == src):
                        sched_src_ack = r + int(T_arr[src]) + 1
                else:
                    ready_t = (T_arr[vs] >= 0) & (t_v[vs] >= 0)
                    done = vs[ready_t]
                    known[done] = True
                    completion_known[done] = r + T_arr[done] - t_v[done]
            mu_hearers = hears_ids[heard_kind == _K_SOURCE]
            stay_sel = heard_kind == _K_STAY
            heard_stay_now[hears_ids[stay_sel]] = True
            heard_stay_stamp_now[hears_ids[stay_sel]] = heard_stamp[stay_sel]
            ack_sel = heard_kind == _K_ACK
            ack_hearers = hears_ids[ack_sel]
            if ack_hearers.size:
                for v, s, u in zip(
                    ack_hearers, heard_stamp[ack_sel], senders[ack_sel]
                ):
                    pay = ack_payloads.get(int(u))
                    next_acks.append((int(v), int(s), pay))
                    if int(v) == c:
                        coord_ack_last = r
                        if coord_ack_first is None:
                            coord_ack_first = r
                        if T_c is None:
                            T_c = int(pay) if pay is not None else 0
                            sched_ready = r + T_c + 1
                        elif (
                            ready_sent is not None
                            and r > ready_sent
                            and sched_source is None
                        ):
                            learned_payload = pay
                            sched_source = r + T_c + 1

        # Record.
        if rec.full:
            transmissions: Dict[int, Message] = {}
            for u in tx_ids:
                u = int(u)
                kind = int(tx_kind[u])
                stamp = int(tx_stamp[u])
                if kind == _K_INIT:
                    transmissions[u] = initialize_message(round_stamp=stamp)
                elif kind == _K_READY:
                    transmissions[u] = ready_message(int(T_c or 0), round_stamp=stamp)
                elif kind == _K_SOURCE:
                    transmissions[u] = source_message(payload, round_stamp=stamp)
                elif kind == _K_STAY:
                    transmissions[u] = stay_message(round_stamp=stamp)
                else:
                    transmissions[u] = ack_message(stamp, payload=ack_payloads.get(u))
            receptions = {
                int(v): transmissions[int(u)] for v, u in zip(hears_ids, senders)
            }
            rec.full_round(r, transmissions, receptions, collision_ids)
        else:
            kinds_tx = tx_kind[tx_ids]
            stamps = tx_stamp[tx_ids]
            counts = {
                name: int(np.count_nonzero(kinds_tx == code))
                for code, name in _KIND_NAMES.items()
                if np.any(kinds_tx == code)
            }
            n_src_tx = counts.get("source", 0)
            n_ready_tx = counts.get("ready", 0)
            non_source = int(tx_ids.size) - n_src_tx
            fixed = int(_stamp_bits(stamps).sum()) + 2 * non_source
            if n_ready_tx:
                fixed += n_ready_tx * _int_payload_bits(T_c or 0)
            payload_msgs = n_src_tx
            for u in tx_ids[kinds_tx == _K_ACK]:
                pay = ack_payloads.get(int(u))
                if pay is None:
                    continue
                if isinstance(pay, int):
                    fixed += _int_payload_bits(pay)
                else:
                    payload_msgs += 1
            rec.summary_round(
                r,
                transmissions=int(tx_ids.size),
                receptions=int(hears_ids.size),
                collisions=int(collision_ids.size),
                kinds=counts,
                fixed_bits=fixed,
                payload_messages=payload_msgs,
                informed=mu_hearers,
                ack_hearers=ack_hearers,
            )

        sent_kind_prev2, sent_kind_prev = sent_kind_prev, tx_kind
        heard_stay_prev = heard_stay_now
        heard_stay_stamp = heard_stay_stamp_now
        prev_acks = next_acks
        stop_round = r
        if task.stop_rule == "arb_complete" and bool(known.all()):
            stop_reason = "condition"
            break

    # Derived outcomes, mirroring the reference derivation in core.runner.
    ack_round = coord_ack_first
    receipt_rounds: List[int] = []
    missing = False
    for v in range(n):
        if v in (src, c):
            continue
        if ph_inf[2][v] == _NEVER:
            missing = True
            break
        receipt_rounds.append(int(ph_inf[2][v]))
    coordinator_learned_round = coord_ack_last if c != src else None
    completion: Optional[int] = None
    if not missing and (learned_payload is not None or c == src):
        candidates = list(receipt_rounds)
        if coordinator_learned_round is not None:
            candidates.append(coordinator_learned_round)
        completion = max(candidates) if candidates else 1
    common: Optional[int] = None
    if bool(known.all()) and n > 0:
        values = np.unique(completion_known)
        if values.size == 1:
            common = int(values[0])

    sim = SimulationResult(
        trace=rec.trace, nodes=[], stop_round=stop_round, stop_reason=stop_reason
    )
    derived = {
        "completion_round": completion,
        "acknowledgement_round": ack_round,
        "common_completion_round": common,
        "coordinator": c,
    }
    return BackendResult(simulation=sim, derived=derived)


# --------------------------------------------------------------------------- #
# Source-flood baselines: round-robin / TDMA slots and centralized schedules
# --------------------------------------------------------------------------- #
def _run_source_flood(task: SimulationTask, tx_mask_for_round, channel=None) -> BackendResult:
    """Shared loop for baselines that only ever retransmit µ.

    ``tx_mask_for_round(r, informed)`` returns the boolean transmit mask of
    round ``r``; everything else — channel resolution, first-receipt
    bookkeeping, trace recording, the ``all_informed`` stop rule — is
    identical across the slotted and scheduled baselines.  ``channel`` lets a
    caller substitute a drop-in replacement for the CSR :class:`_Channel`
    (the ELL tier injects its padded-layout channel here so equivalence with
    this loop holds by construction).
    """
    graph, n = task.graph, task.graph.n
    src = task.source
    payload = task.payload
    if channel is None:
        channel = _Channel(graph)
    rec = _Recorder(n, src, task.trace_level)

    informed = np.zeros(n, dtype=bool)
    informed[src] = True
    informed_count = 1
    completion: Optional[int] = None
    stop_round, stop_reason = 0, "budget"

    for r in range(1, task.max_rounds + 1):
        tx_mask = tx_mask_for_round(r, informed)
        tx_ids, hears_ids, senders, collision_ids = channel.resolve(tx_mask)
        if hears_ids.size:
            new_ids = hears_ids[~informed[hears_ids]]
            informed[new_ids] = True
            informed_count += new_ids.size
        if rec.full:
            msg = source_message(payload)
            transmissions = {int(u): msg for u in tx_ids}
            receptions = {int(v): msg for v in hears_ids}
            rec.full_round(r, transmissions, receptions, collision_ids)
        else:
            rec.summary_round(
                r,
                transmissions=int(tx_ids.size),
                receptions=int(hears_ids.size),
                collisions=int(collision_ids.size),
                kinds={"source": int(tx_ids.size)},
                fixed_bits=0,
                payload_messages=int(tx_ids.size),
                informed=hears_ids,
                ack_hearers=(),
            )
        stop_round = r
        if completion is None and informed_count == n:
            completion = r
        if task.stop_rule == "all_informed" and informed_count == n:
            stop_reason = "condition"
            break

    sim = SimulationResult(
        trace=rec.trace, nodes=[], stop_round=stop_round, stop_reason=stop_reason
    )
    return BackendResult(simulation=sim, derived={"completion_round": completion})


def _run_slotted_kernel(task: SimulationTask, channel=None) -> BackendResult:
    """Round-robin / G²-colouring TDMA: informed node of slot s transmits at r ≡ s."""
    slots, periods = _parse_slot_labels(task.labels, task.graph.n)
    slot_residue = slots % periods

    def tx_mask(r: int, informed: np.ndarray) -> np.ndarray:
        return informed & ((r % periods) == slot_residue)

    return _run_source_flood(task, tx_mask, channel=channel)


def _run_collision_detection_kernel(task: SimulationTask) -> BackendResult:
    """Anonymous bit-signalling broadcast as an array kernel.

    The kernel lives in the batched engine (it is the batch-of-one view of
    :func:`repro.backends.batched.run_collision_detection_batch`); the lazy
    import avoids a module cycle (batched builds on this module's channel and
    recorder plumbing).
    """
    from .batched import run_collision_detection_batch

    return run_collision_detection_batch([task])[0]


def _run_centralized_kernel(task: SimulationTask) -> BackendResult:
    """Centralized schedule: round ``r``'s precomputed transmitter set, once informed.

    The schedule arrives as declarative data in ``task.extras["schedule"]``
    (one node-id list per round), mirroring
    :class:`~repro.baselines.centralized.ScheduledNode`, which transmits in
    its scheduled rounds provided it already knows µ.
    """
    n = task.graph.n
    schedule = [
        np.asarray(round_ids, dtype=np.int64)
        for round_ids in task.extras.get("schedule", ())
    ]

    def tx_mask(r: int, informed: np.ndarray) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        if r <= len(schedule):
            mask[schedule[r - 1]] = True
        return mask & informed

    return _run_source_flood(task, tx_mask)


# --------------------------------------------------------------------------- #
# the backend
# --------------------------------------------------------------------------- #
class VectorizedBackend(SimulationBackend):
    """NumPy CSR kernels for the labeled protocols and TDMA baselines.

    Parameters
    ----------
    strict:
        If true, raise :class:`~repro.backends.base.BackendError` on tasks the
        kernels cannot execute instead of silently delegating them to the
        reference backend.
    """

    name = "vectorized"

    # Plain dict of module-level functions; looked up by key, never as a
    # class attribute, so no bound-method descriptor protocol applies.
    _KERNELS = {
        "broadcast": _run_broadcast_kernel,
        "acknowledged": _run_acknowledged_kernel,
        "arbitrary": _run_arbitrary_kernel,
        "round_robin": _run_slotted_kernel,
        "coloring_tdma": _run_slotted_kernel,
        "centralized": _run_centralized_kernel,
        "collision_detection": _run_collision_detection_kernel,
    }

    def __init__(self, *, strict: bool = False) -> None:
        self.strict = strict
        self._fallback = ReferenceBackend()

    def supports(self, task: SimulationTask) -> bool:
        """True if a compiled kernel covers ``task`` under default channel models."""
        if task.protocol not in self._KERNELS:
            return False
        if task.source is None or task.graph.n == 0:
            return False
        if task.protocol == "centralized" and "schedule" not in task.extras:
            # A centralized task without declarative schedule data can only be
            # executed through its node objects.
            return False
        if task.collision_model is not None and type(task.collision_model) is not NoCollisionDetection:
            # The bit-signalling kernel natively implements the detection
            # channel (energy = message or collision); everything else is
            # compiled for the paper's default model only.
            if not (
                task.protocol == "collision_detection"
                and type(task.collision_model) is WithCollisionDetection
            ):
                return False
        if task.fault_model is not None and type(task.fault_model) is not NoFaults:
            return False
        if task.clock_model is not None and type(task.clock_model) is not SynchronizedClocks:
            return False
        return True

    def run_task(self, task: SimulationTask) -> BackendResult:
        if not self.supports(task):
            if self.strict:
                raise BackendError(
                    f"vectorized backend has no kernel for protocol "
                    f"{task.protocol!r} with the given channel models"
                )
            # The fallback result keeps its own provenance tag ("reference").
            return self._fallback.run_task(task)
        result = self._KERNELS[task.protocol](task)
        result.backend = self.name
        return result

"""Pluggable simulation backends.

Public surface::

    from repro.backends import resolve_backend, ReferenceBackend, VectorizedBackend

    backend = resolve_backend("vectorized")
    result = backend.run_task(task)

``resolve_backend`` accepts a backend name (``"reference"`` /
``"vectorized"`` / ``"batched"`` / ``"sharded"``), an existing backend
instance, or ``None`` (the reference default), and returns a shared instance.
The batched backend additionally exposes ``run_batch(tasks)``, stacking many
compatible tasks into one block-diagonal kernel invocation (see
:mod:`repro.backends.batched`); the sharded backend splits *one* large
instance's round loop across a process pool (see
:mod:`repro.backends.sharded`) and accepts a shard count as a spec suffix —
``resolve_backend("sharded:4")`` runs four segment workers.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from .base import (
    PROTOCOLS,
    STOP_RULES,
    BackendError,
    BackendResult,
    SimulationBackend,
    SimulationTask,
)
from .reference import ReferenceBackend
from .vectorized import VectorizedBackend
from .batched import BatchedVectorizedBackend
from .sharded import ShardedVectorizedBackend

__all__ = [
    "BACKEND_NAMES",
    "BackendError",
    "BackendResult",
    "BatchedVectorizedBackend",
    "PROTOCOLS",
    "ReferenceBackend",
    "STOP_RULES",
    "ShardedVectorizedBackend",
    "SimulationBackend",
    "SimulationTask",
    "VectorizedBackend",
    "resolve_backend",
]

_BACKEND_CLASSES = {
    ReferenceBackend.name: ReferenceBackend,
    VectorizedBackend.name: VectorizedBackend,
    BatchedVectorizedBackend.name: BatchedVectorizedBackend,
    ShardedVectorizedBackend.name: ShardedVectorizedBackend,
}

#: Names accepted by :func:`resolve_backend` (and the CLI ``--backend`` flag).
#: ``"sharded"`` additionally accepts a ``:K`` shard-count suffix.
BACKEND_NAMES = tuple(_BACKEND_CLASSES)

_instances: Dict[str, SimulationBackend] = {}


def _parse_backend_spec(spec: str):
    """Split ``"name"`` / ``"sharded:K"`` into (class, constructor kwargs)."""
    name, sep, arg = spec.partition(":")
    try:
        cls = _BACKEND_CLASSES[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {spec!r}; known backends: {sorted(_BACKEND_CLASSES)}"
        ) from None
    if not sep:
        return cls, {}
    if name != ShardedVectorizedBackend.name:
        raise BackendError(
            f"backend {name!r} takes no {arg!r} argument; only 'sharded:K' "
            f"accepts a shard count"
        )
    try:
        shards = int(arg)
    except ValueError:
        raise BackendError(
            f"bad shard count {arg!r} in backend spec {spec!r}; "
            f"expected 'sharded:K' with integer K >= 1"
        ) from None
    if shards < 1:
        raise BackendError(f"shard count must be >= 1, got {shards}")
    return cls, {"shards": shards}


def resolve_backend(
    backend: Optional[Union[str, SimulationBackend]] = None,
) -> SimulationBackend:
    """Map a backend spec (name, instance or ``None``) to a backend object.

    Specs are registry names, plus the parameterized form ``"sharded:K"``
    selecting a K-worker sharded backend; each distinct spec maps to one
    shared instance.
    """
    if backend is None:
        backend = ReferenceBackend.name
    if isinstance(backend, SimulationBackend):
        return backend
    if backend not in _instances:
        cls, kwargs = _parse_backend_spec(backend)
        _instances[backend] = cls(**kwargs)
    return _instances[backend]

"""Pluggable simulation backends.

Public surface::

    from repro.backends import resolve_backend, ReferenceBackend, VectorizedBackend

    backend = resolve_backend("vectorized")
    result = backend.run_task(task)

``resolve_backend`` accepts a backend name (``"reference"`` /
``"vectorized"`` / ``"batched"``), an existing backend instance, or ``None``
(the reference default), and returns a shared instance.  The batched backend
additionally exposes ``run_batch(tasks)``, stacking many compatible tasks
into one block-diagonal kernel invocation (see :mod:`repro.backends.batched`).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from .base import (
    PROTOCOLS,
    STOP_RULES,
    BackendError,
    BackendResult,
    SimulationBackend,
    SimulationTask,
)
from .reference import ReferenceBackend
from .vectorized import VectorizedBackend
from .batched import BatchedVectorizedBackend

__all__ = [
    "BACKEND_NAMES",
    "BackendError",
    "BackendResult",
    "BatchedVectorizedBackend",
    "PROTOCOLS",
    "ReferenceBackend",
    "STOP_RULES",
    "SimulationBackend",
    "SimulationTask",
    "VectorizedBackend",
    "resolve_backend",
]

_BACKEND_CLASSES = {
    ReferenceBackend.name: ReferenceBackend,
    VectorizedBackend.name: VectorizedBackend,
    BatchedVectorizedBackend.name: BatchedVectorizedBackend,
}

#: Names accepted by :func:`resolve_backend` (and the CLI ``--backend`` flag).
BACKEND_NAMES = tuple(_BACKEND_CLASSES)

_instances: Dict[str, SimulationBackend] = {}


def resolve_backend(
    backend: Optional[Union[str, SimulationBackend]] = None,
) -> SimulationBackend:
    """Map a backend spec (name, instance or ``None``) to a backend object."""
    if backend is None:
        backend = ReferenceBackend.name
    if isinstance(backend, SimulationBackend):
        return backend
    try:
        cls = _BACKEND_CLASSES[backend]
    except KeyError:
        raise BackendError(
            f"unknown backend {backend!r}; known backends: {sorted(_BACKEND_CLASSES)}"
        ) from None
    if backend not in _instances:
        _instances[backend] = cls()
    return _instances[backend]

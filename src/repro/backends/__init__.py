"""Pluggable simulation backends.

Public surface::

    from repro.backends import resolve_backend, ReferenceBackend, VectorizedBackend

    backend = resolve_backend("vectorized")
    result = backend.run_task(task)

``resolve_backend`` accepts a backend name (``"reference"`` /
``"vectorized"`` / ``"batched"`` / ``"sharded"`` / ``"ell"``), an existing
backend instance, or ``None`` (the reference default), and returns a shared
instance.  The batched backend additionally exposes ``run_batch(tasks)``,
stacking many compatible tasks into one block-diagonal kernel invocation (see
:mod:`repro.backends.batched`); the sharded backend splits *one* large
instance's round loop across a process pool (see
:mod:`repro.backends.sharded`) and accepts a shard count as a spec suffix —
``resolve_backend("sharded:4")`` runs four segment workers.  The ELL backend
(see :mod:`repro.backends.ell`) runs over a padded fixed-width adjacency
table and accepts a tier suffix: ``"ell"`` auto-selects the numba JIT tier
when numba imports (NumPy otherwise), ``"ell:jit"`` prefers the JIT tier
(silently degrading without numba) and ``"ell:numpy"`` forces the NumPy
tier.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from .base import (
    PROTOCOLS,
    STOP_RULES,
    BackendError,
    BackendResult,
    SimulationBackend,
    SimulationTask,
)
from .reference import ReferenceBackend
from .vectorized import VectorizedBackend
from .batched import BatchedVectorizedBackend
from .sharded import ShardedVectorizedBackend
from .ell import EllAdjacency, EllBackend, jit_available

__all__ = [
    "BACKEND_NAMES",
    "BACKEND_SPECS",
    "BackendError",
    "BackendResult",
    "BatchedVectorizedBackend",
    "EllAdjacency",
    "EllBackend",
    "PROTOCOLS",
    "ReferenceBackend",
    "STOP_RULES",
    "ShardedVectorizedBackend",
    "SimulationBackend",
    "SimulationTask",
    "VectorizedBackend",
    "jit_available",
    "resolve_backend",
]

_BACKEND_CLASSES = {
    ReferenceBackend.name: ReferenceBackend,
    VectorizedBackend.name: VectorizedBackend,
    BatchedVectorizedBackend.name: BatchedVectorizedBackend,
    ShardedVectorizedBackend.name: ShardedVectorizedBackend,
    EllBackend.name: EllBackend,
}

#: Names accepted by :func:`resolve_backend` (and the CLI ``--backend`` flag).
#: ``"sharded"`` additionally accepts a ``:K`` shard-count suffix and
#: ``"ell"`` a tier suffix (``:jit`` / ``:numpy``).
BACKEND_NAMES = tuple(_BACKEND_CLASSES)

#: Every spec form :func:`resolve_backend` accepts, for error messages and
#: interface docs (``sharded:K`` stands for any integer shard count).
BACKEND_SPECS = tuple(
    sorted([*_BACKEND_CLASSES, "sharded:K", "ell:jit", "ell:numpy"])
)

_instances: Dict[str, SimulationBackend] = {}


def _parse_backend_spec(spec: str):
    """Split ``"name"`` / ``"sharded:K"`` / ``"ell:TIER"`` into (class, kwargs)."""
    if not isinstance(spec, str):
        raise BackendError(
            f"backend spec must be a name string, a backend instance or None; "
            f"got {spec!r}"
        )
    name, sep, arg = spec.partition(":")
    try:
        cls = _BACKEND_CLASSES[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {spec!r}; valid backend specs: "
            f"{', '.join(BACKEND_SPECS)}"
        ) from None
    if not sep:
        return cls, {}
    if name == EllBackend.name:
        if arg not in ("jit", "numpy"):
            raise BackendError(
                f"bad ell tier {arg!r} in backend spec {spec!r}; "
                f"expected 'ell', 'ell:jit' or 'ell:numpy'"
            )
        return cls, {"mode": arg}
    if name != ShardedVectorizedBackend.name:
        raise BackendError(
            f"backend {name!r} takes no {arg!r} argument; only 'sharded:K' "
            f"and 'ell:jit' / 'ell:numpy' accept a suffix"
        )
    try:
        shards = int(arg)
    except ValueError:
        raise BackendError(
            f"bad shard count {arg!r} in backend spec {spec!r}; "
            f"expected 'sharded:K' with integer K >= 1"
        ) from None
    if shards < 1:
        raise BackendError(f"shard count must be >= 1, got {shards}")
    return cls, {"shards": shards}


def resolve_backend(
    backend: Optional[Union[str, SimulationBackend]] = None,
) -> SimulationBackend:
    """Map a backend spec (name, instance or ``None``) to a backend object.

    Specs are registry names, plus the parameterized forms ``"sharded:K"``
    (a K-worker sharded backend) and ``"ell:jit"`` / ``"ell:numpy"`` (an ELL
    backend pinned to one kernel tier); each distinct spec maps to one
    shared instance.  Unknown specs raise :class:`BackendError` listing
    every valid form.
    """
    if backend is None:
        backend = ReferenceBackend.name
    if isinstance(backend, SimulationBackend):
        return backend
    if not isinstance(backend, str) or backend not in _instances:
        cls, kwargs = _parse_backend_spec(backend)
        _instances[backend] = cls(**kwargs)
    return _instances[backend]

"""ASCII visualisation of graphs, labelings and executions (incl. Figure 1)."""

from .ascii_graph import render_adjacency, render_label_histogram, render_labeled_layers
from .figure1 import FIGURE1_SOURCE, Figure1Result, figure1_graph, figure1_report
from .trace_render import render_node_timelines, render_round_table, transmit_receive_maps

__all__ = [
    "FIGURE1_SOURCE",
    "Figure1Result",
    "figure1_graph",
    "figure1_report",
    "render_adjacency",
    "render_label_histogram",
    "render_labeled_layers",
    "render_node_timelines",
    "render_round_table",
    "transmit_receive_maps",
]

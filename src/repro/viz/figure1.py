"""Reproduction of the paper's Figure 1 (worked example of λ + Algorithm B).

Figure 1 of the paper shows a small example network whose nodes are annotated
with their 2-bit λ labels, the rounds in which they transmit (curly braces)
and the rounds in which they receive a message (parentheses): µ travels on odd
rounds, "stay" messages on even rounds, and the reader can follow the
dominating set evolving stage by stage.

The figure itself is an image; its exact edge set is not recoverable from the
paper's text.  We therefore reproduce the figure's *content* rather than its
pixels: :func:`figure1_graph` builds a 14-node, five-layer example engineered
to exercise every phenomenon the figure shows — all four label values (``10``,
``11``, ``01`` and ``00``), frontier nodes that are delayed by collisions, and
nodes that stay in the dominating set across stages via a "stay" witness —
and :func:`figure1_report` renders the λ labels and the exact per-node
transmit/receive schedules in the same annotation style.  The accompanying
benchmark (E1) asserts that the rendered schedule matches the Lemma 2.8
characterisation, which is precisely the property Figure 1 illustrates.  The
substitution is documented in DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.labeling import Labeling, lambda_scheme
from ..core.runner import BroadcastOutcome, run_broadcast
from ..graphs.graph import Graph
from .ascii_graph import render_labeled_layers
from .trace_render import transmit_receive_maps

__all__ = ["FIGURE1_SOURCE", "figure1_graph", "Figure1Result", "figure1_report"]

#: The distinguished source node of the example.
FIGURE1_SOURCE = 0


def figure1_graph() -> Graph:
    """The 14-node example network used for the Figure 1 reproduction.

    Layout (BFS layers from the source 0):

    * layer 1: nodes 1, 2, 3 — all hear µ in round 1;
    * layer 2: nodes 4, 5, 6, 7 — node 5 has two transmitting neighbours in
      round 3 (collision) and is only informed in round 5;
    * layer 3: nodes 8, 9, 10, 11 — node 9 collides in round 5 and is informed
      in round 7;
    * layer 4: nodes 12, 13 — informed in round 7.

    The collisions force nodes 2 and 6 to *stay* in the dominating set across
    consecutive stages, so the labeling contains an ``11`` node (a dominator
    that is also a stay witness) and an ``01`` node (a pure stay witness) in
    addition to the ``10`` and ``00`` labels — every label value the paper's
    figure displays.
    """
    edges = [
        # source to layer 1
        (0, 1), (0, 2), (0, 3),
        # layer 1 to layer 2; node 5 has two dominating parents -> collision in round 3
        (1, 4), (1, 5),
        (2, 5), (2, 6),
        (3, 7),
        # layer 2 to layer 3; node 9 has two dominating parents -> collision in round 5
        (4, 8), (4, 9),
        (6, 9), (6, 10),
        (7, 11),
        # layer 3 to layer 4
        (8, 12), (11, 13),
    ]
    return Graph.from_edges(14, edges)


@dataclass
class Figure1Result:
    """Everything the Figure 1 reproduction produces."""

    graph: Graph
    labeling: Labeling
    outcome: BroadcastOutcome
    transmit_rounds: Dict[int, List[int]]
    receive_rounds: Dict[int, List[int]]
    rendering: str

    @property
    def completion_round(self) -> int:
        """Round in which the last node is informed."""
        assert self.outcome.completion_round is not None
        return self.outcome.completion_round


def figure1_report() -> Figure1Result:
    """Label the example with λ, run Algorithm B and render the annotated figure."""
    graph = figure1_graph()
    labeling = lambda_scheme(graph, FIGURE1_SOURCE)
    outcome = run_broadcast(graph, FIGURE1_SOURCE, labeling=labeling)
    transmit, receive = transmit_receive_maps(outcome.trace)
    rendering = render_labeled_layers(
        graph,
        FIGURE1_SOURCE,
        labeling.labels,
        transmit_rounds=transmit,
        receive_rounds=receive,
    )
    return Figure1Result(
        graph=graph,
        labeling=labeling,
        outcome=outcome,
        transmit_rounds=transmit,
        receive_rounds=receive,
        rendering=rendering,
    )

"""Round-by-round rendering of execution traces."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..radio.trace import ExecutionTrace

__all__ = ["render_round_table", "render_node_timelines", "transmit_receive_maps"]


def render_round_table(trace: ExecutionTrace, *, max_rounds: Optional[int] = None) -> str:
    """One line per round: transmitters (with message kinds), receivers, collisions."""
    lines = ["round  transmitters                      receivers            collisions"]
    limit = trace.num_rounds if max_rounds is None else min(max_rounds, trace.num_rounds)
    for record in trace.rounds[:limit]:
        tx = ", ".join(f"{v}:{m.kind}" for v, m in sorted(record.transmissions.items()))
        rx = ", ".join(f"{v}" for v in sorted(record.receptions))
        col = ", ".join(str(v) for v in sorted(record.collisions))
        lines.append(f"{record.round_number:>5}  {tx:<33} {rx:<20} {col}")
    if limit < trace.num_rounds:
        lines.append(f"... ({trace.num_rounds - limit} more rounds)")
    return "\n".join(lines)


def transmit_receive_maps(trace: ExecutionTrace) -> tuple[Dict[int, List[int]], Dict[int, List[int]]]:
    """Per-node transmit-round and receive-round lists (Figure 1's annotations)."""
    transmit: Dict[int, List[int]] = {v: [] for v in range(trace.num_nodes)}
    receive: Dict[int, List[int]] = {v: [] for v in range(trace.num_nodes)}
    for record in trace.rounds:
        for v in record.transmissions:
            transmit[v].append(record.round_number)
        for v in record.receptions:
            receive[v].append(record.round_number)
    return transmit, receive


def render_node_timelines(trace: ExecutionTrace) -> str:
    """One line per node: ``node  {transmit rounds}  (receive rounds)``."""
    transmit, receive = transmit_receive_maps(trace)
    lines = []
    for v in range(trace.num_nodes):
        tr = ",".join(str(r) for r in transmit[v])
        rr = ",".join(str(r) for r in receive[v])
        lines.append(f"node {v:>4}  {{{tr}}}  ({rr})")
    return "\n".join(lines)

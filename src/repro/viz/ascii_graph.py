"""ASCII rendering of graphs, labelings and BFS-layer layouts.

The paper's Figure 1 draws the example network with each node annotated by its
2-bit label, the rounds in which it transmits (curly braces) and the rounds in
which it receives a message (parentheses).  These helpers produce the same
kind of annotation in plain text, layer by layer from the source, for any
graph and any execution trace.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..graphs.graph import Graph
from ..graphs.traversal import bfs_layers

__all__ = ["render_adjacency", "render_labeled_layers", "render_label_histogram"]


def render_adjacency(graph: Graph, labels: Optional[Mapping[int, str]] = None) -> str:
    """One line per node: ``node [label]: sorted neighbours``."""
    lines: List[str] = []
    for v in graph.nodes():
        label = f" [{labels[v]}]" if labels and v in labels else ""
        nbrs = " ".join(str(u) for u in sorted(graph.neighbors(v)))
        lines.append(f"{v:>4}{label}: {nbrs}")
    return "\n".join(lines)


def render_labeled_layers(
    graph: Graph,
    source: int,
    labels: Mapping[int, str],
    *,
    transmit_rounds: Optional[Mapping[int, Sequence[int]]] = None,
    receive_rounds: Optional[Mapping[int, Sequence[int]]] = None,
) -> str:
    """Figure-1 style rendering: one row per BFS layer from the source.

    Each node is printed as ``id:label{transmit rounds}(receive rounds)``,
    matching the annotation convention of the paper's Figure 1.
    """
    layers = bfs_layers(graph, source)
    lines: List[str] = []
    for depth, layer in enumerate(layers):
        cells: List[str] = []
        for v in layer:
            cell = f"{v}:{labels.get(v, '?')}"
            if transmit_rounds is not None:
                tr = ",".join(str(r) for r in transmit_rounds.get(v, []))
                cell += "{" + tr + "}"
            if receive_rounds is not None:
                rr = ",".join(str(r) for r in receive_rounds.get(v, []))
                cell += "(" + rr + ")"
            cells.append(cell)
        prefix = "source" if depth == 0 else f"dist {depth}"
        lines.append(f"{prefix:>8}: " + "   ".join(cells))
    return "\n".join(lines)


def render_label_histogram(labels: Mapping[int, str]) -> str:
    """Histogram of label usage, one line per distinct label."""
    hist: Dict[str, int] = {}
    for lab in labels.values():
        hist[lab] = hist.get(lab, 0) + 1
    width = max((len(k) for k in hist), default=1)
    lines = [f"{k.ljust(width)}  {'#' * v} ({v})" for k, v in sorted(hist.items())]
    return "\n".join(lines)

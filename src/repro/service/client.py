"""The programmatic client: submit grids, query rows, get a ``ResultSet``.

:class:`ServiceClient` is a plain blocking-socket client (no asyncio in the
caller's process) speaking :mod:`repro.service.protocol`.  A submission
streams back ``row`` frames under client-granted credit; the client
reassembles them by the coordinator-assigned submission index into the
stable grid row order, so::

    with ServiceClient("127.0.0.1:7341") as client:
        rows = client.submit(config)

returns a :class:`~repro.store.ResultSet` bit-identical to a local
``run_grid(config)`` against the same store — and a warm grid comes back
with ``client.last_summary["computed"] == 0``, served entirely from the
coordinator's cache.
"""

from __future__ import annotations

import socket
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..store import ResultSet
from ..store.resultset import _row_dict_to_metrics
from .protocol import (
    ProtocolError,
    hello_frame,
    parse_address,
    recv_frame,
    send_frame,
)

__all__ = ["ServiceClient", "ServiceError", "DEFAULT_WINDOW"]

#: Row frames the coordinator may have in flight toward this client before
#: it must wait for more credit.
DEFAULT_WINDOW = 64


class ServiceError(RuntimeError):
    """The coordinator reported a failure (or the stream broke)."""


class ServiceClient:
    """One connection to a sweep coordinator (context-manager friendly).

    One stream (submission or query) runs at a time per connection — open
    several clients for concurrent streams.  ``last_summary`` holds the
    final ``done`` frame of the most recent stream:
    ``{"total", "cached", "computed", "failed"}``.
    """

    def __init__(self, address: str, *, timeout: Optional[float] = 120.0) -> None:
        self.host, self.port = parse_address(address)
        self.last_summary: Dict[str, Any] = {}
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=timeout)
        try:
            send_frame(self._sock, hello_frame("client"))
            welcome = recv_frame(self._sock)
            if welcome is None or welcome.get("type") == "error":
                raise ServiceError(
                    f"coordinator rejected client: "
                    f"{(welcome or {}).get('message', 'connection closed')}")
            if welcome.get("type") != "welcome":
                raise ProtocolError(
                    f"expected welcome, got {welcome.get('type')!r}")
            self.store_rows = int(welcome.get("store_rows", 0))
        except BaseException:
            self._sock.close()
            raise

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._sock is None:
            return
        try:
            send_frame(self._sock, {"type": "bye"})
        except (ConnectionError, OSError):
            pass
        self._sock.close()
        self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def ping(self) -> bool:
        """Round-trip a heartbeat; True iff the coordinator answered."""
        try:
            send_frame(self._sock, {"type": "ping"})
            frame = recv_frame(self._sock)
        except (ConnectionError, OSError, ProtocolError):
            return False
        return frame is not None and frame.get("type") == "pong"

    # ------------------------------------------------------------------ #
    # submissions
    # ------------------------------------------------------------------ #
    def submit(
        self,
        config: Any,
        *,
        backend: Optional[str] = None,
        trace_level: str = "summary",
        strict: bool = True,
        window: int = DEFAULT_WINDOW,
    ) -> ResultSet:
        """Run (or cache-serve) a grid remotely; rows in stable grid order.

        ``config`` is a :class:`~repro.api.GridConfig` or a plain dict of its
        fields.  Raises :class:`ServiceError` when a strict submission hits a
        cell that failed all its attempts (mirroring ``GridExecutionError``
        locally); with ``strict=False`` such cells come back as
        ``status="error:..."`` rows like a local ``--keep-going`` sweep.
        """
        config_doc = asdict(config) if is_dataclass(config) else dict(config)
        send_frame(self._sock, {
            "type": "submit", "config": config_doc, "backend": backend,
            "trace_level": trace_level, "strict": bool(strict),
            "credit": max(1, int(window)),
        })
        plan = self._expect({"plan"})
        total = int(plan["total"])
        self.last_plan = {"total": total, "cached": int(plan.get("cached", 0))}
        docs = self._drain_stream(total, window)
        rows = [None] * total
        for index, doc in docs:
            rows[index] = _row_dict_to_metrics(doc)
        missing = [i for i, row in enumerate(rows) if row is None]
        if missing:
            raise ServiceError(
                f"stream ended with {len(missing)} of {total} rows missing "
                f"(first missing index {missing[0]})")
        return ResultSet(rows)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(
        self,
        *,
        key: Optional[str] = None,
        schemes: Optional[Sequence[str]] = None,
        families: Optional[Sequence[str]] = None,
        sizes: Optional[Sequence[int]] = None,
        status: Optional[str] = None,
        window: int = DEFAULT_WINDOW,
    ) -> ResultSet:
        """Stream stored rows matching a key or column filters.

        ``key`` short-circuits to at most one row (the O(1) indexed path);
        the column filters scan the store coordinator-side.  All filters
        compose conjunctively.
        """
        frame: Dict[str, Any] = {"type": "query",
                                 "credit": max(1, int(window))}
        if key is not None:
            frame["key"] = key
        if schemes:
            frame["schemes"] = list(schemes)
        if families:
            frame["families"] = list(families)
        if sizes:
            frame["sizes"] = [int(s) for s in sizes]
        if status:
            frame["status"] = status
        send_frame(self._sock, frame)
        docs = self._drain_stream(None, window)
        return ResultSet(_row_dict_to_metrics(doc) for _index, doc in docs)

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #
    def aggregate(
        self,
        column: str,
        *,
        by: Optional[Sequence[str]] = None,
        schemes: Optional[Sequence[str]] = None,
        families: Optional[Sequence[str]] = None,
        sizes: Optional[Sequence[int]] = None,
        status: Optional[str] = None,
        ci: bool = False,
    ) -> List[Dict[str, Any]]:
        """Server-side groupby/aggregate: per-group statistics, no row stream.

        The coordinator answers from its store's columns (column-proportional
        reads against a columnar-compacted store) with the same statistics
        kernel the local paths use, so the groups returned here are equal to
        ``aggregate_result_set(filter_result_set(store.rows(), ...), ...)``
        against the same store.  Returns ``[{"by": {...}, "stats": {...}}]``
        in first-seen group order; ``self.last_summary`` reports
        ``{"rows_seen", "groups"}``.
        """
        frame: Dict[str, Any] = {"type": "aggregate", "column": column}
        if by:
            frame["by"] = list(by)
        if schemes:
            frame["schemes"] = list(schemes)
        if families:
            frame["families"] = list(families)
        if sizes:
            frame["sizes"] = [int(s) for s in sizes]
        if status:
            frame["status"] = status
        if ci:
            frame["ci"] = True
        send_frame(self._sock, frame)
        result = self._expect({"aggregate_result"})
        # The wire encoding sorts object keys, scrambling the statistics
        # kernel's field order; restore it so remote answers serialize
        # byte-identically to the local eager/streaming paths.
        order = ("count", "mean", "std", "min", "p05", "median", "p95",
                 "max", "ci95_low", "ci95_high")
        by_cols = list(result.get("by", []))
        groups = []
        for group in result.get("groups", []):
            stats = dict(group.get("stats", {}))
            ordered = {k: stats.pop(k) for k in order if k in stats}
            ordered.update(stats)
            keys = dict(group.get("by", {}))
            named = {k: keys.pop(k) for k in by_cols if k in keys}
            named.update(keys)
            groups.append({**group, "by": named, "stats": ordered})
        self.last_summary = {
            "rows_seen": int(result.get("rows_seen", 0)),
            "groups": len(groups),
        }
        return groups

    # ------------------------------------------------------------------ #
    # stream plumbing
    # ------------------------------------------------------------------ #
    def _expect(self, kinds: "set[str]") -> Dict[str, Any]:
        frame = recv_frame(self._sock)
        if frame is None:
            raise ServiceError("coordinator closed the connection mid-stream")
        if frame.get("type") == "error":
            raise ServiceError(str(frame.get("message", "coordinator error")))
        if frame.get("type") not in kinds:
            raise ProtocolError(
                f"expected one of {sorted(kinds)}, got {frame.get('type')!r}")
        return frame

    def _drain_stream(self, total: Optional[int], window: int) -> List[Any]:
        """Collect ``(index, row_doc)`` pairs until the ``done`` frame.

        Grants credit back in half-window batches so the coordinator's
        in-flight row count stays within ``window`` without a per-row
        credit frame ping-pong.
        """
        window = max(1, int(window))
        refill_at = max(1, window // 2)
        consumed = 0
        docs: List[Any] = []
        while True:
            frame = self._expect({"row", "done"})
            if frame["type"] == "done":
                self.last_summary = {
                    "total": int(frame.get("total", len(docs))),
                    "cached": int(frame.get("cached", 0)),
                    "computed": int(frame.get("computed", 0)),
                    "failed": int(frame.get("failed", 0)),
                }
                return docs
            docs.append((int(frame["index"]), frame["row"]))
            consumed += 1
            if consumed >= refill_at:
                send_frame(self._sock, {"type": "credit", "n": consumed})
                consumed = 0
            if total is not None and len(docs) > total:
                raise ProtocolError(
                    f"coordinator sent more rows ({len(docs)}) than the "
                    f"plan announced ({total})")

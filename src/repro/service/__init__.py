"""``repro.service`` — sweep-as-a-service: coordinator, workers, client.

The first networked subsystem: one shared experiment cache
(:class:`~repro.store.ResultStore`), many concurrent clients, compute
deduplicated by construction.  See the README's "Sweep as a service"
section for the topology; the pieces are

* :mod:`repro.service.protocol` — versioned length-prefixed JSON frames
  (socket-free testable),
* :mod:`repro.service.coordinator` — the asyncio assignment/reduction hub
  (``repro serve``),
* :mod:`repro.service.worker` — cell execution from serializable specs
  (``repro worker``),
* :mod:`repro.service.client` — blocking :class:`ServiceClient` behind
  ``repro submit`` / ``repro query``,
* :mod:`repro.service.harness` — in-process topology for tests/examples.
"""

from .client import DEFAULT_WINDOW, ServiceClient, ServiceError
from .coordinator import Coordinator, WorkerLostError
from .harness import ServiceHarness
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    format_address,
    parse_address,
)
from .worker import Worker, execute_cell

__all__ = [
    "Coordinator",
    "DEFAULT_WINDOW",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceHarness",
    "Worker",
    "WorkerLostError",
    "encode_frame",
    "execute_cell",
    "format_address",
    "parse_address",
]

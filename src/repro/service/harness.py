"""In-process service topology: coordinator + N workers on one background loop.

Tests, the quickstart example and the benchmark all need a full service
(coordinator, workers, a live TCP port) without spawning processes or
shelling out.  :class:`ServiceHarness` runs the whole topology on one
asyncio event loop inside a daemon thread::

    with ServiceHarness(store_dir, workers=2) as svc:
        with ServiceClient(svc.address) as client:
            rows = client.submit(config)

Workers default to ``pool="thread"`` so cells execute *in the host
process* — which is what lets tests monkeypatch a backend and count its
invocations to prove the warm path really computed nothing.  ``kill_worker``
hard-drops one worker connection mid-sweep (the worker-death re-queue path),
and ``add_worker`` joins a fresh one.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Optional

from ..store import ResultStore
from .coordinator import Coordinator
from .worker import Worker

__all__ = ["ServiceHarness"]


class ServiceHarness:
    """A live coordinator + worker fleet on a background event loop."""

    def __init__(
        self,
        store_dir: Any,
        *,
        workers: int = 2,
        backend: Optional[str] = None,
        jobs: int = 1,
        retries: int = 1,
        pool: str = "thread",
        lease_seconds: float = 60.0,
        heartbeat_grace: float = 30.0,
        max_attempts: int = 3,
        host: str = "127.0.0.1",
    ) -> None:
        self.store_dir = str(store_dir)
        self.worker_count = int(workers)
        self.backend = backend
        self.jobs = int(jobs)
        self.retries = int(retries)
        self.pool = pool
        self.lease_seconds = float(lease_seconds)
        self.heartbeat_grace = float(heartbeat_grace)
        self.max_attempts = int(max_attempts)
        self.host = host
        self.address: str = ""
        self.coordinator: Optional[Coordinator] = None
        self.workers: List[Worker] = []
        self._worker_tasks: List[asyncio.Task] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServiceHarness":
        assert self._thread is None, "harness already started"
        self._thread = threading.Thread(target=self._thread_main,
                                        name="service-harness", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service harness failed to start within 30s")
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise RuntimeError(
                f"service harness failed to start: {self._startup_error!r}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServiceHarness":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # fleet manipulation (tests)
    # ------------------------------------------------------------------ #
    def kill_worker(self, index: int = 0) -> None:
        """Hard-drop one worker mid-flight (exercises lease re-queue)."""
        assert self._loop is not None, "harness not started"

        def _kill() -> None:
            if 0 <= index < len(self._worker_tasks):
                self._worker_tasks[index].cancel()

        self._loop.call_soon_threadsafe(_kill)

    def add_worker(self, **overrides: Any) -> None:
        """Join one more worker to the running coordinator."""
        assert self._loop is not None, "harness not started"
        done = threading.Event()

        def _add() -> None:
            worker = Worker(
                self.address,
                backend=overrides.get("backend", self.backend),
                jobs=overrides.get("jobs", self.jobs),
                retries=overrides.get("retries", self.retries),
                pool=overrides.get("pool", self.pool),
                name=overrides.get("name", f"extra-{len(self.workers)}"),
            )
            self.workers.append(worker)
            self._worker_tasks.append(asyncio.ensure_future(worker.run()))
            done.set()

        self._loop.call_soon_threadsafe(_add)
        done.wait(timeout=10)

    def describe(self) -> Dict[str, Any]:
        """Coordinator counters, fetched thread-safely."""
        assert self._loop is not None and self.coordinator is not None
        future: "asyncio.Future[Dict[str, Any]]" = asyncio.run_coroutine_threadsafe(
            self._describe(), self._loop)  # type: ignore[assignment]
        return future.result(timeout=10)

    async def _describe(self) -> Dict[str, Any]:
        assert self.coordinator is not None
        return self.coordinator.describe()

    # ------------------------------------------------------------------ #
    # the background loop
    # ------------------------------------------------------------------ #
    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures only
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        store = ResultStore(self.store_dir)
        self.coordinator = Coordinator(
            store, host=self.host, port=0,
            lease_seconds=self.lease_seconds,
            heartbeat_grace=self.heartbeat_grace,
            max_attempts=self.max_attempts,
        )
        try:
            await self.coordinator.start()
            self.address = self.coordinator.address
            self.workers = [
                Worker(self.address, backend=self.backend, jobs=self.jobs,
                       retries=self.retries, pool=self.pool,
                       name=f"harness-{i}")
                for i in range(self.worker_count)
            ]
            self._worker_tasks = [
                asyncio.ensure_future(worker.run()) for worker in self.workers
            ]
            self._ready.set()
            await self._stop.wait()
        finally:
            for task in self._worker_tasks:
                task.cancel()
            for task in self._worker_tasks:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            await self.coordinator.stop()
            store.close()

"""The asyncio sweep coordinator: one shared experiment cache, many peers.

The coordinator owns exactly two things — **assignment** and **reduction** —
and delegates every heavy kernel to workers (the ELLADA-style decomposition:
the center never simulates anything):

* A client ``submit`` is expanded into grid work units with
  :func:`repro.api.grid.grid_row_specs`, and each unit's content-addressed
  key is computed with :func:`repro.api.grid.grid_unit_key` — *the same
  functions the local ``run_grid`` path uses*, so local and remote sweeps
  share cache keys bit for bit.
* Units whose key the :class:`~repro.store.ResultStore` already holds are
  served straight from the indexed store (one O(1) seek per row, fetched at
  send time — never buffered per client).
* The rest become :class:`CellTask`\\ s, deduplicated by key across
  concurrent submissions, and fan out to connected workers under
  **lease/heartbeat tracking**: each dispatched cell has a lease deadline, a
  worker that stops heartbeating is dropped, and cells of a dead worker (or
  an expired lease) are re-queued — up to ``max_attempts`` tries, mirroring
  the one-shot per-cell retry the grid executor applies locally
  (``iter_grid(retries=...)``).
* Completed ``(key, row)`` docs are appended to the store by the coordinator
  alone (the store's single writer; workers never touch the directory) and
  forwarded to every submission waiting on that key.

Backpressure is credit-based on both legs (see
:mod:`repro.service.protocol`): workers receive at most ``hello.slots``
outstanding cells, and a client receives row frames only up to the credit it
has granted — since rows are re-read from the store at send time, a slow
client costs the coordinator a bounded queue of integer indices, not a queue
of row payloads.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Set, Tuple

from ..store import ResultStore
from ..store.resultset import _row_dict_to_metrics
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    check_hello,
    format_address,
    read_frame,
    write_frame,
)

__all__ = ["Coordinator", "WorkerLostError", "DEFAULT_CLIENT_CREDIT"]

#: Row-frame window a client is assumed to have granted when its submit frame
#: does not say (the ServiceClient always sends an explicit window).
DEFAULT_CLIENT_CREDIT = 64


class WorkerLostError(RuntimeError):
    """A cell's every attempt died with its worker (lease expiry / disconnect)."""


class _Credit:
    """A counting gate: ``take()`` waits until ``add()`` has granted credit."""

    def __init__(self, initial: int = 0) -> None:
        self._count = int(initial)
        self._event = asyncio.Event()
        if self._count > 0:
            self._event.set()

    def add(self, n: int) -> None:
        if n <= 0:
            return
        self._count += n
        self._event.set()

    async def take(self) -> None:
        while self._count <= 0:
            self._event.clear()
            await self._event.wait()
        self._count -= 1


class CellTask:
    """One uncached work unit, deduplicated by key across submissions."""

    __slots__ = ("key", "config_doc", "unit", "backend", "trace_level",
                 "attempts", "state", "waiters", "worker_id", "deadline")

    def __init__(self, key: str, config_doc: Dict[str, Any], unit: Tuple,
                 backend: Optional[str], trace_level: str) -> None:
        self.key = key
        self.config_doc = config_doc
        self.unit = unit
        self.backend = backend
        self.trace_level = trace_level
        self.attempts = 0                      # completed tries (runs + lost leases)
        self.state = "pending"                 # pending | leased | done | failed
        self.waiters: List[Tuple["_Submission", int]] = []
        self.worker_id: Optional[int] = None
        self.deadline: float = 0.0


class _Submission:
    """One client submission: unit order, per-index readiness, counters."""

    def __init__(self, total: int, strict: bool) -> None:
        self.total = total
        self.strict = strict
        self.dead = False
        #: Items: ("cached", index, key) | ("row", index, key, row_doc)
        #: | ("failed", index, key, row_doc).  Bounded by ``total`` entries of
        #: a few machine words each — row payloads are never queued.
        self.ready: "asyncio.Queue[Tuple]" = asyncio.Queue()


class _WorkerConn:
    """Connection state of one worker: slots, leases, liveness."""

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter,
                 slots: int, name: str) -> None:
        self.id = conn_id
        self.writer = writer
        self.wlock = asyncio.Lock()
        self.slots = max(1, int(slots))
        self.busy = 0
        self.name = name
        self.last_seen = time.monotonic()
        self.leases: Dict[int, CellTask] = {}  # dispatch id -> cell


class _ClientConn:
    """Connection state of one client: credit gate + the active stream task."""

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter) -> None:
        self.id = conn_id
        self.writer = writer
        self.wlock = asyncio.Lock()
        self.credit = _Credit(0)
        self.stream_task: Optional[asyncio.Task] = None


class Coordinator:
    """The asyncio sweep service (see module docstring for the architecture).

    Typical embedded use (the CLI ``repro serve`` wraps exactly this)::

        store = ResultStore("sweeps/shared")
        coordinator = Coordinator(store, host="127.0.0.1", port=7341)
        await coordinator.start()          # binds; port 0 picks a free port
        await coordinator.serve_forever()  # or: keep the loop running

    ``lease_seconds`` bounds how long one dispatched cell may stay
    unanswered before it is re-queued; ``heartbeat_grace`` bounds worker
    silence (any frame refreshes liveness; idle workers send pings);
    ``max_attempts`` is the total tries a cell gets across re-queues before
    it is reported failed to its waiters.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = 120.0,
        heartbeat_grace: float = 45.0,
        max_attempts: int = 3,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store
        self.host = host
        self.port = port
        self.lease_seconds = float(lease_seconds)
        self.heartbeat_grace = float(heartbeat_grace)
        self.max_attempts = int(max_attempts)
        self.stats = {
            "submissions": 0, "queries": 0, "aggregates": 0, "served_cached": 0,
            "computed": 0, "requeued": 0, "failed_cells": 0,
            "workers_seen": 0, "workers_lost": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._ids = itertools.count(1)
        self._dispatch_ids = itertools.count(1)
        self._workers: Dict[int, _WorkerConn] = {}
        self._cells: Dict[str, CellTask] = {}
        self._pending: "deque[CellTask]" = deque()
        self._kick = asyncio.Event()
        self._tasks: List[asyncio.Task] = []
        self._conn_tasks: Set[asyncio.Task] = set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start serving; ``self.address`` is valid afterwards."""
        self._server = await asyncio.start_server(self._handle_connection,
                                                  self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._tasks = [
            asyncio.create_task(self._dispatcher(), name="svc-dispatcher"),
            asyncio.create_task(self._reaper(), name="svc-reaper"),
        ]

    @property
    def address(self) -> str:
        """The bound ``HOST:PORT``."""
        return format_address(self.host, self.port)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the server, every connection and the background tasks."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._tasks + list(self._conn_tasks):
            task.cancel()
        for task in self._tasks + list(self._conn_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        self._conn_tasks.clear()

    def describe(self) -> Dict[str, Any]:
        """Live counters: connected workers, queue depth, cumulative stats."""
        return {
            "address": self.address,
            "workers": len(self._workers),
            "pending_cells": sum(1 for c in self._pending if c.state == "pending"),
            "leased_cells": sum(len(w.leases) for w in self._workers.values()),
            "store_rows": len(self.store),
            **self.stats,
        }

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            try:
                hello = check_hello(await read_frame(reader))
            except ProtocolError as exc:
                try:
                    await write_frame(writer, {"type": "error", "message": str(exc)})
                except (ConnectionError, OSError):
                    pass
                return
            await write_frame(writer, {
                "type": "welcome", "version": PROTOCOL_VERSION,
                "store_rows": len(self.store),
            })
            if hello["role"] == "worker":
                await self._worker_loop(reader, writer, hello)
            else:
                await self._client_loop(reader, writer)
        except (ConnectionError, ProtocolError, asyncio.IncompleteReadError, OSError):
            pass  # a dropped peer is normal operation; leases are re-queued below
        except asyncio.CancelledError:
            pass  # coordinator shutdown cancels connection tasks mid-read
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    async def _worker_loop(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           hello: Dict[str, Any]) -> None:
        conn = _WorkerConn(next(self._ids), writer,
                           slots=hello.get("slots", 1),
                           name=str(hello.get("name", "")) or f"worker-{next(self._ids)}")
        self._workers[conn.id] = conn
        self.stats["workers_seen"] += 1
        self._kick.set()
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                conn.last_seen = time.monotonic()
                kind = frame["type"]
                if kind == "row":
                    self._on_worker_row(conn, frame)
                elif kind == "error":
                    self._on_worker_error(conn, frame)
                elif kind == "ping":
                    async with conn.wlock:
                        await write_frame(writer, {"type": "pong"})
                elif kind == "bye":
                    break
        finally:
            self._workers.pop(conn.id, None)
            if conn.leases:
                self.stats["workers_lost"] += 1
            for cell in list(conn.leases.values()):
                self._requeue_or_fail(
                    cell, f"worker {conn.name!r} disconnected mid-cell")
            conn.leases.clear()
            self._kick.set()

    def _on_worker_row(self, conn: _WorkerConn, frame: Dict[str, Any]) -> None:
        cell = conn.leases.pop(int(frame.get("id", 0)), None)
        conn.busy = max(0, conn.busy - 1)
        self._kick.set()
        if cell is None or cell.state != "leased":
            return  # late row for a lease already re-queued elsewhere
        row_doc = frame.get("row")
        if not isinstance(row_doc, dict):
            self._requeue_or_fail(cell, "worker returned a malformed row")
            return
        if row_doc.get("status", "ok") == "ok":
            self._complete_cell(cell, row_doc)
        else:
            # The worker already retried locally (its per-cell retries knob);
            # a still-failing cell consumes one coordinator attempt and is
            # re-queued — a different worker may lack the fault (e.g. OOM).
            cell.attempts += 1
            if cell.attempts < self.max_attempts:
                self._requeue(cell)
            else:
                self._fail_cell(cell, row_doc)

    def _on_worker_error(self, conn: _WorkerConn, frame: Dict[str, Any]) -> None:
        cell = conn.leases.pop(int(frame.get("id", 0)), None)
        conn.busy = max(0, conn.busy - 1)
        self._kick.set()
        if cell is None or cell.state != "leased":
            return
        self._requeue_or_fail(
            cell, str(frame.get("message", "worker reported an error")))

    def _complete_cell(self, cell: CellTask, row_doc: Dict[str, Any]) -> None:
        cell.state = "done"
        if cell.key not in self.store:
            # The single-writer append path: only the coordinator process
            # ever writes this store, so appends never contend.
            self.store.put(cell.key, _row_dict_to_metrics(row_doc))
        self.stats["computed"] += 1
        self._cells.pop(cell.key, None)
        for sub, index in cell.waiters:
            if not sub.dead:
                sub.ready.put_nowait(("row", index, cell.key, row_doc))
        cell.waiters.clear()

    def _fail_cell(self, cell: CellTask, row_doc: Dict[str, Any]) -> None:
        cell.state = "failed"
        self.stats["failed_cells"] += 1
        self._cells.pop(cell.key, None)  # a later submission retries it fresh
        for sub, index in cell.waiters:
            if not sub.dead:
                sub.ready.put_nowait(("failed", index, cell.key, row_doc))
        cell.waiters.clear()

    def _requeue(self, cell: CellTask) -> None:
        cell.state = "pending"
        cell.worker_id = None
        self._pending.append(cell)
        self.stats["requeued"] += 1
        self._kick.set()

    def _requeue_or_fail(self, cell: CellTask, reason: str) -> None:
        """Shared re-queue path for lease expiry, worker death and errors.

        Every lost lease consumes one of the cell's ``max_attempts`` tries —
        the same one-shot-retry accounting ``iter_grid(retries=1)`` applies
        to transient pool-worker crashes locally — so a cell that kills every
        worker it lands on terminates as a failed row instead of looping.
        """
        if cell.state != "leased":
            return
        cell.attempts += 1
        if cell.attempts < self.max_attempts:
            self._requeue(cell)
        else:
            self._fail_cell(cell, _lost_row_doc(cell, reason))

    # ------------------------------------------------------------------ #
    # dispatch + leases
    # ------------------------------------------------------------------ #
    async def _dispatcher(self) -> None:
        """Assign pending cells to workers with free slots (credit-gated)."""
        while True:
            await self._kick.wait()
            self._kick.clear()
            progress = True
            while self._pending and progress:
                progress = False
                for conn in list(self._workers.values()):
                    while self._pending and conn.busy < conn.slots:
                        cell = self._pending.popleft()
                        if cell.state != "pending":
                            continue  # stale queue entry (completed elsewhere)
                        if not cell.waiters:
                            # Every waiting submission died; the result would
                            # only warm the cache — still worth computing? No:
                            # drop it, a live submission will re-enqueue.
                            cell.state = "failed"
                            self._cells.pop(cell.key, None)
                            continue
                        await self._dispatch(conn, cell)
                        progress = True
                    if not self._pending:
                        break

    async def _dispatch(self, conn: _WorkerConn, cell: CellTask) -> None:
        dispatch_id = next(self._dispatch_ids)
        cell.state = "leased"
        cell.worker_id = conn.id
        cell.deadline = time.monotonic() + self.lease_seconds
        conn.leases[dispatch_id] = cell
        conn.busy += 1
        try:
            async with conn.wlock:
                await write_frame(conn.writer, {
                    "type": "cell", "id": dispatch_id, "key": cell.key,
                    "config": cell.config_doc, "unit": list(cell.unit),
                    "backend": cell.backend, "trace_level": cell.trace_level,
                })
        except (ConnectionError, OSError):
            conn.leases.pop(dispatch_id, None)
            conn.busy = max(0, conn.busy - 1)
            self._requeue_or_fail(cell, f"worker {conn.name!r} send failed")

    async def _reaper(self) -> None:
        """Re-queue expired leases; drop workers that stopped heartbeating."""
        interval = max(0.05, min(self.lease_seconds, self.heartbeat_grace) / 4)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for conn in list(self._workers.values()):
                if now - conn.last_seen > self.heartbeat_grace:
                    # Silent worker: closing the transport unwinds its loop,
                    # whose finally block re-queues every lease it held.
                    conn.writer.close()
                    continue
                for dispatch_id, cell in list(conn.leases.items()):
                    if cell.deadline <= now:
                        conn.leases.pop(dispatch_id, None)
                        conn.busy = max(0, conn.busy - 1)
                        self._requeue_or_fail(
                            cell, f"lease expired after {self.lease_seconds}s "
                                  f"on worker {conn.name!r}")

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    async def _client_loop(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        conn = _ClientConn(next(self._ids), writer)
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                kind = frame["type"]
                if kind == "credit":
                    conn.credit.add(int(frame.get("n", 0)))
                elif kind == "ping":
                    async with conn.wlock:
                        await write_frame(writer, {"type": "pong"})
                elif kind in ("submit", "query", "aggregate"):
                    if conn.stream_task is not None and not conn.stream_task.done():
                        async with conn.wlock:
                            await write_frame(writer, {
                                "type": "error",
                                "message": "a stream is already active on this "
                                           "connection; open another connection",
                            })
                        continue
                    handler = {
                        "submit": self._submission_task,
                        "query": self._query_task,
                        "aggregate": self._aggregate_task,
                    }[kind]
                    conn.stream_task = asyncio.create_task(handler(conn, frame))
                elif kind == "bye":
                    break
        finally:
            if conn.stream_task is not None and not conn.stream_task.done():
                conn.stream_task.cancel()
                try:
                    await conn.stream_task
                except (asyncio.CancelledError, Exception):
                    pass

    async def _submission_task(self, conn: _ClientConn,
                               frame: Dict[str, Any]) -> None:
        from ..api.grid import (  # local import: service must not import the
            GridConfig,           # api eagerly at module load (CLI startup)
            _validate_schemes,
            grid_row_specs,
            grid_unit_key,
        )

        conn.credit.add(int(frame.get("credit", DEFAULT_CLIENT_CREDIT)))
        strict = bool(frame.get("strict", True))
        backend = frame.get("backend")
        trace_level = str(frame.get("trace_level", "summary"))
        try:
            config = GridConfig(**frame.get("config", {}))
            _validate_schemes(config)
            units = grid_row_specs(config)
            keys = [grid_unit_key(config, unit, backend=backend,
                                  trace_level=trace_level) for unit in units]
        except (TypeError, ValueError) as exc:
            async with conn.wlock:
                await write_frame(conn.writer, {
                    "type": "error", "message": f"invalid submission: {exc}"})
            return
        self.stats["submissions"] += 1
        config_doc = asdict(config)
        sub = _Submission(total=len(units), strict=strict)
        cached_count = 0
        for index, (unit, key) in enumerate(zip(units, keys)):
            if key in self.store:
                cached_count += 1
                sub.ready.put_nowait(("cached", index, key))
            else:
                self._enqueue_unit(sub, index, key, config_doc, unit,
                                   backend, trace_level)
        async with conn.wlock:
            await write_frame(conn.writer, {
                "type": "plan", "total": len(units), "cached": cached_count,
            })
        self._kick.set()
        try:
            await self._stream_submission(conn, sub, cached_count)
        except (ConnectionError, OSError):
            pass
        finally:
            sub.dead = True

    def _enqueue_unit(self, sub: _Submission, index: int, key: str,
                      config_doc: Dict[str, Any], unit: Tuple,
                      backend: Optional[str], trace_level: str) -> None:
        cell = self._cells.get(key)
        if cell is None:
            cell = CellTask(key, config_doc, unit, backend, trace_level)
            self._cells[key] = cell
            self._pending.append(cell)
        cell.waiters.append((sub, index))

    async def _stream_submission(self, conn: _ClientConn, sub: _Submission,
                                 cached_count: int) -> None:
        served = computed = failed = 0
        while served + computed + failed < sub.total:
            item = await sub.ready.get()
            kind, index, key = item[0], item[1], item[2]
            await conn.credit.take()
            if kind == "cached":
                row = self.store.get(key)
                if row is None:
                    async with conn.wlock:
                        await write_frame(conn.writer, {
                            "type": "error", "index": index, "key": key,
                            "message": f"cached row {key} vanished from the "
                                       f"store mid-submission",
                        })
                    return
                row_doc = row.as_dict()
                served += 1
                self.stats["served_cached"] += 1
            elif kind == "row":
                row_doc = item[3]
                computed += 1
            else:  # "failed"
                row_doc = item[3]
                if sub.strict:
                    async with conn.wlock:
                        await write_frame(conn.writer, {
                            "type": "error", "index": index, "key": key,
                            "message": f"grid cell failed after "
                                       f"{self.max_attempts} attempts: "
                                       f"{row_doc.get('status', 'error')}",
                        })
                    return
                failed += 1
            async with conn.wlock:
                await write_frame(conn.writer, {
                    "type": "row", "index": index, "key": key,
                    "row": row_doc, "cached": kind == "cached",
                })
        async with conn.wlock:
            await write_frame(conn.writer, {
                "type": "done", "total": sub.total, "cached": served,
                "computed": computed, "failed": failed,
            })

    async def _query_task(self, conn: _ClientConn, frame: Dict[str, Any]) -> None:
        conn.credit.add(int(frame.get("credit", DEFAULT_CLIENT_CREDIT)))
        self.stats["queries"] += 1
        key = frame.get("key")
        keys = [key] if key else self.store.keys()
        sent = 0
        try:
            for k in keys:
                row = self.store.get(k)
                if row is None:
                    continue
                doc = row.as_dict()
                if not _match_filters(doc, frame):
                    continue
                await conn.credit.take()
                async with conn.wlock:
                    await write_frame(conn.writer, {
                        "type": "row", "index": sent, "key": k,
                        "row": doc, "cached": True,
                    })
                sent += 1
            async with conn.wlock:
                await write_frame(conn.writer, {
                    "type": "done", "total": sent, "cached": sent,
                    "computed": 0, "failed": 0,
                })
        except (ConnectionError, OSError):
            pass

    async def _aggregate_task(self, conn: _ClientConn,
                              frame: Dict[str, Any]) -> None:
        """Answer a server-side groupby/aggregate from the store's columns.

        The heavy lifting is column-proportional: against a columnar-compacted
        store, only the filter columns, the grouping columns and the
        aggregated column are read — the client receives per-group statistics
        instead of a row stream.
        """
        from ..analysis.stream import (  # local: keep service import light
            aggregate_result_set,
            filter_result_set,
            resolve_group_columns,
        )

        self.stats["aggregates"] += 1
        try:
            column = frame["column"]
            by = resolve_group_columns(frame.get("by"))
            rows = filter_result_set(
                self.store.rows(),
                schemes=frame.get("schemes"),
                families=frame.get("families"),
                sizes=frame.get("sizes"),
                status=frame.get("status"),
            )
            groups = aggregate_result_set(rows, column, by,
                                          ci=bool(frame.get("ci", False)))
        except (KeyError, TypeError, ValueError) as exc:
            try:
                async with conn.wlock:
                    await write_frame(conn.writer, {
                        "type": "error",
                        "message": f"invalid aggregate: {exc}",
                    })
            except (ConnectionError, OSError):
                pass
            return
        try:
            async with conn.wlock:
                await write_frame(conn.writer, {
                    "type": "aggregate_result",
                    "column": column,
                    "by": list(by),
                    "rows_seen": len(rows),
                    "groups": groups,
                })
        except (ConnectionError, OSError):
            pass


def _match_filters(doc: Dict[str, Any], frame: Dict[str, Any]) -> bool:
    from ..analysis.stream import status_matches  # local: keep imports light

    schemes = frame.get("schemes")
    if schemes and doc.get("scheme") not in schemes:
        return False
    families = frame.get("families")
    if families and doc.get("family") not in families:
        return False
    sizes = frame.get("sizes")
    if sizes and doc.get("n") not in sizes:
        return False
    status = frame.get("status")
    if status and not status_matches(doc.get("status", ""), status):
        # Prefix-class semantics: --status error matches error:ValueError
        # while a full tag (or "ok") still matches exactly.
        return False
    return True


def _lost_row_doc(cell: CellTask, reason: str) -> Dict[str, Any]:
    """The error-status row reported when a cell's every attempt was lost."""
    from ..api.grid import _failure_row  # local: avoids import cycle at load

    family, size, _rep, fault_spec, clock_spec, scheme = cell.unit
    return _failure_row(scheme, family, size, fault_spec, clock_spec,
                        WorkerLostError(reason)).as_dict()

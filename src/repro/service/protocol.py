"""The sweep service's wire protocol: versioned, length-prefixed JSON frames.

One frame is a 4-byte big-endian length header followed by that many bytes of
UTF-8 JSON encoding a single object with a ``"type"`` field.  Both ends of
every connection — coordinator ↔ worker and coordinator ↔ client — speak the
same vocabulary, so this module is the single source of truth for frame
shapes and is unit-testable without opening a socket
(:func:`encode_frame` / :class:`FrameDecoder` are pure byte transforms).

Frame vocabulary (version 2)::

    type      direction                payload fields
    --------  -----------------------  -------------------------------------
    hello     peer -> coordinator      version, role ("worker"|"client"),
                                       [slots, backend, name]   (workers)
    welcome   coordinator -> peer      version, store_rows
    submit    client -> coordinator    config (GridConfig dict), backend,
                                       trace_level, strict, credit
    plan      coordinator -> client    total, cached
    credit    client -> coordinator    n   (grants n more row frames)
    cell      coordinator -> worker    id, key, config, unit, backend,
                                       trace_level
    row       worker -> coordinator    id, key, row          (one result)
              coordinator -> client    index, key, row, cached
    error     either direction         message, [index, key, spec]
    done      coordinator -> client    total, cached, computed, failed
    query     client -> coordinator    [key] or [schemes, families, sizes,
                                       status]
    aggregate client -> coordinator    column, [by, schemes, families,
                                       sizes, status, ci]
    aggregate_result
              coordinator -> client    column, by, rows_seen, groups
    ping      peer -> coordinator      heartbeat (any frame refreshes
    pong      coordinator -> peer      liveness; ping works when idle)
    bye       either direction         orderly goodbye

Flow control is credit-based in both legs: a worker's ``hello.slots``
advertises how many cells it can hold (each ``row``/``error`` it returns
frees one slot), and a client's ``submit.credit`` / ``credit`` frames bound
how many ``row`` frames the coordinator may have in flight toward it — a
slow client therefore throttles its own stream instead of ballooning
coordinator memory (rows are re-read from the store at send time, never
buffered per client).

The async and sync I/O helpers (:func:`read_frame` / :func:`write_frame` and
:func:`recv_frame` / :func:`send_frame`) share :func:`encode_frame` and the
header format, so the coordinator (asyncio) and the plain-socket client and
tests interoperate by construction.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "FRAME_TYPES",
    "ProtocolError",
    "encode_frame",
    "FrameDecoder",
    "hello_frame",
    "check_hello",
    "parse_address",
    "format_address",
    "read_frame",
    "write_frame",
    "recv_frame",
    "send_frame",
]

#: Bumped whenever a frame's meaning changes; ``hello``/``welcome`` carry it
#: and both ends reject a mismatch up front instead of mis-parsing later.
#: Version 2 added the ``aggregate``/``aggregate_result`` pair (server-side
#: groupby/aggregate answered from store columns).
PROTOCOL_VERSION = 2

#: Hard upper bound on one frame's JSON body.  Far above any legitimate frame
#: (a row is ~400 bytes; a submit carries one GridConfig): its job is to turn
#: a corrupt / hostile length header into a clean error instead of an
#: attempted multi-gigabyte allocation.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")

FRAME_TYPES = frozenset({
    "hello", "welcome", "submit", "plan", "credit", "cell", "row",
    "error", "done", "query", "aggregate", "aggregate_result",
    "ping", "pong", "bye",
})

#: Roles a hello frame may declare.
ROLES = frozenset({"worker", "client"})


class ProtocolError(RuntimeError):
    """A malformed, oversized or version-incompatible frame."""


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialize one frame dict to its length-prefixed wire form."""
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be a dict, got {type(frame).__name__}")
    kind = frame.get("type")
    if kind not in FRAME_TYPES:
        raise ProtocolError(
            f"unknown frame type {kind!r}; known: {sorted(FRAME_TYPES)}"
        )
    data = json.dumps(frame, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(data)) + data


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte chunks, get whole frames out.

    Handles frames split across any number of ``feed`` calls and multiple
    frames arriving in one chunk — the two realities of a TCP stream.  Raises
    :class:`ProtocolError` on an oversized length header or a body that is
    not a JSON object with a known ``type``; the decoder is unusable after an
    error (the stream framing is lost).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Consume ``data``; return every frame it completes, in order."""
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame header announces {length} bytes "
                    f"(> MAX_FRAME_BYTES {MAX_FRAME_BYTES})"
                )
            if len(self._buffer) < _HEADER.size + length:
                return frames
            body = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:_HEADER.size + length]
            frames.append(_parse_body(body))


def _parse_body(body: bytes) -> Dict[str, Any]:
    try:
        frame = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(frame, dict) or frame.get("type") not in FRAME_TYPES:
        raise ProtocolError(
            f"frame body must be an object with a known 'type', got "
            f"{frame.get('type') if isinstance(frame, dict) else type(frame).__name__!r}"
        )
    return frame


def hello_frame(role: str, **fields: Any) -> Dict[str, Any]:
    """The connection-opening frame a worker or client sends first."""
    if role not in ROLES:
        raise ProtocolError(f"unknown role {role!r}; known: {sorted(ROLES)}")
    frame = {"type": "hello", "version": PROTOCOL_VERSION, "role": role}
    frame.update(fields)
    return frame


def check_hello(frame: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Validate a received hello frame; returns it (raises on any mismatch)."""
    if frame is None:
        raise ProtocolError("connection closed before a hello frame arrived")
    if frame.get("type") != "hello":
        raise ProtocolError(f"expected a hello frame, got {frame.get('type')!r}")
    version = frame.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this end speaks {PROTOCOL_VERSION}"
        )
    if frame.get("role") not in ROLES:
        raise ProtocolError(f"hello with unknown role {frame.get('role')!r}")
    return frame


def parse_address(text: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``PORT``, meaning 127.0.0.1) into a pair."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", text
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid service address {text!r}: expected HOST:PORT") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid port {port} in service address {text!r}")
    return host, port


def format_address(host: str, port: int) -> str:
    """The canonical ``HOST:PORT`` rendering of an address pair."""
    return f"{host}:{port}"


# --------------------------------------------------------------------------- #
# asyncio transport (coordinator + worker)
# --------------------------------------------------------------------------- #
async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection dropped mid frame header") from None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header announces {length} bytes "
            f"(> MAX_FRAME_BYTES {MAX_FRAME_BYTES})"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection dropped mid frame body") from None
    return _parse_body(body)


async def write_frame(writer: asyncio.StreamWriter, frame: Dict[str, Any]) -> None:
    """Write one frame and drain (the await is the TCP backpressure point)."""
    writer.write(encode_frame(frame))
    await writer.drain()


# --------------------------------------------------------------------------- #
# blocking-socket transport (ServiceClient, CLI, tests)
# --------------------------------------------------------------------------- #
def send_frame(sock: socket.socket, frame: Dict[str, Any]) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(frame))


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header announces {length} bytes "
            f"(> MAX_FRAME_BYTES {MAX_FRAME_BYTES})"
        )
    body = _recv_exactly(sock, length, at_boundary=False)
    if body is None:  # pragma: no cover - _recv_exactly raises instead
        raise ProtocolError("connection dropped mid frame body")
    return _parse_body(body)


def _recv_exactly(sock: socket.socket, count: int, *, at_boundary: bool) -> Optional[bytes]:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if at_boundary and not chunks:
                return None
            raise ProtocolError(
                "connection dropped mid frame "
                + ("header" if at_boundary else "body")
            )
        chunks.extend(chunk)
    return bytes(chunks)

"""The sweep worker: rematerialize cells from specs, ship ``(key, row)`` back.

A worker owns the heavy kernels and nothing else.  It connects to a
coordinator, advertises ``slots`` (its cell-level concurrency) in its hello
frame, and then answers ``cell`` frames: each carries a serialized
``GridConfig`` plus one :data:`~repro.api.grid.UnitSpec`, exactly the plain
picklable payload the local process-pool path ships (the PR 2 pattern) — the
worker rebuilds the config, materializes the instance and runs the unit
through any existing backend via :func:`repro.api.grid._run_units`.

Cells always execute ``strict=False`` with the grid's one-shot per-cell
retry (``retries``), so a failing scenario comes back as an honest
``status="error:..."`` *row* frame; ``error`` frames are reserved for the
worker itself breaking (e.g. a crashed process pool, which is rebuilt before
the next cell).  The returned row dict rides a ``row`` frame keyed by the
coordinator-assigned dispatch id; the coordinator stores it under the
content-addressed key it computed — workers never see the store directory.

Concurrency model: the asyncio loop multiplexes the socket while cells run
on an executor — a ``ProcessPoolExecutor`` for the CLI (``repro worker
--jobs N``), or threads (``pool="thread"``) when embedding workers
in-process (tests, the quickstart example) so backend invocations stay
observable in the host process.  A heartbeat ping rides the socket whenever
it has been idle, keeping the coordinator's liveness tracking fed.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from .protocol import (
    ProtocolError,
    check_hello,
    hello_frame,
    read_frame,
    write_frame,
)

__all__ = ["Worker", "execute_cell"]


def execute_cell(
    config_doc: Dict[str, Any],
    unit: Tuple,
    backend: Optional[str],
    trace_level: str,
    retries: int,
) -> Dict[str, Any]:
    """Run one grid cell from its serializable spec; returns the row dict.

    Module-level so a ``ProcessPoolExecutor`` can pickle it; shared by the
    thread pool path.  ``strict=False`` turns any scenario failure into an
    error-status row — this function only raises if the runner itself is
    broken (import errors, a dying pool), which the caller reports as a
    protocol ``error`` frame.
    """
    from ..api.grid import GridConfig, _run_units  # local: keep fork imports lazy

    config = GridConfig(**config_doc)
    unit = (
        str(unit[0]), int(unit[1]), int(unit[2]),
        unit[3], unit[4], str(unit[5]),
    )
    rows = _run_units(config, [unit], backend=backend, trace_level=trace_level,
                      strict=False, retries=retries)
    return rows[0].as_dict()


class Worker:
    """One worker loop bound to one coordinator connection.

    ``await Worker("127.0.0.1:7341", jobs=4).run()`` connects, serves cells
    until the coordinator says ``bye`` (or drops), then cleans up its pool.
    ``backend=None`` runs whatever backend each cell frame requests (the
    submitting client's choice); a non-None ``backend`` overrides it for
    every cell this worker runs — pure execution provenance, since store
    keys are computed coordinator-side from the *submission's* backend.
    """

    def __init__(
        self,
        address: str,
        *,
        backend: Optional[str] = None,
        jobs: int = 1,
        retries: int = 1,
        pool: str = "process",
        name: str = "",
        heartbeat_interval: float = 10.0,
    ) -> None:
        from .protocol import parse_address

        self.host, self.port = parse_address(address)
        self.backend = backend
        self.jobs = max(1, int(jobs))
        self.retries = max(0, int(retries))
        if pool not in ("process", "thread"):
            raise ValueError(f"pool must be 'process' or 'thread', got {pool!r}")
        self.pool_kind = pool
        self.name = name
        self.heartbeat_interval = float(heartbeat_interval)
        self.cells_run = 0
        self._executor: Optional[Executor] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._wlock = asyncio.Lock()
        self._cell_tasks: "set[asyncio.Task]" = set()

    def _make_executor(self) -> Executor:
        if self.pool_kind == "process":
            return ProcessPoolExecutor(max_workers=self.jobs)
        return ThreadPoolExecutor(max_workers=self.jobs,
                                  thread_name_prefix="svc-worker")

    async def run(self) -> None:
        """Connect, serve cells until the coordinator closes, clean up."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._writer = writer
        self._executor = self._make_executor()
        heartbeat: Optional[asyncio.Task] = None
        try:
            await write_frame(writer, hello_frame(
                "worker", slots=self.jobs, name=self.name,
                backend=self.backend,
            ))
            welcome = await read_frame(reader)
            if welcome is None or welcome.get("type") == "error":
                message = (welcome or {}).get("message", "connection closed")
                raise ProtocolError(f"coordinator rejected worker: {message}")
            if welcome.get("type") != "welcome":
                raise ProtocolError(
                    f"expected welcome, got {welcome.get('type')!r}")
            heartbeat = asyncio.create_task(self._heartbeat())
            while True:
                frame = await read_frame(reader)
                if frame is None or frame["type"] == "bye":
                    break
                if frame["type"] == "cell":
                    task = asyncio.create_task(self._run_cell(frame))
                    self._cell_tasks.add(task)
                    task.add_done_callback(self._cell_tasks.discard)
                # pong and anything else: liveness only, nothing to do
        finally:
            if heartbeat is not None:
                heartbeat.cancel()
            for task in list(self._cell_tasks):
                task.cancel()
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None

    async def _run_cell(self, frame: Dict[str, Any]) -> None:
        dispatch_id = frame.get("id")
        loop = asyncio.get_running_loop()
        backend = self.backend if self.backend is not None else frame.get("backend")
        try:
            row_doc = await loop.run_in_executor(
                self._executor, execute_cell,
                frame["config"], tuple(frame["unit"]),
                backend, str(frame.get("trace_level", "summary")),
                self.retries,
            )
        except asyncio.CancelledError:
            raise
        except BrokenExecutor as exc:
            # The pool died under this cell (a worker process was killed).
            # Rebuild it so the next cells still run, and surrender the cell
            # — the coordinator's re-queue accounting owns the retry.
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = self._make_executor()
            await self._send({"type": "error", "id": dispatch_id,
                              "message": f"worker pool died: {exc!r}"})
            return
        except Exception as exc:
            await self._send({"type": "error", "id": dispatch_id,
                              "message": f"{type(exc).__name__}: {exc}"})
            return
        self.cells_run += 1
        await self._send({"type": "row", "id": dispatch_id,
                          "key": frame.get("key"), "row": row_doc})

    async def _send(self, frame: Dict[str, Any]) -> None:
        writer = self._writer
        if writer is None:
            return
        try:
            async with self._wlock:
                await write_frame(writer, frame)
        except (ConnectionError, OSError):
            pass  # coordinator gone; run() unwinds on its next read

    async def _heartbeat(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            await self._send({"type": "ping"})


async def run_workers(
    address: str,
    count: int,
    *,
    backend: Optional[str] = None,
    jobs: int = 1,
    retries: int = 1,
    pool: str = "process",
    name_prefix: str = "worker",
) -> List[Worker]:
    """Convenience: start ``count`` workers as tasks; returns the workers.

    Used by the in-process harness and the quickstart example; the returned
    workers are already connected (their ``run()`` coroutines are scheduled
    on the current loop).
    """
    workers = [
        Worker(address, backend=backend, jobs=jobs, retries=retries,
               pool=pool, name=f"{name_prefix}-{i}")
        for i in range(count)
    ]
    for worker in workers:
        worker.task = asyncio.create_task(worker.run())  # held on the worker
    await asyncio.sleep(0)  # let the hellos go out
    return workers

"""Metrics, theoretical bounds, sweeps and report tables."""

from .bounds import (
    PaperBounds,
    ack_round_window,
    broadcast_round_bound,
    broadcast_round_bound_sharp,
    coloring_label_bits,
    distinct_label_bound,
    round_robin_label_bits,
    scheme_length_bound,
)
from .metrics import (
    RunMetrics,
    aggregate,
    message_bits_total,
    metrics_from_baseline,
    metrics_from_outcome,
    metrics_from_run,
    per_round_transmitter_counts,
)
from .executor import chunk_specs, default_jobs, run_sweep_parallel
from .report import (
    format_comparison,
    format_metrics_table,
    format_table,
    metrics_to_csv,
    metrics_to_json,
)
from .sweep import (
    SCHEME_RUNNERS,
    SweepConfig,
    SweepInstance,
    generate_instances,
    instance_seed,
    instance_specs,
    materialize_instance,
    run_sweep,
)

__all__ = [
    "PaperBounds",
    "RunMetrics",
    "SCHEME_RUNNERS",
    "SweepConfig",
    "SweepInstance",
    "ack_round_window",
    "aggregate",
    "broadcast_round_bound",
    "broadcast_round_bound_sharp",
    "chunk_specs",
    "coloring_label_bits",
    "default_jobs",
    "distinct_label_bound",
    "format_comparison",
    "format_metrics_table",
    "format_table",
    "generate_instances",
    "instance_seed",
    "instance_specs",
    "materialize_instance",
    "message_bits_total",
    "metrics_from_baseline",
    "metrics_from_outcome",
    "metrics_from_run",
    "metrics_to_csv",
    "metrics_to_json",
    "per_round_transmitter_counts",
    "round_robin_label_bits",
    "run_sweep",
    "run_sweep_parallel",
    "scheme_length_bound",
]

"""Theoretical bounds from the paper, as plain functions.

Having the bounds as code (rather than inlined constants scattered through the
tests) keeps every experiment's "paper says / we measured" comparison in one
place:

* Theorem 2.9 — λ + B informs everyone within ``2n − 3`` rounds; the sharper
  instance-specific bound is ``2ℓ − 3``.
* Theorem 3.9 / Corollary 3.8 — λ_ack + B_ack delivers the ack to the source
  in the window ``[2ℓ − 2, 3ℓ − 4]``.
* Scheme lengths — λ: 2 bits (≤ 4 distinct labels), λ_ack: 3 bits (≤ 5
  distinct labels), λ_arb: 3 bits (≤ 6 distinct labels).
* Baseline label lengths — ``⌈log₂ n⌉``-bit identifiers, ``O(log Δ)``-bit
  square colourings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "broadcast_round_bound",
    "broadcast_round_bound_sharp",
    "ack_round_window",
    "scheme_length_bound",
    "distinct_label_bound",
    "round_robin_label_bits",
    "coloring_label_bits",
    "PaperBounds",
]


def broadcast_round_bound(n: int) -> int:
    """Theorem 2.9: all nodes informed within ``2n − 3`` rounds (≥ 1)."""
    return max(1, 2 * n - 3)


def broadcast_round_bound_sharp(ell: int) -> int:
    """Instance-sharp version: all nodes informed within ``2ℓ − 3`` rounds."""
    return max(1, 2 * ell - 3)


def ack_round_window(ell: int) -> tuple[int, int]:
    """Corollary 3.8: the source hears an ack in a round of ``[2ℓ−2, 3ℓ−4]``."""
    return (max(1, 2 * ell - 2), max(1, 3 * ell - 4))


def scheme_length_bound(scheme: str) -> int:
    """Label length (bits) of each of the paper's schemes."""
    lengths = {"lambda": 2, "lambda_ack": 3, "lambda_arb": 3}
    try:
        return lengths[scheme]
    except KeyError:
        raise ValueError(f"unknown scheme {scheme!r}") from None


def distinct_label_bound(scheme: str) -> int:
    """Number of distinct labels each scheme may use (paper's conclusion)."""
    counts = {"lambda": 4, "lambda_ack": 5, "lambda_arb": 6}
    try:
        return counts[scheme]
    except KeyError:
        raise ValueError(f"unknown scheme {scheme!r}") from None


def round_robin_label_bits(n: int) -> int:
    """Label length of the round-robin baseline: identifier plus network size."""
    if n <= 1:
        return 2
    return 2 * math.ceil(math.log2(n))


def coloring_label_bits(num_colours: int) -> int:
    """Label length of the G²-colouring baseline: colour plus colour count."""
    if num_colours <= 1:
        return 2
    return 2 * math.ceil(math.log2(num_colours))


@dataclass(frozen=True)
class PaperBounds:
    """All bounds relevant to one (graph, source) instance, bundled for reports."""

    n: int
    ell: Optional[int] = None

    @property
    def broadcast(self) -> int:
        """Theorem 2.9 bound."""
        return broadcast_round_bound(self.n)

    @property
    def broadcast_sharp(self) -> Optional[int]:
        """2ℓ − 3 when ℓ is known."""
        return broadcast_round_bound_sharp(self.ell) if self.ell is not None else None

    @property
    def ack_window(self) -> Optional[tuple[int, int]]:
        """Corollary 3.8 window when ℓ is known."""
        return ack_round_window(self.ell) if self.ell is not None else None

"""Parameter sweeps: the workload generator behind every benchmark table.

A sweep runs one or more schemes over a grid of (graph family, size, seed,
source) combinations and returns the flat metric rows the report renderer and
the benchmark assertions consume.  Sweeps are deterministic: the seed of every
instance is derived from the sweep seed, the family name and the size, using a
*stable* family hash (CRC32) so the same config yields the same instances in
every process — a prerequisite for parallel execution, whose workers
regenerate instances from specs.

Since the unified experiment API landed, this module keeps the **instance
machinery** (seed derivation, spec enumeration, materialization) plus the
legacy :class:`SweepConfig` / :func:`run_sweep` entry point, which is now a
thin wrapper over :func:`repro.api.run_grid` — the grid engine that also
supports fault-model and clock-model axes.  The old ``SCHEME_RUNNERS`` dict
is replaced by the scheme registry (:func:`repro.api.scheme_names`); a
read-only compatibility view is kept under the old name.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Iterator, List, Mapping, Sequence, Tuple

from ..graphs.generators import generate_family
from ..graphs.graph import Graph
from ..graphs.random import derive_seed

__all__ = [
    "SweepConfig",
    "SweepInstance",
    "generate_instances",
    "instance_seed",
    "instance_specs",
    "materialize_instance",
    "run_sweep",
    "SCHEME_RUNNERS",
]


@dataclass(frozen=True)
class SweepInstance:
    """One (graph, source) workload instance of a sweep."""

    family: str
    n: int
    seed: int
    source: int
    graph: Graph


@dataclass
class SweepConfig:
    """Declarative description of a legacy sweep grid.

    Attributes
    ----------
    families:
        Graph family names (keys of :data:`repro.graphs.generators.FAMILIES`).
    sizes:
        Requested node counts (families may round to feasible sizes).
    seeds_per_size:
        Number of random instances per (family, size) cell.
    schemes:
        Registered scheme names; see :func:`repro.api.scheme_names`.
    source_rule:
        ``"zero"`` (node 0), ``"last"`` (node n−1) or ``"center-ish"``
        (node n // 2).
    base_seed:
        Root seed from which all instance seeds are derived.

    For fault-model / clock-model axes use :class:`repro.api.GridConfig`,
    which this config lifts into losslessly.
    """

    families: Sequence[str]
    sizes: Sequence[int]
    seeds_per_size: int = 1
    schemes: Sequence[str] = ("lambda",)
    source_rule: str = "zero"
    base_seed: int = 2019


def _pick_source(graph: Graph, rule: str) -> int:
    from ..api.scenario import pick_source

    return pick_source(graph, rule)


def _stable_family_hash(family: str) -> int:
    """16-bit CRC of the family name — stable across processes and runs.

    Python's built-in ``hash(str)`` is salted per interpreter, which would
    make instance seeds differ between a sweep driver and its worker
    processes (and between reruns).
    """
    return zlib.crc32(family.encode("utf-8")) & 0xFFFF


def instance_seed(base_seed: int, family: str, size: int, rep: int) -> int:
    """The derived seed of the ``rep``-th instance of a (family, size) cell."""
    return derive_seed(base_seed, _stable_family_hash(family), size, rep)


def materialize_instance(config, family: str, size: int, rep: int) -> SweepInstance:
    """Build the concrete :class:`SweepInstance` for one grid cell + repetition.

    ``config`` may be a :class:`SweepConfig` or a :class:`repro.api.GridConfig`
    — anything with ``base_seed`` and ``source_rule`` attributes.
    """
    seed = instance_seed(config.base_seed, family, size, rep)
    graph = generate_family(family, size, seed)
    source = _pick_source(graph, config.source_rule)
    return SweepInstance(family=family, n=graph.n, seed=seed, source=source, graph=graph)


def instance_specs(config) -> List[Tuple[str, int, int]]:
    """The ``(family, size, rep)`` spec of every instance, in sweep order."""
    return [
        (family, size, rep)
        for family in config.families
        for size in config.sizes
        for rep in range(config.seeds_per_size)
    ]


def generate_instances(config) -> List[SweepInstance]:
    """Materialise every workload instance described by ``config``."""
    return [
        materialize_instance(config, family, size, rep)
        for family, size, rep in instance_specs(config)
    ]


class _SchemeRunnerView(Mapping):
    """Deprecated read-only view emulating the old ``SCHEME_RUNNERS`` dict.

    Keys are the registered scheme names; values are callables with the old
    ``runner(instance, *, backend, trace_level) -> RunMetrics`` signature.
    New code should use :func:`repro.api.get_scheme` directly.
    """

    def _names(self) -> List[str]:
        from ..api.schemes import scheme_names

        return scheme_names()

    def __getitem__(self, name: str):
        from ..api.schemes import get_scheme
        from .metrics import metrics_from_run

        try:
            scheme = get_scheme(name)
        except ValueError:
            # Mapping contract: misses must raise KeyError (so .get() and
            # `in`-style probing keep their historical dict behaviour).
            raise KeyError(name) from None

        def runner(instance: SweepInstance, *, backend=None, trace_level="summary",
                   fault_model=None, clock_model=None):
            outcome = scheme.run(
                instance.graph, instance.source, backend=backend,
                trace_level=trace_level, fault_model=fault_model,
                clock_model=clock_model,
                **scheme.grid_options(instance.graph, instance.source),
            )
            return metrics_from_run(instance.graph, outcome, family=instance.family,
                                    source=instance.source)

        return runner

    def __contains__(self, name: object) -> bool:
        return name in self._names()

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SCHEME_RUNNERS({self._names()})"


#: Deprecated: scheme name → legacy runner callable.  Backed by the registry.
SCHEME_RUNNERS = _SchemeRunnerView()


def run_sweep(
    config: SweepConfig,
    *,
    backend=None,
    trace_level: str = "summary",
    jobs: int = 1,
):
    """Run every configured scheme over every instance and return all rows.

    Thin wrapper over :func:`repro.api.run_grid` with the legacy grid (no
    fault/clock axes).  ``jobs > 1`` fans instances out over a process pool;
    rows come back in the same stable order regardless of the job count.
    """
    from ..api.grid import GridConfig, run_grid

    return run_grid(
        GridConfig.from_sweep(config),
        backend=backend,
        trace_level=trace_level,
        jobs=jobs,
    )

"""Parameter sweeps: the workload generator behind every benchmark table.

A sweep runs one or more schemes over a grid of (graph family, size, seed,
source) combinations and returns the flat metric rows the report renderer and
the benchmark assertions consume.  Sweeps are deterministic: the seed of every
instance is derived from the sweep seed, the family name and the size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines import (
    run_centralized_schedule,
    run_coloring_tdma,
    run_collision_detection_broadcast,
    run_round_robin,
)
from ..core.runner import (
    run_acknowledged_broadcast,
    run_arbitrary_source_broadcast,
    run_broadcast,
)
from ..graphs.generators import generate_family
from ..graphs.graph import Graph
from ..graphs.random import derive_seed
from .metrics import RunMetrics, metrics_from_baseline, metrics_from_outcome

__all__ = ["SweepConfig", "SweepInstance", "generate_instances", "run_sweep", "SCHEME_RUNNERS"]


@dataclass(frozen=True)
class SweepInstance:
    """One (graph, source) workload instance of a sweep."""

    family: str
    n: int
    seed: int
    source: int
    graph: Graph


@dataclass
class SweepConfig:
    """Declarative description of a sweep.

    Attributes
    ----------
    families:
        Graph family names (keys of :data:`repro.graphs.generators.FAMILIES`).
    sizes:
        Requested node counts (families may round to feasible sizes).
    seeds_per_size:
        Number of random instances per (family, size) cell.
    schemes:
        Scheme names to run; see :data:`SCHEME_RUNNERS`.
    source_rule:
        ``"zero"`` (node 0), ``"last"`` (node n−1) or ``"center-ish"``
        (node n // 2).
    base_seed:
        Root seed from which all instance seeds are derived.
    """

    families: Sequence[str]
    sizes: Sequence[int]
    seeds_per_size: int = 1
    schemes: Sequence[str] = ("lambda",)
    source_rule: str = "zero"
    base_seed: int = 2019


def _pick_source(graph: Graph, rule: str) -> int:
    if rule == "zero":
        return 0
    if rule == "last":
        return graph.n - 1
    if rule == "center-ish":
        return graph.n // 2
    raise ValueError(f"unknown source rule {rule!r}")


def generate_instances(config: SweepConfig) -> List[SweepInstance]:
    """Materialise every workload instance described by ``config``."""
    instances: List[SweepInstance] = []
    for family in config.families:
        for size in config.sizes:
            for rep in range(config.seeds_per_size):
                seed = derive_seed(config.base_seed, hash(family) & 0xFFFF, size, rep)
                graph = generate_family(family, size, seed)
                source = _pick_source(graph, config.source_rule)
                instances.append(
                    SweepInstance(family=family, n=graph.n, seed=seed, source=source, graph=graph)
                )
    return instances


def _run_lambda(instance: SweepInstance) -> RunMetrics:
    outcome = run_broadcast(instance.graph, instance.source)
    return metrics_from_outcome(instance.graph, outcome, family=instance.family,
                                source=instance.source)


def _run_lambda_ack(instance: SweepInstance) -> RunMetrics:
    outcome = run_acknowledged_broadcast(instance.graph, instance.source)
    return metrics_from_outcome(instance.graph, outcome, family=instance.family,
                                source=instance.source)


def _run_lambda_arb(instance: SweepInstance) -> RunMetrics:
    coordinator = 0 if instance.source != 0 else instance.graph.n - 1
    outcome = run_arbitrary_source_broadcast(
        instance.graph, true_source=instance.source, coordinator=coordinator
    )
    return metrics_from_outcome(instance.graph, outcome, family=instance.family,
                                source=instance.source)


def _run_round_robin(instance: SweepInstance) -> RunMetrics:
    outcome = run_round_robin(instance.graph, instance.source)
    return metrics_from_baseline(instance.graph, outcome, family=instance.family,
                                 source=instance.source)


def _run_coloring(instance: SweepInstance) -> RunMetrics:
    outcome = run_coloring_tdma(instance.graph, instance.source)
    return metrics_from_baseline(instance.graph, outcome, family=instance.family,
                                 source=instance.source)


def _run_collision_detection(instance: SweepInstance) -> RunMetrics:
    outcome = run_collision_detection_broadcast(instance.graph, instance.source)
    return metrics_from_baseline(instance.graph, outcome, family=instance.family,
                                 source=instance.source)


def _run_centralized(instance: SweepInstance) -> RunMetrics:
    outcome = run_centralized_schedule(instance.graph, instance.source)
    return metrics_from_baseline(instance.graph, outcome, family=instance.family,
                                 source=instance.source)


#: Scheme name → callable(SweepInstance) -> RunMetrics.
SCHEME_RUNNERS: Dict[str, Callable[[SweepInstance], RunMetrics]] = {
    "lambda": _run_lambda,
    "lambda_ack": _run_lambda_ack,
    "lambda_arb": _run_lambda_arb,
    "round_robin": _run_round_robin,
    "coloring_tdma": _run_coloring,
    "collision_detection": _run_collision_detection,
    "centralized": _run_centralized,
}


def run_sweep(config: SweepConfig) -> List[RunMetrics]:
    """Run every configured scheme over every instance and return all rows."""
    unknown = [s for s in config.schemes if s not in SCHEME_RUNNERS]
    if unknown:
        raise ValueError(f"unknown schemes {unknown}; known: {sorted(SCHEME_RUNNERS)}")
    rows: List[RunMetrics] = []
    for instance in generate_instances(config):
        for scheme in config.schemes:
            rows.append(SCHEME_RUNNERS[scheme](instance))
    return rows

"""Parameter sweeps: the workload generator behind every benchmark table.

A sweep runs one or more schemes over a grid of (graph family, size, seed,
source) combinations and returns the flat metric rows the report renderer and
the benchmark assertions consume.  Sweeps are deterministic: the seed of every
instance is derived from the sweep seed, the family name and the size, using a
*stable* family hash (CRC32) so the same config yields the same instances in
every process — a prerequisite for the parallel executor in
:mod:`repro.analysis.executor`, whose workers regenerate instances from specs.

``run_sweep`` accepts ``backend`` / ``trace_level`` (threaded through to every
scheme runner; sweeps default to summary traces, which keep memory flat) and
``jobs`` (``> 1`` fans instances out over a process pool with results
guaranteed identical to the serial order).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines import (
    run_centralized_schedule,
    run_coloring_tdma,
    run_collision_detection_broadcast,
    run_round_robin,
)
from ..core.runner import (
    run_acknowledged_broadcast,
    run_arbitrary_source_broadcast,
    run_broadcast,
)
from ..graphs.generators import generate_family
from ..graphs.graph import Graph
from ..graphs.random import derive_seed
from .metrics import RunMetrics, metrics_from_baseline, metrics_from_outcome

__all__ = [
    "SweepConfig",
    "SweepInstance",
    "generate_instances",
    "instance_seed",
    "materialize_instance",
    "run_sweep",
    "SCHEME_RUNNERS",
]


@dataclass(frozen=True)
class SweepInstance:
    """One (graph, source) workload instance of a sweep."""

    family: str
    n: int
    seed: int
    source: int
    graph: Graph


@dataclass
class SweepConfig:
    """Declarative description of a sweep.

    Attributes
    ----------
    families:
        Graph family names (keys of :data:`repro.graphs.generators.FAMILIES`).
    sizes:
        Requested node counts (families may round to feasible sizes).
    seeds_per_size:
        Number of random instances per (family, size) cell.
    schemes:
        Scheme names to run; see :data:`SCHEME_RUNNERS`.
    source_rule:
        ``"zero"`` (node 0), ``"last"`` (node n−1) or ``"center-ish"``
        (node n // 2).
    base_seed:
        Root seed from which all instance seeds are derived.
    """

    families: Sequence[str]
    sizes: Sequence[int]
    seeds_per_size: int = 1
    schemes: Sequence[str] = ("lambda",)
    source_rule: str = "zero"
    base_seed: int = 2019


def _pick_source(graph: Graph, rule: str) -> int:
    if rule == "zero":
        return 0
    if rule == "last":
        return graph.n - 1
    if rule == "center-ish":
        return graph.n // 2
    raise ValueError(f"unknown source rule {rule!r}")


def _stable_family_hash(family: str) -> int:
    """16-bit CRC of the family name — stable across processes and runs.

    Python's built-in ``hash(str)`` is salted per interpreter, which would
    make instance seeds differ between a sweep driver and its worker
    processes (and between reruns).
    """
    return zlib.crc32(family.encode("utf-8")) & 0xFFFF


def instance_seed(base_seed: int, family: str, size: int, rep: int) -> int:
    """The derived seed of the ``rep``-th instance of a (family, size) cell."""
    return derive_seed(base_seed, _stable_family_hash(family), size, rep)


def materialize_instance(
    config: SweepConfig, family: str, size: int, rep: int
) -> SweepInstance:
    """Build the concrete :class:`SweepInstance` for one grid cell + repetition."""
    seed = instance_seed(config.base_seed, family, size, rep)
    graph = generate_family(family, size, seed)
    source = _pick_source(graph, config.source_rule)
    return SweepInstance(family=family, n=graph.n, seed=seed, source=source, graph=graph)


def instance_specs(config: SweepConfig) -> List[Tuple[str, int, int]]:
    """The ``(family, size, rep)`` spec of every instance, in sweep order."""
    return [
        (family, size, rep)
        for family in config.families
        for size in config.sizes
        for rep in range(config.seeds_per_size)
    ]


def generate_instances(config: SweepConfig) -> List[SweepInstance]:
    """Materialise every workload instance described by ``config``."""
    return [
        materialize_instance(config, family, size, rep)
        for family, size, rep in instance_specs(config)
    ]


def _run_lambda(instance: SweepInstance, *, backend=None, trace_level="summary") -> RunMetrics:
    outcome = run_broadcast(instance.graph, instance.source,
                            backend=backend, trace_level=trace_level)
    return metrics_from_outcome(instance.graph, outcome, family=instance.family,
                                source=instance.source)


def _run_lambda_ack(instance: SweepInstance, *, backend=None, trace_level="summary") -> RunMetrics:
    outcome = run_acknowledged_broadcast(instance.graph, instance.source,
                                         backend=backend, trace_level=trace_level)
    return metrics_from_outcome(instance.graph, outcome, family=instance.family,
                                source=instance.source)


def _run_lambda_arb(instance: SweepInstance, *, backend=None, trace_level="summary") -> RunMetrics:
    coordinator = 0 if instance.source != 0 else instance.graph.n - 1
    outcome = run_arbitrary_source_broadcast(
        instance.graph, true_source=instance.source, coordinator=coordinator,
        backend=backend, trace_level=trace_level,
    )
    return metrics_from_outcome(instance.graph, outcome, family=instance.family,
                                source=instance.source)


def _run_round_robin(instance: SweepInstance, *, backend=None, trace_level="summary") -> RunMetrics:
    outcome = run_round_robin(instance.graph, instance.source,
                              backend=backend, trace_level=trace_level)
    return metrics_from_baseline(instance.graph, outcome, family=instance.family,
                                 source=instance.source)


def _run_coloring(instance: SweepInstance, *, backend=None, trace_level="summary") -> RunMetrics:
    outcome = run_coloring_tdma(instance.graph, instance.source,
                                backend=backend, trace_level=trace_level)
    return metrics_from_baseline(instance.graph, outcome, family=instance.family,
                                 source=instance.source)


def _run_collision_detection(instance: SweepInstance, *, backend=None,
                             trace_level="summary") -> RunMetrics:
    outcome = run_collision_detection_broadcast(instance.graph, instance.source,
                                                backend=backend, trace_level=trace_level)
    return metrics_from_baseline(instance.graph, outcome, family=instance.family,
                                 source=instance.source)


def _run_centralized(instance: SweepInstance, *, backend=None,
                     trace_level="summary") -> RunMetrics:
    outcome = run_centralized_schedule(instance.graph, instance.source,
                                       backend=backend, trace_level=trace_level)
    return metrics_from_baseline(instance.graph, outcome, family=instance.family,
                                 source=instance.source)


#: Scheme name → callable(SweepInstance, *, backend, trace_level) -> RunMetrics.
SCHEME_RUNNERS: Dict[str, Callable[..., RunMetrics]] = {
    "lambda": _run_lambda,
    "lambda_ack": _run_lambda_ack,
    "lambda_arb": _run_lambda_arb,
    "round_robin": _run_round_robin,
    "coloring_tdma": _run_coloring,
    "collision_detection": _run_collision_detection,
    "centralized": _run_centralized,
}


def run_sweep(
    config: SweepConfig,
    *,
    backend=None,
    trace_level: str = "summary",
    jobs: int = 1,
) -> List[RunMetrics]:
    """Run every configured scheme over every instance and return all rows.

    ``jobs > 1`` dispatches to the batched parallel executor
    (:func:`repro.analysis.executor.run_sweep_parallel`); rows come back in
    the same stable order regardless of the job count.
    """
    unknown = [s for s in config.schemes if s not in SCHEME_RUNNERS]
    if unknown:
        raise ValueError(f"unknown schemes {unknown}; known: {sorted(SCHEME_RUNNERS)}")
    if jobs > 1:
        from .executor import run_sweep_parallel

        return run_sweep_parallel(
            config, jobs=jobs, backend=backend, trace_level=trace_level
        )
    rows: List[RunMetrics] = []
    for instance in generate_instances(config):
        for scheme in config.schemes:
            rows.append(
                SCHEME_RUNNERS[scheme](instance, backend=backend, trace_level=trace_level)
            )
    return rows

"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same kind of rows/series the paper's claims
describe (completion round vs. bound, label length vs. baseline label length,
who wins and by what factor), formatted as aligned monospace tables so they
read well in CI logs and in EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "format_table",
    "format_metrics_table",
    "format_aggregate_table",
    "format_comparison",
    "metrics_to_json",
    "metrics_to_csv",
    "aggregate_to_dicts",
]


def _metric_dicts(metrics: Sequence) -> List[Dict[str, Any]]:
    """Row dicts for a metrics sequence.

    A columnar :class:`~repro.store.ResultSet` exports its rows in one
    columnar pass (``to_dicts``); plain row sequences flatten per dataclass.
    """
    if hasattr(metrics, "to_dicts"):
        return metrics.to_dicts()
    return [m.as_dict() for m in metrics]


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    header = [str(c) for c in cols]
    body = [[_cell(row.get(c)) for c in cols] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(cols))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(cols))))
    for r in body:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_metrics_table(metrics: Sequence, *, title: Optional[str] = None) -> str:
    """Render a sequence of :class:`~repro.analysis.metrics.RunMetrics` rows.

    The ``fault`` / ``clock`` / ``status`` columns only appear when some row
    ran under a non-default channel model (or recorded a ``--keep-going``
    failure), so plain sweeps render exactly as before.
    """
    rows = _metric_dicts(metrics)
    columns = [
        "scheme",
        "family",
        "n",
        "source_eccentricity",
        "label_bits",
        "distinct_labels",
        "completion_round",
        "bound",
        "acknowledgement_round",
        "transmissions",
        "collisions",
    ]
    if any(row.get("fault", "none") != "none" for row in rows):
        columns.append("fault")
    if any(row.get("clock", "sync") != "sync" for row in rows):
        columns.append("clock")
    if len({row.get("backend", "") for row in rows} - {""}) > 1:
        # Mixed execution provenance (some cells rode a fallback engine):
        # surface which engine actually ran each row.
        columns.append("backend")
    if any(row.get("status", "ok") != "ok" for row in rows):
        columns.append("status")
    return format_table(rows, columns, title=title)


def aggregate_to_dicts(groups: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Flatten aggregate groups (``[{"by": ..., "stats": ...}]``) to one dict
    per group — grouping columns first, then the statistics in kernel order.

    This is the row shape every aggregate output surface (table, json, csv)
    renders, so ``repro results --agg`` and ``repro query --agg`` emit
    identical documents for identical data.
    """
    return [{**group["by"], **group["stats"]} for group in groups]


def format_aggregate_table(
    groups: Sequence[Mapping[str, Any]],
    *,
    column: str,
    title: Optional[str] = None,
) -> str:
    """Render streaming/eager aggregate output as an aligned table.

    One row per group: the grouping columns, then ``count``/``mean``/``std``
    and the percentile spread (``p05``/``median``/``p95``) with ``min``/
    ``max`` — plus the bootstrap CI bounds when present.
    """
    rows = aggregate_to_dicts(groups)
    if title is None:
        title = f"aggregate of {column}"
    columns = list(rows[0].keys()) if rows else None
    return format_table(rows, columns, title=title)


def metrics_to_json(metrics: Sequence, *, indent: int = 2) -> str:
    """Serialise :class:`~repro.analysis.metrics.RunMetrics` rows as a JSON array.

    Machine-readable export for ``repro sweep --output json`` and downstream
    tooling; field order follows the dataclass definition, row order is the
    sweep order.
    """
    return json.dumps(_metric_dicts(metrics), indent=indent)


def metrics_to_csv(metrics: Sequence) -> str:
    """Serialise :class:`~repro.analysis.metrics.RunMetrics` rows as CSV text.

    The header row lists every metrics field and is emitted even for an
    empty sequence (exports stay concatenable); ``None`` cells are left empty.
    """
    from .metrics import RunMetrics

    buffer = io.StringIO()
    rows = _metric_dicts(metrics)
    if rows:
        fieldnames = list(rows[0].keys())
    else:
        fieldnames = [field.name for field in dataclasses.fields(RunMetrics)]
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow({k: ("" if v is None else v) for k, v in row.items()})
    return buffer.getvalue()


def format_comparison(
    reference_rows: Sequence,
    baseline_rows: Sequence,
    *,
    field: str = "completion_round",
    title: Optional[str] = None,
) -> str:
    """Side-by-side comparison of a numeric field, grouped by (family, n).

    Produces one row per (family, n) with a column per scheme plus the ratio
    of every baseline to the reference scheme (the paper's λ).
    """
    grouped: Dict[tuple, Dict[str, Any]] = {}
    for row in list(reference_rows) + list(baseline_rows):
        key = (row.family, row.n)
        grouped.setdefault(key, {"family": row.family, "n": row.n})
        grouped[key][row.scheme] = getattr(row, field)
    rows: List[Dict[str, Any]] = []
    for key in sorted(grouped):
        entry = grouped[key]
        ref_values = [v for k, v in entry.items() if k not in ("family", "n") and k.startswith("lambda")]
        ref = ref_values[0] if ref_values else None
        out = dict(entry)
        if ref:
            for scheme, value in list(entry.items()):
                if scheme in ("family", "n") or scheme.startswith("lambda"):
                    continue
                if isinstance(value, (int, float)) and value:
                    out[f"{scheme}/λ"] = round(value / ref, 2)
        rows.append(out)
    columns = sorted({c for r in rows for c in r}, key=lambda c: (c not in ("family", "n"), c))
    return format_table(rows, columns, title=title)

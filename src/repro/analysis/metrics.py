"""Metrics extracted from executions, in a report-friendly flat form.

Everything the benchmark tables print is computed here, from either a
:class:`~repro.core.runner.BroadcastOutcome` (the paper's schemes) or a
:class:`~repro.baselines.base.BaselineOutcome` (the comparison schemes), so
that the two kinds of run share one schema.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..baselines.base import BaselineOutcome
from ..core.runner import BroadcastOutcome
from ..graphs.graph import Graph
from ..graphs.properties import source_radius
from ..radio.trace import ExecutionTrace

__all__ = [
    "RunMetrics",
    "metrics_from_outcome",
    "metrics_from_baseline",
    "message_bits_total",
    "per_round_transmitter_counts",
    "aggregate",
]


@dataclass(frozen=True)
class RunMetrics:
    """One row of a results table."""

    scheme: str
    family: str
    n: int
    source_eccentricity: int
    label_bits: int
    distinct_labels: int
    completion_round: Optional[int]
    bound: Optional[int]
    acknowledgement_round: Optional[int]
    transmissions: int
    collisions: int
    total_message_bits: int

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for the report renderer."""
        return asdict(self)

    @property
    def within_bound(self) -> Optional[bool]:
        """True/False when both the completion round and the bound are known."""
        if self.completion_round is None or self.bound is None:
            return None
        return self.completion_round <= self.bound


def message_bits_total(trace: ExecutionTrace, source_payload_bits: int = 32) -> int:
    """Total bits put on the channel over the execution (paper's accounting).

    The trace maintains the bit total incrementally at every trace level, so
    summary traces report it without per-round records.
    """
    return trace.total_message_bits(source_payload_bits)


def per_round_transmitter_counts(trace: ExecutionTrace) -> np.ndarray:
    """Vector of transmitter counts per round (length = number of rounds)."""
    return np.array([r.num_transmitters for r in trace.rounds], dtype=np.int64)


def metrics_from_outcome(
    graph: Graph,
    outcome: BroadcastOutcome,
    *,
    family: str = "unknown",
    source: Optional[int] = None,
) -> RunMetrics:
    """Flatten a paper-scheme outcome into a :class:`RunMetrics` row."""
    src = source if source is not None else outcome.labeling.source
    if src is None:
        src = outcome.extras.get("coordinator", 0)
    ecc = source_radius(graph, src) if graph.n > 0 else 0
    return RunMetrics(
        scheme=outcome.labeling.scheme,
        family=family,
        n=graph.n,
        source_eccentricity=ecc,
        label_bits=outcome.labeling.length,
        distinct_labels=outcome.labeling.num_distinct_labels(),
        completion_round=outcome.completion_round,
        bound=outcome.bound_broadcast,
        acknowledgement_round=outcome.acknowledgement_round,
        transmissions=outcome.total_transmissions,
        collisions=outcome.total_collisions,
        total_message_bits=message_bits_total(outcome.trace),
    )


def metrics_from_baseline(
    graph: Graph,
    outcome: BaselineOutcome,
    *,
    family: str = "unknown",
    source: int = 0,
) -> RunMetrics:
    """Flatten a baseline outcome into a :class:`RunMetrics` row."""
    ecc = source_radius(graph, source) if graph.n > 0 else 0
    return RunMetrics(
        scheme=outcome.name,
        family=family,
        n=graph.n,
        source_eccentricity=ecc,
        label_bits=outcome.label_length_bits,
        distinct_labels=outcome.num_distinct_labels,
        completion_round=outcome.completion_round,
        bound=None,
        acknowledgement_round=None,
        transmissions=outcome.total_transmissions,
        collisions=outcome.total_collisions,
        total_message_bits=message_bits_total(outcome.simulation.trace),
    )


def aggregate(rows: Sequence[RunMetrics], field: str) -> Dict[str, float]:
    """Mean / min / max of a numeric field across rows (``None`` values skipped)."""
    values = [getattr(r, field) for r in rows if getattr(r, field) is not None]
    if not values:
        return {"mean": float("nan"), "min": float("nan"), "max": float("nan"), "count": 0}
    arr = np.asarray(values, dtype=float)
    return {
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "count": int(arr.size),
    }

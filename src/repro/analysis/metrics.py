"""Metrics extracted from executions, in a report-friendly flat form.

Everything the benchmark tables print is computed here from the unified
:class:`~repro.core.outcome.Outcome` — paper schemes and baselines share one
schema, so :func:`metrics_from_run` is the only flattener.  The historical
:func:`metrics_from_outcome` / :func:`metrics_from_baseline` names survive as
deprecated aliases.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from dataclasses import fields as _dataclass_fields
from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..core.outcome import Outcome
from ..graphs.graph import Graph
from ..graphs.properties import source_radius
from ..radio.trace import ExecutionTrace

__all__ = [
    "RunMetrics",
    "METRIC_FIELDS",
    "METRIC_STRING_FIELDS",
    "METRIC_OPTIONAL_INT_FIELDS",
    "METRIC_INT_FIELDS",
    "metrics_from_run",
    "metrics_from_outcome",
    "metrics_from_baseline",
    "message_bits_total",
    "per_round_transmitter_counts",
    "aggregate",
]


@dataclass(frozen=True)
class RunMetrics:
    """One row of a results table.

    ``fault`` / ``clock`` are short spec tags identifying the channel
    perturbation the run executed under (``"none"`` / ``"sync"`` for the
    paper's reliable synchronized model); they make rows from multi-axis
    grids (see :func:`repro.api.run_grid`) self-describing.

    ``status`` is ``"ok"`` for a completed execution.  Under
    ``run_grid(..., strict=False)`` (CLI ``--keep-going``) a failing cell is
    recorded as a row with ``status="error:<ExceptionName>"`` and zeroed
    measurements instead of aborting the sweep.

    ``backend`` is execution *provenance*: the registry name of the engine
    that actually ran the cell — which differs from the requested backend
    whenever a task rode a fallback (e.g. a B_arb cell under a non-default
    clock model dispatched to ``batched`` executes on the reference engine).
    It is excluded from row equality (``compare=False``): the differential
    suites assert that backends agree on *measurements*, and provenance is
    metadata about how the row was produced, not part of the result.
    """

    scheme: str
    family: str
    n: int
    source_eccentricity: int
    label_bits: int
    distinct_labels: int
    completion_round: Optional[int]
    bound: Optional[int]
    acknowledgement_round: Optional[int]
    transmissions: int
    collisions: int
    total_message_bits: int
    fault: str = "none"
    clock: str = "sync"
    backend: str = field(default="", compare=False)
    status: str = "ok"

    @property
    def ok(self) -> bool:
        """True when the row records a successful execution."""
        return self.status == "ok"

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for the report renderer."""
        return asdict(self)

    @property
    def within_bound(self) -> Optional[bool]:
        """True/False when both the completion round and the bound are known."""
        if self.completion_round is None or self.bound is None:
            return None
        return self.completion_round <= self.bound


#: The row schema, in dataclass field order — the single source of truth the
#: columnar containers (ResultSet, the binary segment format, the streaming
#: aggregator) all derive their column typing from.
METRIC_FIELDS = tuple(f.name for f in _dataclass_fields(RunMetrics))
#: Short string tags.
METRIC_STRING_FIELDS = ("scheme", "family", "fault", "clock", "backend", "status")
#: ``Optional[int]`` fields: stored as int64 + a boolean validity mask.
METRIC_OPTIONAL_INT_FIELDS = ("completion_round", "bound", "acknowledgement_round")
#: Mandatory integer counters (everything that is neither a tag nor optional).
METRIC_INT_FIELDS = tuple(
    f for f in METRIC_FIELDS
    if f not in METRIC_STRING_FIELDS and f not in METRIC_OPTIONAL_INT_FIELDS
)


def message_bits_total(trace: ExecutionTrace, source_payload_bits: int = 32) -> int:
    """Total bits put on the channel over the execution (paper's accounting).

    The trace maintains the bit total incrementally at every trace level, so
    summary traces report it without per-round records.
    """
    return trace.total_message_bits(source_payload_bits)


def per_round_transmitter_counts(trace: ExecutionTrace) -> np.ndarray:
    """Vector of transmitter counts per round (length = number of rounds)."""
    return np.array([r.num_transmitters for r in trace.rounds], dtype=np.int64)


def metrics_from_run(
    graph: Graph,
    outcome: Outcome,
    *,
    family: str = "unknown",
    source: Optional[int] = None,
    fault: str = "none",
    clock: str = "sync",
    backend: Optional[str] = None,
) -> RunMetrics:
    """Flatten any unified :class:`Outcome` into a :class:`RunMetrics` row.

    ``backend`` overrides the provenance tag; by default it is read from
    ``outcome.extras["executed_by"]``, which :meth:`repro.api.Scheme.run`
    stamps with the engine that actually executed the task.
    """
    src = source
    if src is None and outcome.labeling is not None:
        src = outcome.labeling.source
    if src is None:
        src = outcome.extras.get("coordinator", 0)
    ecc = source_radius(graph, src) if graph.n > 0 else 0
    if backend is None:
        backend = outcome.extras.get("executed_by") or ""
    return RunMetrics(
        scheme=outcome.scheme,
        family=family,
        n=graph.n,
        source_eccentricity=ecc,
        label_bits=outcome.label_bits,
        distinct_labels=outcome.distinct_labels,
        completion_round=outcome.completion_round,
        bound=outcome.bound_broadcast,
        acknowledgement_round=outcome.acknowledgement_round,
        transmissions=outcome.total_transmissions,
        collisions=outcome.total_collisions,
        total_message_bits=message_bits_total(outcome.trace),
        fault=fault,
        clock=clock,
        backend=backend,
    )


def metrics_from_outcome(
    graph: Graph,
    outcome: Outcome,
    *,
    family: str = "unknown",
    source: Optional[int] = None,
) -> RunMetrics:
    """Deprecated alias of :func:`metrics_from_run` (paper-scheme spelling)."""
    return metrics_from_run(graph, outcome, family=family, source=source)


def metrics_from_baseline(
    graph: Graph,
    outcome: Outcome,
    *,
    family: str = "unknown",
    source: int = 0,
) -> RunMetrics:
    """Deprecated alias of :func:`metrics_from_run` (baseline spelling)."""
    return metrics_from_run(graph, outcome, family=family, source=source)


def aggregate(rows: Sequence[RunMetrics], field: str) -> Dict[str, float]:
    """Mean / min / max of a numeric field across rows (``None`` values skipped)."""
    values = [getattr(r, field) for r in rows if getattr(r, field) is not None]
    if not values:
        return {"mean": float("nan"), "min": float("nan"), "max": float("nan"), "count": 0}
    arr = np.asarray(values, dtype=float)
    return {
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "count": int(arr.size),
    }

"""Parallel sweep execution: chunking utilities + the legacy entry point.

The actual process-pool fan-out lives in :mod:`repro.api.grid` since the
unified experiment API landed: work units are plain serializable cell specs
(``family, size, rep, fault_spec, clock_spec``) that workers rematerialize,
which keeps results deterministic and independent of the job count.  This
module keeps the deterministic chunking helpers (pure functions of the spec
list, never of scheduling order) and :func:`run_sweep_parallel`, the legacy
wrapper over :func:`repro.api.run_grid`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, TypeVar

__all__ = ["GridExecutionError", "default_jobs", "chunk_specs", "run_sweep_parallel"]

_Spec = TypeVar("_Spec")


class GridExecutionError(RuntimeError):
    """One grid cell failed: the error names the failing scenario spec.

    Work units cross the process-pool boundary as opaque chunks, so a bare
    exception from a worker used to surface as a pool traceback with no hint
    of *which* (scheme, graph, seed) cell died.  The grid layer wraps any
    cell failure in this error, whose message and :attr:`spec` dict carry the
    scheme name, graph family/size/seed, source and fault/clock tags.

    The explicit ``__reduce__`` keeps the message, the spec and the store key
    intact when the exception is pickled back from a worker process.

    :attr:`store_key` is the failing cell's content-addressed result-store
    key (see :mod:`repro.store.keys`), so a failure in a store-backed sweep
    names exactly which cache entry the retry will compute; it is also
    mirrored into ``spec["store_key"]``.
    """

    def __init__(
        self,
        message: str,
        spec: Optional[Dict[str, Any]] = None,
        store_key: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.spec: Dict[str, Any] = dict(spec or {})
        self.store_key: Optional[str] = store_key
        if store_key is not None:
            self.spec.setdefault("store_key", store_key)

    def __reduce__(self):
        return (
            type(self),
            (str(self.args[0]) if self.args else "", self.spec, self.store_key),
        )


def default_jobs() -> int:
    """Job count used for ``jobs=None``: the machine's CPU count."""
    return max(1, os.cpu_count() or 1)


def chunk_specs(specs: Sequence[_Spec], chunk_size: int) -> List[List[_Spec]]:
    """Split instance specs into contiguous chunks of at most ``chunk_size``.

    Chunk boundaries depend only on the spec order and the chunk size, so the
    work distribution (and therefore the merged output order) is independent
    of how many workers end up executing the chunks.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [list(specs[i : i + chunk_size]) for i in range(0, len(specs), chunk_size)]


def run_sweep_parallel(
    config,
    *,
    jobs: Optional[int] = None,
    backend=None,
    trace_level: str = "summary",
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
):
    """Run a legacy sweep with instances fanned out over a process pool.

    Deprecated alias of ``repro.api.run_grid(GridConfig.from_sweep(config),
    jobs=...)``.  ``jobs=None`` uses the CPU count; ``jobs=1`` runs inline
    without a pool.  ``backend`` may be a registry name or an instance of a
    registered backend class (reduced to its name, since only plain data
    crosses the process boundary); custom backend objects outside the
    registry are rejected.  ``batch_size`` groups compatible work units into
    one stacked kernel invocation each (see ``backend="batched"``).
    """
    from ..api.grid import GridConfig, run_grid

    return run_grid(
        GridConfig.from_sweep(config),
        backend=backend,
        trace_level=trace_level,
        jobs=default_jobs() if jobs is None else jobs,
        chunk_size=chunk_size,
        batch_size=batch_size,
    )

"""Batched parallel sweep executor.

Sweeps are embarrassingly parallel — every (instance, scheme) cell is an
independent simulation — but naively pickling :class:`~repro.graphs.graph.
Graph` objects to workers would ship megabytes of adjacency per task.  The
executor instead fans out **instance specs** (``family, size, rep`` triples):
workers regenerate each graph from its seed-derived spec, which is exact
because instance seeds are stable across processes (see
:func:`repro.analysis.sweep.instance_seed`), and return only the flat
:class:`~repro.analysis.metrics.RunMetrics` rows.

Determinism guarantees:

* chunking is a pure function of the instance list and the chunk size —
  never of scheduling order;
* results are merged in sweep order (``chunk index → instance → scheme``),
  so ``run_sweep_parallel(cfg, jobs=8)`` returns exactly the rows of
  ``run_sweep(cfg)`` in the same order, for any job count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict
from typing import List, Optional, Sequence, Tuple

from ..backends import BACKEND_NAMES
from .metrics import RunMetrics
from .sweep import SCHEME_RUNNERS, SweepConfig, instance_specs, materialize_instance

__all__ = ["default_jobs", "chunk_specs", "run_sweep_parallel"]

#: One work unit: the sweep config (as a dict), a list of instance specs and
#: the execution knobs.  Everything inside is plain picklable data.
_ChunkPayload = Tuple[dict, List[Tuple[str, int, int]], Optional[str], str]


def default_jobs() -> int:
    """Job count used for ``jobs=None``: the machine's CPU count."""
    return max(1, os.cpu_count() or 1)


def chunk_specs(
    specs: Sequence[Tuple[str, int, int]], chunk_size: int
) -> List[List[Tuple[str, int, int]]]:
    """Split instance specs into contiguous chunks of at most ``chunk_size``.

    Chunk boundaries depend only on the spec order and the chunk size, so the
    work distribution (and therefore the merged output order) is independent
    of how many workers end up executing the chunks.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [list(specs[i : i + chunk_size]) for i in range(0, len(specs), chunk_size)]


def _run_chunk(payload: _ChunkPayload) -> List[RunMetrics]:
    """Worker entry point: materialise each spec'd instance and run every scheme."""
    config_dict, chunk, backend, trace_level = payload
    config = SweepConfig(**config_dict)
    rows: List[RunMetrics] = []
    for family, size, rep in chunk:
        instance = materialize_instance(config, family, size, rep)
        for scheme in config.schemes:
            rows.append(
                SCHEME_RUNNERS[scheme](instance, backend=backend, trace_level=trace_level)
            )
    return rows


def run_sweep_parallel(
    config: SweepConfig,
    *,
    jobs: Optional[int] = None,
    backend=None,
    trace_level: str = "summary",
    chunk_size: Optional[int] = None,
) -> List[RunMetrics]:
    """Run a sweep with instances fanned out over a process pool.

    Parameters
    ----------
    config:
        The sweep grid; see :class:`~repro.analysis.sweep.SweepConfig`.
    jobs:
        Worker process count (default: CPU count).  ``jobs=1`` runs inline
        without a pool.
    backend / trace_level:
        Forwarded to every scheme runner.  ``backend`` may be a registry name
        or an instance of a registered backend class; instances are reduced
        to their name so only plain data crosses the process boundary (each
        worker rebuilds a default-configured backend — per-instance knobs
        such as ``VectorizedBackend(strict=True)`` do not travel).  Custom
        backend objects outside the registry are rejected: a worker could
        not reconstruct them.
    chunk_size:
        Instances per work unit.  Defaults to ~4 chunks per worker, bounded
        below by 1.  The same config + chunk_size always yields the same
        chunks, whatever the job count.
    """
    unknown = [s for s in config.schemes if s not in SCHEME_RUNNERS]
    if unknown:
        raise ValueError(f"unknown schemes {unknown}; known: {sorted(SCHEME_RUNNERS)}")
    if backend is not None and not isinstance(backend, str):
        name = getattr(backend, "name", None)
        if name not in BACKEND_NAMES:
            raise ValueError(
                f"parallel sweeps need a registered backend name "
                f"{sorted(BACKEND_NAMES)}, got instance {backend!r} with name "
                f"{name!r}; run with jobs=1 to use a custom backend object"
            )
        backend = name
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    specs = instance_specs(config)
    if not specs:
        return []
    if chunk_size is None:
        chunk_size = max(1, (len(specs) + jobs * 4 - 1) // (jobs * 4))
    chunks = chunk_specs(specs, chunk_size)
    payloads: List[_ChunkPayload] = [
        (asdict(config), chunk, backend, trace_level) for chunk in chunks
    ]
    if jobs == 1 or len(chunks) == 1:
        results = [_run_chunk(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            results = list(pool.map(_run_chunk, payloads))
    return [row for chunk_rows in results for row in chunk_rows]

"""Single-pass streaming groupby/aggregate over result rows.

The eager path (``ResultSet.groupby(...)[g].aggregate(col)``) wants every row
columnar in memory; this module answers the same questions from a *stream* of
row dicts — ``store.iter_docs()``, a service scan, a JSONL pipe — holding
only the aggregated column's values per group, so a store too big to
materialize still aggregates in one pass.

The statistical kernel (:func:`compute_stats`) is shared by
``ResultSet.aggregate``, the streaming aggregator and the service
coordinator's ``aggregate`` frames, so all three surfaces return *identical*
numbers for the same rows — including the bootstrap confidence interval,
which resamples with a fixed-seed generator over the values in row order.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .metrics import (
    METRIC_FIELDS,
    METRIC_INT_FIELDS,
    METRIC_OPTIONAL_INT_FIELDS,
)

__all__ = [
    "COLUMN_ALIASES",
    "NUMERIC_COLUMNS",
    "StreamAggregator",
    "compute_stats",
    "resolve_column",
    "resolve_group_columns",
    "status_matches",
    "stream_aggregate",
    "aggregate_result_set",
    "filter_result_set",
]

#: CLI-friendly shorthands for the most-asked-about columns.
COLUMN_ALIASES = {
    "rounds": "completion_round",
    "acks": "acknowledgement_round",
    "bits": "total_message_bits",
}

#: Columns :func:`compute_stats` accepts (ints and optional ints).
NUMERIC_COLUMNS = tuple(METRIC_INT_FIELDS) + tuple(METRIC_OPTIONAL_INT_FIELDS)

#: Bootstrap resamples behind ``ci=True``.
BOOTSTRAP_RESAMPLES = 200


def resolve_column(name: str, *, numeric: bool = True) -> str:
    """Canonical column name for ``name`` (aliases allowed); raises KeyError."""
    resolved = COLUMN_ALIASES.get(name, name)
    allowed = NUMERIC_COLUMNS if numeric else METRIC_FIELDS
    if resolved not in allowed:
        kind = "numeric column" if numeric else "column"
        raise KeyError(
            f"unknown {kind} {name!r}; choose from {sorted(allowed)} "
            f"(aliases: {COLUMN_ALIASES})"
        )
    return resolved


def resolve_group_columns(spec: Union[str, Sequence[str], None]) -> Tuple[str, ...]:
    """Normalize a ``--by`` spec (``"scheme,n"`` or a sequence) to column names."""
    if not spec:
        return ()
    names = spec.split(",") if isinstance(spec, str) else list(spec)
    return tuple(
        resolve_column(name.strip(), numeric=False)
        for name in names if name.strip()
    )


def status_matches(value: str, wanted: str) -> bool:
    """Whether a row's status matches a filter value.

    A bare class like ``error`` matches every ``error:...`` tag (prefix
    semantics); a full string like ``error:ValueError`` — or ``ok`` — still
    matches exactly.
    """
    return value == wanted or value.startswith(wanted + ":")


def compute_stats(
    values: np.ndarray,
    *,
    ci: bool = False,
    seed: int = 0,
) -> Dict[str, float]:
    """Summary statistics of a 1-D numeric array (the shared kernel).

    Returns ``count``/``mean``/``std``/``min``/``p05``/``median``/``p95``/
    ``max`` — every statistic NaN when the array is empty (``count=0``),
    which is how an all-``None`` optional column aggregates without tripping
    on an empty percentile input.  With ``ci=True`` a seeded bootstrap over
    the mean adds ``ci95_low``/``ci95_high`` (:data:`BOOTSTRAP_RESAMPLES`
    resamples; deterministic for a given row order).
    """
    values = np.asarray(values)
    if values.size == 0:
        nan = float("nan")
        out: Dict[str, float] = {
            "count": 0, "mean": nan, "std": nan, "min": nan,
            "p05": nan, "median": nan, "p95": nan, "max": nan,
        }
        if ci:
            out["ci95_low"] = out["ci95_high"] = nan
        return out
    p05, median, p95 = np.percentile(values, (5.0, 50.0, 95.0))
    out = {
        "count": int(values.size),
        "mean": float(values.mean()),
        "std": float(values.std()),
        "min": float(values.min()),
        "p05": float(p05),
        "median": float(median),
        "p95": float(p95),
        "max": float(values.max()),
    }
    if ci:
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, values.size,
                           size=(BOOTSTRAP_RESAMPLES, values.size))
        means = values[idx].mean(axis=1)
        low, high = np.percentile(means, (2.5, 97.5))
        out["ci95_low"] = float(low)
        out["ci95_high"] = float(high)
    return out


class StreamAggregator:
    """Accumulate one numeric column, grouped, from a stream of row dicts.

    Memory is O(groups + values of the aggregated column): the group keys and
    the aggregated values are retained (percentiles are exact, not sketched),
    every other column of every row is dropped on sight.  Groups report in
    first-seen order, matching ``ResultSet.groupby``.
    """

    def __init__(
        self,
        column: str,
        by: Sequence[str] = (),
        *,
        ci: bool = False,
        seed: int = 0,
    ) -> None:
        self.column = resolve_column(column)
        self.by = tuple(resolve_column(b, numeric=False) for b in by)
        self.ci = bool(ci)
        self.seed = int(seed)
        self.rows_seen = 0
        self._groups: Dict[Tuple, List[int]] = {}

    def add(self, row: Mapping[str, Any]) -> None:
        """Fold one row dict (``None`` cells of the column are skipped)."""
        self.rows_seen += 1
        key = tuple(row.get(b) for b in self.by)
        bucket = self._groups.get(key)
        if bucket is None:
            bucket = self._groups[key] = []
        value = row.get(self.column)
        if value is not None:
            bucket.append(value)

    def result(self) -> List[Dict[str, Any]]:
        """Per-group stats, first-seen order: ``[{"by": {...}, "stats": {...}}]``."""
        out = []
        for key, values in self._groups.items():
            array = np.asarray(values, dtype=np.int64) if values else \
                np.empty(0, dtype=np.int64)
            out.append({
                "by": dict(zip(self.by, key)),
                "stats": compute_stats(array, ci=self.ci, seed=self.seed),
            })
        return out


def stream_aggregate(
    rows: Iterable[Mapping[str, Any]],
    column: str,
    by: Sequence[str] = (),
    *,
    ci: bool = False,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """One-pass groupby/aggregate over an iterable of row dicts.

    ``rows`` may be plain row dicts or full store documents (anything with a
    ``"row"`` key is unwrapped), so ``stream_aggregate(store.iter_docs(), ...)``
    works directly.
    """
    agg = StreamAggregator(column, by, ci=ci, seed=seed)
    for row in rows:
        inner = row.get("row")
        agg.add(inner if isinstance(inner, Mapping) else row)
    return agg.result()


def aggregate_result_set(
    rows: Any,
    column: str,
    by: Sequence[str] = (),
    *,
    ci: bool = False,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Groupby/aggregate a :class:`~repro.store.ResultSet` (the eager twin).

    Touches only the ``by`` columns and the aggregated column — against a
    lazy columnar-backed result set this reads exactly those column blocks.
    Output shape and numbers match :func:`stream_aggregate` over the same
    rows.
    """
    column = resolve_column(column)
    by = tuple(resolve_column(b, numeric=False) for b in by)
    if by:
        groups = rows.groupby(*by)
        items = [
            (key if len(by) > 1 else (key,), sub) for key, sub in groups.items()
        ]
    else:
        items = [((), rows)]
    return [
        {"by": dict(zip(by, key)),
         "stats": sub.aggregate(column, ci=ci, seed=seed)}
        for key, sub in items
    ]


def filter_result_set(
    rows: Any,
    *,
    schemes: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
    status: Optional[str] = None,
) -> Any:
    """The service/CLI row filters, vectorized over a ResultSet.

    Column-only: no row materialization, so a lazy columnar set stays lazy in
    every untouched column.  ``status`` uses :func:`status_matches` semantics
    (``error`` is a prefix class).
    """
    keep = np.ones(len(rows), dtype=bool)
    if schemes:
        keep &= np.isin(rows.column("scheme"), list(schemes))
    if families:
        keep &= np.isin(rows.column("family"), list(families))
    if sizes:
        keep &= np.isin(rows.column("n"), [int(s) for s in sizes])
    if status:
        col = rows.column("status")
        keep &= (col == status) | np.char.startswith(col, status + ":")
    return rows.where(keep)

"""Columnar result container: NumPy-backed typed columns over RunMetrics rows.

``run_grid`` used to return a plain ``list`` of
:class:`~repro.analysis.metrics.RunMetrics`, which every consumer then
re-looped: the report renderer, the comparison tables, the benchmark
assertions.  A :class:`ResultSet` stores the same rows as typed columns —
``int64`` arrays for counters, ``int64`` + validity mask for optional rounds,
unicode arrays for tags — so filtering, grouping and aggregating are
vectorized, while the sequence protocol (`len`, indexing, iteration,
equality with row lists) keeps every existing list consumer working
unchanged.

Columns are fetched through a *provider*: the eager in-memory provider backs
``ResultSet(rows)`` exactly as before, while a store with binary columnar
segments (see :mod:`repro.store.columnar`) hands out a gather provider over
its mmapped segments — same public API, but a column's bytes are only read
when that column is first touched, so ``rows().aggregate("completion_round")``
on a 10⁶-row columnar store never materializes the other fourteen columns.
Selections (``filter``/``groupby``/slicing) stay lazy too: they index into
the parent's columns on demand.

Round-trips are lossless in both directions: ``ResultSet(rows).to_rows()``
reproduces the input rows bit for bit (``Optional[int]`` fields included),
and :meth:`to_jsonl` / :meth:`from_jsonl` is the interchange format of the
on-disk :class:`~repro.store.store.ResultStore`.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..analysis.metrics import (
    METRIC_FIELDS,
    METRIC_INT_FIELDS,
    METRIC_OPTIONAL_INT_FIELDS,
    METRIC_STRING_FIELDS,
    RunMetrics,
)

__all__ = ["ResultSet"]

_FIELDS: Tuple[str, ...] = METRIC_FIELDS
#: Short string tags.
_STRING_FIELDS = METRIC_STRING_FIELDS
#: ``Optional[int]`` fields: stored as int64 + a boolean validity mask.
_OPTIONAL_INT_FIELDS = METRIC_OPTIONAL_INT_FIELDS
_INT_FIELDS = METRIC_INT_FIELDS


def _row_dict_to_metrics(doc: Mapping[str, Any]) -> RunMetrics:
    """Rebuild a :class:`RunMetrics` from a plain dict (unknown keys ignored).

    Missing fields fall back to the dataclass defaults, so rows written by an
    older schema load cleanly (their cache keys never match anyway).
    """
    return RunMetrics(**{k: doc[k] for k in _FIELDS if k in doc})


class _EagerSource:
    """The in-memory column provider: typed arrays built from rows up front."""

    def __init__(self, rows: List[RunMetrics]) -> None:
        n = len(rows)
        self.length = n
        columns: Dict[str, np.ndarray] = {}
        masks: Dict[str, np.ndarray] = {}
        for name in _STRING_FIELDS:
            columns[name] = np.array([getattr(r, name) for r in rows], dtype=np.str_)
        for name in _INT_FIELDS:
            columns[name] = np.fromiter(
                (getattr(r, name) for r in rows), dtype=np.int64, count=n
            )
        for name in _OPTIONAL_INT_FIELDS:
            values = [getattr(r, name) for r in rows]
            masks[name] = np.fromiter(
                (v is not None for v in values), dtype=bool, count=n
            )
            columns[name] = np.fromiter(
                (0 if v is None else v for v in values), dtype=np.int64, count=n
            )
        self.columns = columns
        self.masks = masks

    def get_column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def get_mask(self, name: str) -> np.ndarray:
        return self.masks[name]


class _GatherSource:
    """A lazy gather over several column sources (mmapped segments + eager).

    ``source_ids[i]``/``local_rows[i]`` place final row ``i`` at a row of one
    source; a column is assembled only when requested, source by source, so
    untouched columns of untouched sources never leave the page cache.
    """

    def __init__(self, sources: List[Any], source_ids: np.ndarray,
                 local_rows: np.ndarray) -> None:
        self.sources = sources
        self.source_ids = source_ids
        self.local_rows = local_rows
        self.length = int(source_ids.size)

    def _assemble(self, parts: List[np.ndarray]) -> np.ndarray:
        if len(parts) == 1 and np.array_equal(
                self.local_rows, np.arange(self.length)):
            return np.asarray(parts[0])
        dtype = np.result_type(*parts) if parts else np.int64
        out = np.empty(self.length, dtype=dtype)
        for sid, part in enumerate(parts):
            here = self.source_ids == sid
            out[here] = part[self.local_rows[here]]
        return out

    def get_column(self, name: str) -> np.ndarray:
        return self._assemble([src.get_column(name) for src in self.sources])

    def get_mask(self, name: str) -> np.ndarray:
        return self._assemble([src.get_mask(name) for src in self.sources])


class _SelectionSource:
    """Columns of a parent ResultSet, gathered through an index (lazily)."""

    def __init__(self, parent: "ResultSet", index: np.ndarray) -> None:
        self.parent = parent
        self.index = index
        self.length = int(index.size)

    def get_column(self, name: str) -> np.ndarray:
        return self.parent._col(name)[self.index]

    def get_mask(self, name: str) -> np.ndarray:
        return self.parent._mask(name)[self.index]


class ResultSet(Sequence):
    """An immutable, columnar sequence of :class:`RunMetrics` rows."""

    def __init__(self, rows: Iterable[RunMetrics] = ()) -> None:
        source = _EagerSource(list(rows))
        self._length = source.length
        self._columns: Dict[str, np.ndarray] = source.columns
        self._masks: Dict[str, np.ndarray] = source.masks
        self._source: Optional[Any] = None
        self._row_cache: Optional[List[RunMetrics]] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(cls, rows: Iterable[RunMetrics]) -> "ResultSet":
        """Build a result set from RunMetrics rows (alias of the constructor)."""
        return cls(rows)

    @classmethod
    def from_dicts(cls, docs: Iterable[Mapping[str, Any]]) -> "ResultSet":
        """Build a result set from plain row dicts (e.g. parsed JSON)."""
        return cls(_row_dict_to_metrics(doc) for doc in docs)

    @classmethod
    def from_jsonl(cls, text: str) -> "ResultSet":
        """Parse JSON-lines text (one row object per line) into a result set."""
        return cls.from_dicts(
            json.loads(line) for line in text.splitlines() if line.strip()
        )

    @classmethod
    def _from_source(cls, source: Any) -> "ResultSet":
        """Wrap a column provider (lazy: columns load on first touch)."""
        out = cls.__new__(cls)
        out._length = int(source.length)
        out._columns = {}
        out._masks = {}
        out._source = source
        out._row_cache = None
        return out

    @classmethod
    def _from_selection(cls, parent: "ResultSet", index: np.ndarray) -> "ResultSet":
        if parent._source is None:
            out = cls.__new__(cls)
            out._length = int(index.size)
            out._columns = {k: v[index] for k, v in parent._columns.items()}
            out._masks = {k: v[index] for k, v in parent._masks.items()}
            out._source = None
            out._row_cache = None
            return out
        return cls._from_source(_SelectionSource(parent, index))

    # ------------------------------------------------------------------ #
    # column access plumbing (cache in front of the provider)
    # ------------------------------------------------------------------ #
    def _col(self, name: str) -> np.ndarray:
        arr = self._columns.get(name)
        if arr is None:
            arr = self._source.get_column(name)
            self._columns[name] = arr
        return arr

    def _mask(self, name: str) -> np.ndarray:
        arr = self._masks.get(name)
        if arr is None:
            arr = self._source.get_mask(name)
            self._masks[name] = arr
        return arr

    # ------------------------------------------------------------------ #
    # sequence protocol (the list-compatible shim)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._length

    def _materialize_row(self, i: int) -> RunMetrics:
        kwargs: Dict[str, Any] = {}
        for name in _STRING_FIELDS:
            kwargs[name] = str(self._col(name)[i])
        for name in _INT_FIELDS:
            kwargs[name] = int(self._col(name)[i])
        for name in _OPTIONAL_INT_FIELDS:
            kwargs[name] = int(self._col(name)[i]) if self._mask(name)[i] else None
        return RunMetrics(**kwargs)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return ResultSet._from_selection(
                self, np.arange(self._length, dtype=np.intp)[index]
            )
        i = int(index)
        if i < 0:
            i += self._length
        if not 0 <= i < self._length:
            raise IndexError(f"row {index} not in a {self._length}-row ResultSet")
        if self._row_cache is not None:
            return self._row_cache[i]
        return self._materialize_row(i)

    def __iter__(self) -> Iterator[RunMetrics]:
        return iter(self.to_rows())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResultSet):
            return self.to_rows() == other.to_rows()
        if isinstance(other, (list, tuple)):
            return self.to_rows() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        schemes = sorted(set(self._col("scheme").tolist())) if self._length else []
        return f"ResultSet({self._length} rows, schemes={schemes})"

    # ------------------------------------------------------------------ #
    # columnar access
    # ------------------------------------------------------------------ #
    @property
    def fields(self) -> Tuple[str, ...]:
        """The row schema, in :class:`RunMetrics` field order."""
        return _FIELDS

    def column(self, name: str) -> np.ndarray:
        """The typed column for ``name``.

        Counters and tags come back as ``int64`` / unicode arrays;
        ``Optional[int]`` fields come back as ``float64`` with ``NaN`` marking
        ``None`` (the lossless integer view is :meth:`column_with_mask`).
        """
        if name not in _FIELDS:
            raise KeyError(f"unknown column {name!r}; columns: {list(_FIELDS)}")
        values = self._col(name)
        if name in _OPTIONAL_INT_FIELDS:
            out = values.astype(np.float64)
            out[~self._mask(name)] = np.nan
            return out
        return values.copy()

    def column_with_mask(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """An optional-int column as ``(int64 values, bool validity mask)``."""
        if name not in _OPTIONAL_INT_FIELDS:
            raise KeyError(
                f"{name!r} is not an optional column; optional columns: "
                f"{list(_OPTIONAL_INT_FIELDS)}"
            )
        return self._col(name).copy(), self._mask(name).copy()

    def where(self, mask: np.ndarray) -> "ResultSet":
        """Rows where a boolean mask (length = ``len(self)``) is True.

        The columnar escape hatch for conditions :meth:`filter` cannot
        express without materializing rows — build the mask from
        :meth:`column` arrays and select in one vectorized step.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._length,):
            raise ValueError(
                f"mask shape {mask.shape} does not match {self._length} rows"
            )
        return ResultSet._from_selection(self, np.flatnonzero(mask))

    def filter(
        self,
        predicate: Optional[Callable[[RunMetrics], bool]] = None,
        **field_equals: Any,
    ) -> "ResultSet":
        """Rows matching every ``field == value`` constraint (vectorized).

        ``predicate`` (row → bool) composes with the field constraints for
        conditions a column equality cannot express.
        """
        keep = np.ones(self._length, dtype=bool)
        for name, value in field_equals.items():
            if name not in _FIELDS:
                raise KeyError(f"unknown column {name!r}; columns: {list(_FIELDS)}")
            if name in _OPTIONAL_INT_FIELDS:
                if value is None:
                    keep &= ~self._mask(name)
                else:
                    keep &= self._mask(name) & (self._col(name) == int(value))
            else:
                keep &= self._col(name) == value
        if predicate is not None:
            rows = self.to_rows()
            keep &= np.fromiter(
                (bool(predicate(rows[i])) for i in range(self._length)),
                dtype=bool,
                count=self._length,
            )
        return ResultSet._from_selection(self, np.flatnonzero(keep))

    def groupby(self, *names: str) -> Dict[Any, "ResultSet"]:
        """Split into sub-sets keyed by the given columns, in first-seen order.

        A single column name keys by its scalar values; several names key by
        tuples.  Only the named columns are touched (a lazy columnar set
        never loads the rest).
        """
        if not names:
            raise ValueError("groupby needs at least one column name")
        key_cols: List[List[Any]] = []
        for name in names:
            if name not in _FIELDS:
                raise KeyError(f"unknown column {name!r}; columns: {list(_FIELDS)}")
            values = self._col(name).tolist()
            if name in _OPTIONAL_INT_FIELDS:
                mask = self._mask(name).tolist()
                values = [v if m else None for v, m in zip(values, mask)]
            key_cols.append(values)
        buckets: Dict[Any, List[int]] = {}
        if len(names) == 1:
            for i, key in enumerate(key_cols[0]):
                buckets.setdefault(key, []).append(i)
        else:
            for i, key in enumerate(zip(*key_cols)):
                buckets.setdefault(key, []).append(i)
        return {
            key: ResultSet._from_selection(self, np.asarray(index, dtype=np.intp))
            for key, index in buckets.items()
        }

    def aggregate(self, name: str, *, ci: bool = False, seed: int = 0) -> Dict[str, float]:
        """Summary statistics of a numeric column (``None`` cells skipped).

        Returns ``count``/``mean``/``std``/``min``/``p05``/``median``/
        ``p95``/``max`` (all-NaN with ``count=0`` when every cell is
        ``None``); ``ci=True`` adds a seeded-bootstrap ``ci95_low``/
        ``ci95_high`` over the mean.  The statistical kernel is shared with
        :mod:`repro.analysis.stream`, so eager, streaming and service-side
        aggregates agree bit for bit.
        """
        from ..analysis.stream import compute_stats

        values = self.column(name)
        if values.dtype.kind not in "fiu":
            raise TypeError(f"column {name!r} is not numeric")
        values = values[~np.isnan(values)] if values.dtype.kind == "f" else values
        return compute_stats(values, ci=ci, seed=seed)

    # ------------------------------------------------------------------ #
    # export / round-trip
    # ------------------------------------------------------------------ #
    def to_rows(self) -> List[RunMetrics]:
        """Materialise the rows (cached; the round-trip is lossless)."""
        if self._row_cache is None:
            self._row_cache = [
                self._materialize_row(i) for i in range(self._length)
            ]
        return list(self._row_cache)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Plain-dict rows in field order (the report/export schema)."""
        return [row.as_dict() for row in self.to_rows()]

    def to_json(self, *, indent: int = 2) -> str:
        """The rows as one JSON array (matches ``metrics_to_json``)."""
        return json.dumps(self.to_dicts(), indent=indent)

    def to_jsonl(self) -> str:
        """The rows as JSON-lines text (one object per line, store format)."""
        return "".join(
            json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
            for doc in self.to_dicts()
        )

    def to_csv(self) -> str:
        """The rows as CSV text (``None`` cells left empty).

        The header row is always present, even for an empty set, so exports
        from a fresh store still concatenate and parse as CSV downstream.
        """
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(_FIELDS), lineterminator="\n")
        writer.writeheader()
        for doc in self.to_dicts():
            writer.writerow({k: ("" if v is None else v) for k, v in doc.items()})
        return buffer.getvalue()

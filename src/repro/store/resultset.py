"""Columnar result container: NumPy-backed typed columns over RunMetrics rows.

``run_grid`` used to return a plain ``list`` of
:class:`~repro.analysis.metrics.RunMetrics`, which every consumer then
re-looped: the report renderer, the comparison tables, the benchmark
assertions.  A :class:`ResultSet` stores the same rows as typed columns —
``int64`` arrays for counters, ``int64`` + validity mask for optional rounds,
unicode arrays for tags — so filtering, grouping and aggregating are
vectorized, while the sequence protocol (`len`, indexing, iteration,
equality with row lists) keeps every existing list consumer working
unchanged.

Round-trips are lossless in both directions: ``ResultSet(rows).to_rows()``
reproduces the input rows bit for bit (``Optional[int]`` fields included),
and :meth:`to_jsonl` / :meth:`from_jsonl` is the interchange format of the
on-disk :class:`~repro.store.store.ResultStore`.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence
from dataclasses import fields as dataclass_fields
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..analysis.metrics import RunMetrics

__all__ = ["ResultSet"]

_FIELDS: Tuple[str, ...] = tuple(f.name for f in dataclass_fields(RunMetrics))
#: Short string tags.
_STRING_FIELDS = ("scheme", "family", "fault", "clock", "backend", "status")
#: ``Optional[int]`` fields: stored as int64 + a boolean validity mask.
_OPTIONAL_INT_FIELDS = ("completion_round", "bound", "acknowledgement_round")
_INT_FIELDS = tuple(
    f for f in _FIELDS if f not in _STRING_FIELDS and f not in _OPTIONAL_INT_FIELDS
)


def _row_dict_to_metrics(doc: Mapping[str, Any]) -> RunMetrics:
    """Rebuild a :class:`RunMetrics` from a plain dict (unknown keys ignored).

    Missing fields fall back to the dataclass defaults, so rows written by an
    older schema load cleanly (their cache keys never match anyway).
    """
    return RunMetrics(**{k: doc[k] for k in _FIELDS if k in doc})


class ResultSet(Sequence):
    """An immutable, columnar sequence of :class:`RunMetrics` rows."""

    def __init__(self, rows: Iterable[RunMetrics] = ()) -> None:
        rows = list(rows)
        n = len(rows)
        columns: Dict[str, np.ndarray] = {}
        masks: Dict[str, np.ndarray] = {}
        for name in _STRING_FIELDS:
            columns[name] = np.array([getattr(r, name) for r in rows], dtype=np.str_)
        for name in _INT_FIELDS:
            columns[name] = np.fromiter(
                (getattr(r, name) for r in rows), dtype=np.int64, count=n
            )
        for name in _OPTIONAL_INT_FIELDS:
            values = [getattr(r, name) for r in rows]
            masks[name] = np.fromiter(
                (v is not None for v in values), dtype=bool, count=n
            )
            columns[name] = np.fromiter(
                (0 if v is None else v for v in values), dtype=np.int64, count=n
            )
        self._length = n
        self._columns = columns
        self._masks = masks
        self._row_cache: Optional[List[RunMetrics]] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(cls, rows: Iterable[RunMetrics]) -> "ResultSet":
        """Build a result set from RunMetrics rows (alias of the constructor)."""
        return cls(rows)

    @classmethod
    def from_dicts(cls, docs: Iterable[Mapping[str, Any]]) -> "ResultSet":
        """Build a result set from plain row dicts (e.g. parsed JSON)."""
        return cls(_row_dict_to_metrics(doc) for doc in docs)

    @classmethod
    def from_jsonl(cls, text: str) -> "ResultSet":
        """Parse JSON-lines text (one row object per line) into a result set."""
        return cls.from_dicts(
            json.loads(line) for line in text.splitlines() if line.strip()
        )

    @classmethod
    def _from_selection(cls, parent: "ResultSet", index: np.ndarray) -> "ResultSet":
        out = cls.__new__(cls)
        out._length = int(index.size)
        out._columns = {k: v[index] for k, v in parent._columns.items()}
        out._masks = {k: v[index] for k, v in parent._masks.items()}
        out._row_cache = None
        return out

    # ------------------------------------------------------------------ #
    # sequence protocol (the list-compatible shim)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._length

    def _materialize_row(self, i: int) -> RunMetrics:
        kwargs: Dict[str, Any] = {}
        for name in _STRING_FIELDS:
            kwargs[name] = str(self._columns[name][i])
        for name in _INT_FIELDS:
            kwargs[name] = int(self._columns[name][i])
        for name in _OPTIONAL_INT_FIELDS:
            kwargs[name] = int(self._columns[name][i]) if self._masks[name][i] else None
        return RunMetrics(**kwargs)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return ResultSet._from_selection(
                self, np.arange(self._length, dtype=np.intp)[index]
            )
        i = int(index)
        if i < 0:
            i += self._length
        if not 0 <= i < self._length:
            raise IndexError(f"row {index} not in a {self._length}-row ResultSet")
        if self._row_cache is not None:
            return self._row_cache[i]
        return self._materialize_row(i)

    def __iter__(self) -> Iterator[RunMetrics]:
        return iter(self.to_rows())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResultSet):
            return self.to_rows() == other.to_rows()
        if isinstance(other, (list, tuple)):
            return self.to_rows() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        schemes = sorted(set(self._columns["scheme"].tolist())) if self._length else []
        return f"ResultSet({self._length} rows, schemes={schemes})"

    # ------------------------------------------------------------------ #
    # columnar access
    # ------------------------------------------------------------------ #
    @property
    def fields(self) -> Tuple[str, ...]:
        """The row schema, in :class:`RunMetrics` field order."""
        return _FIELDS

    def column(self, name: str) -> np.ndarray:
        """The typed column for ``name``.

        Counters and tags come back as ``int64`` / unicode arrays;
        ``Optional[int]`` fields come back as ``float64`` with ``NaN`` marking
        ``None`` (the lossless integer view is :meth:`column_with_mask`).
        """
        if name not in _FIELDS:
            raise KeyError(f"unknown column {name!r}; columns: {list(_FIELDS)}")
        values = self._columns[name]
        if name in _OPTIONAL_INT_FIELDS:
            out = values.astype(np.float64)
            out[~self._masks[name]] = np.nan
            return out
        return values.copy()

    def column_with_mask(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """An optional-int column as ``(int64 values, bool validity mask)``."""
        if name not in _OPTIONAL_INT_FIELDS:
            raise KeyError(
                f"{name!r} is not an optional column; optional columns: "
                f"{list(_OPTIONAL_INT_FIELDS)}"
            )
        return self._columns[name].copy(), self._masks[name].copy()

    def filter(
        self,
        predicate: Optional[Callable[[RunMetrics], bool]] = None,
        **field_equals: Any,
    ) -> "ResultSet":
        """Rows matching every ``field == value`` constraint (vectorized).

        ``predicate`` (row → bool) composes with the field constraints for
        conditions a column equality cannot express.
        """
        keep = np.ones(self._length, dtype=bool)
        for name, value in field_equals.items():
            if name not in _FIELDS:
                raise KeyError(f"unknown column {name!r}; columns: {list(_FIELDS)}")
            if name in _OPTIONAL_INT_FIELDS:
                if value is None:
                    keep &= ~self._masks[name]
                else:
                    keep &= self._masks[name] & (self._columns[name] == int(value))
            else:
                keep &= self._columns[name] == value
        if predicate is not None:
            rows = self.to_rows()
            keep &= np.fromiter(
                (bool(predicate(rows[i])) for i in range(self._length)),
                dtype=bool,
                count=self._length,
            )
        return ResultSet._from_selection(self, np.flatnonzero(keep))

    def groupby(self, *names: str) -> Dict[Any, "ResultSet"]:
        """Split into sub-sets keyed by the given columns, in first-seen order.

        A single column name keys by its scalar values; several names key by
        tuples.
        """
        if not names:
            raise ValueError("groupby needs at least one column name")
        for name in names:
            if name not in _FIELDS:
                raise KeyError(f"unknown column {name!r}; columns: {list(_FIELDS)}")
        rows = self.to_rows()
        buckets: Dict[Any, List[int]] = {}
        for i, row in enumerate(rows):
            key = (
                getattr(row, names[0])
                if len(names) == 1
                else tuple(getattr(row, n) for n in names)
            )
            buckets.setdefault(key, []).append(i)
        return {
            key: ResultSet._from_selection(self, np.asarray(index, dtype=np.intp))
            for key, index in buckets.items()
        }

    def aggregate(self, name: str) -> Dict[str, float]:
        """Mean / min / max / count of a numeric column (``None`` cells skipped)."""
        values = self.column(name)
        if values.dtype.kind not in "fiu":
            raise TypeError(f"column {name!r} is not numeric")
        values = values[~np.isnan(values)] if values.dtype.kind == "f" else values
        if values.size == 0:
            return {"mean": float("nan"), "min": float("nan"),
                    "max": float("nan"), "count": 0}
        return {
            "mean": float(values.mean()),
            "min": float(values.min()),
            "max": float(values.max()),
            "count": int(values.size),
        }

    # ------------------------------------------------------------------ #
    # export / round-trip
    # ------------------------------------------------------------------ #
    def to_rows(self) -> List[RunMetrics]:
        """Materialise the rows (cached; the round-trip is lossless)."""
        if self._row_cache is None:
            self._row_cache = [
                self._materialize_row(i) for i in range(self._length)
            ]
        return list(self._row_cache)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Plain-dict rows in field order (the report/export schema)."""
        return [row.as_dict() for row in self.to_rows()]

    def to_json(self, *, indent: int = 2) -> str:
        """The rows as one JSON array (matches ``metrics_to_json``)."""
        return json.dumps(self.to_dicts(), indent=indent)

    def to_jsonl(self) -> str:
        """The rows as JSON-lines text (one object per line, store format)."""
        return "".join(
            json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
            for doc in self.to_dicts()
        )

    def to_csv(self) -> str:
        """The rows as CSV text (``None`` cells left empty).

        The header row is always present, even for an empty set, so exports
        from a fresh store still concatenate and parse as CSV downstream.
        """
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(_FIELDS), lineterminator="\n")
        writer.writeheader()
        for doc in self.to_dicts():
            writer.writerow({k: ("" if v is None else v) for k, v in doc.items()})
        return buffer.getvalue()

"""Segment compaction: garbage-collect a result store in place.

An append-only store accumulates three kinds of dead bytes over its life:
duplicate lines for one key (concurrent writers racing the same cell),
retired-schema lines left behind by a schema bump, and junk from repaired
torn tails (hard-killed writers).  :func:`compact_store` rewrites each
segment down to exactly one line per live key — the *winning* (last valid)
line, kept byte-for-byte verbatim, in first-appended key order — so
compaction never changes the row bytes, keys or resume semantics of the
store, only removes lines that no read could ever serve.

Each segment is rewritten atomically (write temp + fsync + rename) under its
exclusive advisory lock, so concurrent writers in other processes either
append before the rename (their lines are compacted too) or after it (their
appends land in the new file); nothing is lost either way.  Segments that are
already clean are left untouched — running compaction twice is byte-stable.
Sidecar offset indexes are refreshed to cover the compacted segments.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Union

from .index import SegmentIndex, index_path, write_segment_index
from .keys import SCHEMA_VERSION
from .store import (
    _FORMAT,
    _KEY_RE,
    _META_NAME,
    _SEGMENTS_DIR,
    StoreError,
    _unlock,
    locked_segment_fd,
)

__all__ = ["compact_store"]


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _compact_segment(path: Path) -> Dict[str, int]:
    """Compact one segment under its lock; returns per-segment stats."""
    try:
        fd = locked_segment_fd(path)
    except OSError:
        return {}
    try:
        size = os.fstat(fd).st_size
        data = os.pread(fd, size, 0)
        winners: Dict[str, bytes] = {}
        order: List[str] = []
        duplicates = stale = junk = 0
        pos = 0
        while pos < len(data):
            newline = data.find(b"\n", pos)
            end = len(data) if newline == -1 else newline + 1
            raw = data[pos:end]
            pos = end
            stripped = raw.strip()
            if not stripped:
                junk += 1
                continue
            try:
                doc = json.loads(stripped)
                key, row = doc["key"], doc["row"]
            except (ValueError, KeyError, TypeError):
                junk += 1
                continue
            if row is None or not isinstance(key, str) or not _KEY_RE.fullmatch(key):
                junk += 1
                continue
            if doc.get("schema", 0) != SCHEMA_VERSION:
                stale += 1
                continue
            if key in winners:
                duplicates += 1
            else:
                order.append(key)
            if not raw.endswith(b"\n"):
                raw += b"\n"
            winners[key] = raw
        stats = {
            "segments": 1,
            "rows_kept": len(order),
            "duplicates_dropped": duplicates,
            "stale_dropped": stale,
            "junk_dropped": junk,
            "bytes_before": size,
            "segments_rewritten": 0,
            "segments_removed": 0,
        }
        if not order:
            # Nothing live: drop the segment (and its sidecar) entirely.
            os.unlink(path)
            index_path(path).unlink(missing_ok=True)
            _fsync_dir(path.parent)
            stats["segments_removed"] = 1
            stats["bytes_after"] = 0
            return stats
        new_data = b"".join(winners[key] for key in order)
        if new_data != data:
            tmp = path.with_name(path.name + ".tmp")
            with open(tmp, "wb") as handle:
                handle.write(new_data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_dir(path.parent)
            stats["segments_rewritten"] = 1
        # else: already clean — repeat compactions are byte-stable and only
        # the sidecar may need refreshing.
        offsets: List[int] = []
        lengths: List[int] = []
        cursor = 0
        for key in order:
            offsets.append(cursor)
            lengths.append(len(winners[key]))
            cursor += lengths[-1]
        try:
            write_segment_index(path, SegmentIndex(
                segment_bytes=len(new_data),
                schema=SCHEMA_VERSION,
                skipped=0,
                stale=0,
                keys=order,
                offsets=offsets,
                lengths=lengths,
            ))
        except OSError:
            pass
        stats["bytes_after"] = len(new_data)
        return stats
    finally:
        _unlock(fd)
        os.close(fd)


def compact_store(root: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Compact every segment of the store at ``root``; returns summary stats.

    Raises :class:`StoreError` when ``root`` is not a result store.  The
    returned dict reports ``segments`` seen, ``segments_rewritten`` /
    ``segments_removed``, ``rows_kept`` and the ``duplicates_dropped`` /
    ``stale_dropped`` / ``junk_dropped`` line counts, plus ``bytes_before``
    and ``bytes_after``.
    """
    root = Path(root)
    meta_path = root / _META_NAME
    if not meta_path.is_file():
        raise StoreError(f"no result store at {root}")
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, ValueError) as exc:
        raise StoreError(f"unreadable store metadata {meta_path}: {exc}") from exc
    if meta.get("format") != _FORMAT:
        raise StoreError(
            f"{root} is not a repro result store (format={meta.get('format')!r})"
        )
    totals: Dict[str, Any] = {
        "path": str(root),
        "segments": 0,
        "segments_rewritten": 0,
        "segments_removed": 0,
        "rows_kept": 0,
        "duplicates_dropped": 0,
        "stale_dropped": 0,
        "junk_dropped": 0,
        "bytes_before": 0,
        "bytes_after": 0,
    }
    segments = root / _SEGMENTS_DIR
    if not segments.is_dir():
        return totals
    for path in sorted(segments.glob("*.jsonl")):
        for field, value in _compact_segment(path).items():
            totals[field] += value
    return totals

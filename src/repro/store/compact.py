"""Segment compaction: garbage-collect a result store in place.

An append-only store accumulates three kinds of dead bytes over its life:
duplicate lines for one key (concurrent writers racing the same cell),
retired-schema lines left behind by a schema bump, and junk from repaired
torn tails (hard-killed writers).  :func:`compact_store` rewrites each
segment down to exactly one line per live key — the *winning* (last valid)
line, kept byte-for-byte verbatim, in first-appended key order — so
compaction never changes the row bytes, keys or resume semantics of the
store, only removes lines that no read could ever serve.

``format="columnar"`` compacts each shard's winners into a binary columnar
segment instead (``<xy>.colseg``, :mod:`repro.store.columnar`): JSONL rows
are merged over any existing columnar rows (JSONL is always the newer
generation), the merged winners are written as column blocks, and the JSONL
file is removed — all under the shard's lock, so concurrent appends land
either in the compacted generation or in a fresh JSONL file next to it.
``format="jsonl"`` is the inverse: columnar segments are expanded back to
canonical JSONL lines (bit-exact for rows written by this store), restoring
a plain-JSONL store.  A shard whose rows cannot be represented columnar-ly
(hand-edited documents) is left as compacted JSONL and counted in
``segments_unconverted`` — never half-converted.

Each rewrite is atomic (write temp + fsync + rename) under the shard's
exclusive advisory lock, so concurrent writers in other processes either
append before the rename (their lines are compacted too) or after it (their
appends land in the new file); nothing is lost either way.  Segments that
are already clean are left untouched — running compaction twice is
byte-stable.  Sidecar offset indexes are refreshed to cover compacted JSONL
segments; columnar segments are self-indexing.  Columnar segments that fail
validation (torn tail from a killed rewrite) are quarantined junk and are
dropped here.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from .columnar import (
    COLUMNAR_MAGIC,
    COLUMNAR_SUFFIX,
    ColumnarError,
    ColumnarSegment,
    write_columnar_segment,
)
from .index import SegmentIndex, index_path, write_segment_index
from .keys import SCHEMA_VERSION
from .store import (
    _FORMAT,
    _KEY_RE,
    _META_NAME,
    _SEGMENTS_DIR,
    StoreError,
    _unlock,
    locked_segment_fd,
)

__all__ = ["compact_store"]

_FORMATS = ("jsonl", "columnar")


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _canonical_line(doc: Dict[str, Any]) -> bytes:
    return (json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


class _Winners:
    """Merged winning documents for one shard, in first-appended key order."""

    def __init__(self) -> None:
        self.order: List[str] = []
        self.lines: Dict[str, bytes] = {}
        self.docs: Dict[str, Dict[str, Any]] = {}
        self.duplicates = 0
        self.stale = 0
        self.junk = 0

    def record(self, key: str, line: bytes, doc: Dict[str, Any]) -> None:
        if key in self.lines:
            self.duplicates += 1
        else:
            self.order.append(key)
        self.lines[key] = line
        self.docs[key] = doc

    def add_jsonl(self, data: bytes) -> None:
        """Fold segment bytes in, later lines winning (byte-verbatim)."""
        pos = 0
        while pos < len(data):
            newline = data.find(b"\n", pos)
            end = len(data) if newline == -1 else newline + 1
            raw = data[pos:end]
            pos = end
            stripped = raw.strip()
            if not stripped:
                self.junk += 1
                continue
            try:
                doc = json.loads(stripped)
                key, row = doc["key"], doc["row"]
            except (ValueError, KeyError, TypeError):
                self.junk += 1
                continue
            if row is None or not isinstance(key, str) or not _KEY_RE.fullmatch(key):
                self.junk += 1
                continue
            if doc.get("schema", 0) != SCHEMA_VERSION:
                self.stale += 1
                continue
            if not raw.endswith(b"\n"):
                raw += b"\n"
            self.record(key, raw, doc)

    def add_columnar(self, path: Path) -> bool:
        """Fold a columnar segment in; False when it fails validation."""
        try:
            segment = ColumnarSegment(path)
        except (OSError, ColumnarError):
            return False
        with segment:
            for doc in segment.iter_docs():
                self.record(doc["key"], _canonical_line(doc), doc)
        return True

    def jsonl_bytes(self) -> bytes:
        return b"".join(self.lines[key] for key in self.order)


def _remove(path: Path, *, with_index: bool = False) -> None:
    path.unlink(missing_ok=True)
    if with_index:
        index_path(path).unlink(missing_ok=True)


def _write_jsonl(path: Path, winners: _Winners, *, current: bytes) -> Tuple[int, int]:
    """Write merged winners as JSONL (when changed) + sidecar; returns
    (bytes_after, rewritten)."""
    new_data = winners.jsonl_bytes()
    rewritten = 0
    if new_data != current:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(new_data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
        rewritten = 1
    # else: already clean — repeat compactions are byte-stable and only
    # the sidecar may need refreshing.
    offsets: List[int] = []
    lengths: List[int] = []
    cursor = 0
    for key in winners.order:
        offsets.append(cursor)
        lengths.append(len(winners.lines[key]))
        cursor += lengths[-1]
    try:
        write_segment_index(path, SegmentIndex(
            segment_bytes=len(new_data),
            schema=SCHEMA_VERSION,
            skipped=0,
            stale=0,
            keys=winners.order,
            offsets=offsets,
            lengths=lengths,
        ))
    except OSError:
        pass
    return len(new_data), rewritten


def _compact_shard(
    jsonl_path: Path,
    colseg_path: Path,
    fmt: str,
) -> Dict[str, int]:
    """Compact one shard (its JSONL file and/or columnar segment) under the
    shard's lock; returns per-shard integer stats."""
    jsonl_exists = jsonl_path.exists()
    colseg_exists = colseg_path.exists()
    stats = {
        "segments": 1,
        "rows_kept": 0,
        "duplicates_dropped": 0,
        "stale_dropped": 0,
        "junk_dropped": 0,
        "bytes_before": 0,
        "bytes_after": 0,
        "segments_rewritten": 0,
        "segments_removed": 0,
        "segments_unconverted": 0,
    }
    if fmt == "columnar" and colseg_exists and not jsonl_exists:
        # Nothing to merge; a valid segment is already compact (rewriting it
        # would be byte-identical), an invalid one is quarantined junk.
        try:
            with ColumnarSegment(colseg_path) as segment:
                size = segment.nbytes
                rows = segment.rows
        except (OSError, ColumnarError):
            stats["bytes_before"] = colseg_path.stat().st_size
            stats["junk_dropped"] = 1
            stats["segments_removed"] = 1
            _remove(colseg_path)
            _fsync_dir(colseg_path.parent)
            return stats
        stats["rows_kept"] = rows
        stats["bytes_before"] = stats["bytes_after"] = size
        return stats
    # Everything else merges through (and is serialized by) the JSONL lock.
    try:
        fd = locked_segment_fd(jsonl_path, create=not jsonl_exists)
    except OSError:
        return {}
    try:
        size = os.fstat(fd).st_size
        data = os.pread(fd, size, 0)
        winners = _Winners()
        # Sources dispatch by magic like reads do: columnar generations fold
        # in first, then JSONL lines override per key (JSONL is newer).
        jsonl_is_columnar = data.startswith(COLUMNAR_MAGIC)
        if colseg_exists:
            if not winners.add_columnar(colseg_path):
                winners.junk += 1  # quarantined: torn rewrite, drop it
        if jsonl_is_columnar:
            if not winners.add_columnar(jsonl_path):
                winners.junk += 1
        else:
            winners.add_jsonl(data)
        stats["bytes_before"] = size + (colseg_path.stat().st_size
                                        if colseg_exists else 0)
        stats["rows_kept"] = len(winners.order)
        stats["duplicates_dropped"] = winners.duplicates
        stats["stale_dropped"] = winners.stale
        stats["junk_dropped"] = winners.junk
        if not winners.order:
            # Nothing live: drop the shard's files entirely.
            _remove(jsonl_path, with_index=True)
            _remove(colseg_path)
            _fsync_dir(jsonl_path.parent)
            stats["segments_removed"] = 1 + (1 if colseg_exists else 0)
            return stats
        if fmt == "columnar":
            try:
                nbytes = write_columnar_segment(
                    colseg_path, [winners.docs[key] for key in winners.order])
            except ColumnarError:
                # Not columnar-representable (hand-edited docs): stay JSONL,
                # all-or-nothing per shard.
                stats["segments_unconverted"] = 1
            else:
                _remove(jsonl_path, with_index=True)
                _fsync_dir(jsonl_path.parent)
                stats["bytes_after"] = nbytes
                stats["segments_rewritten"] = 1
                return stats
        # fmt == "jsonl", or the columnar fallback above: merged winners land
        # in the JSONL file and any columnar source files are retired.
        current = b"" if (jsonl_is_columnar or not jsonl_exists) else data
        bytes_after, rewritten = _write_jsonl(jsonl_path, winners,
                                              current=current)
        if colseg_exists:
            _remove(colseg_path)
            _fsync_dir(colseg_path.parent)
            stats["segments_removed"] = 1
        stats["bytes_after"] = bytes_after
        stats["segments_rewritten"] = rewritten
        return stats
    finally:
        _unlock(fd)
        os.close(fd)


def compact_store(
    root: Union[str, os.PathLike],
    *,
    format: str = "jsonl",
) -> Dict[str, Any]:
    """Compact every segment of the store at ``root``; returns summary stats.

    ``format`` selects the on-disk representation compaction leaves behind:
    ``"jsonl"`` (the default, and the historical behavior) or ``"columnar"``
    (binary column blocks; see :mod:`repro.store.columnar`).  Raises
    :class:`StoreError` when ``root`` is not a result store.  The returned
    dict reports ``segments`` seen (shards, counting a JSONL file and its
    columnar sibling as one), ``segments_rewritten`` / ``segments_removed``
    / ``segments_unconverted``, ``rows_kept`` and the ``duplicates_dropped``
    / ``stale_dropped`` / ``junk_dropped`` line counts, plus
    ``bytes_before`` and ``bytes_after``.
    """
    if format not in _FORMATS:
        raise StoreError(
            f"unknown compaction format {format!r}; choose from {_FORMATS}"
        )
    root = Path(root)
    meta_path = root / _META_NAME
    if not meta_path.is_file():
        raise StoreError(f"no result store at {root}")
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, ValueError) as exc:
        raise StoreError(f"unreadable store metadata {meta_path}: {exc}") from exc
    if meta.get("format") != _FORMAT:
        raise StoreError(
            f"{root} is not a repro result store (format={meta.get('format')!r})"
        )
    totals: Dict[str, Any] = {
        "path": str(root),
        "format": format,
        "segments": 0,
        "segments_rewritten": 0,
        "segments_removed": 0,
        "segments_unconverted": 0,
        "rows_kept": 0,
        "duplicates_dropped": 0,
        "stale_dropped": 0,
        "junk_dropped": 0,
        "bytes_before": 0,
        "bytes_after": 0,
    }
    segments = root / _SEGMENTS_DIR
    if not segments.is_dir():
        return totals
    shards = sorted(
        {p.name[:-len(".jsonl")] for p in segments.glob("*.jsonl")}
        | {p.name[:-len(COLUMNAR_SUFFIX)] for p in segments.glob(f"*{COLUMNAR_SUFFIX}")}
    )
    for shard in shards:
        shard_stats = _compact_shard(
            segments / f"{shard}.jsonl",
            segments / f"{shard}{COLUMNAR_SUFFIX}",
            format,
        )
        for field, value in shard_stats.items():
            totals[field] += value
    return totals

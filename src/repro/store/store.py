"""The content-addressed on-disk result store behind resumable sweeps.

Layout of a store directory::

    DIR/
      store.json            # format marker + schema version (documentation)
      segments/<xy>.jsonl   # appended rows, sharded by the key's first byte

Each segment line is one completed grid row::

    {"key": "<sha256>", "schema": N, "row": {...RunMetrics fields...},
     "trace": {...}?}

Lines whose ``schema`` is not the current :data:`~repro.store.keys.SCHEMA_VERSION`
are skipped on load (their keys could never match again anyway), so a schema
bump cleanly retires old rows instead of mixing generations in ``rows()``.

Rows are *appended* (one flushed line per completed cell), so a sweep killed
at cell 9,000/10,000 keeps its first 9,000 rows; a truncated final line from
a hard kill is skipped on load.  Keys are content-addressed
(:mod:`repro.store.keys`): re-running a grid against the same store skips
every cell whose key is already present, which is what makes
``run_grid(..., store=...)`` incremental and ``repro sweep --resume`` exact.

The optional ``trace`` attachment carries a summary/none-level
:class:`~repro.radio.trace.ExecutionTrace` as its aggregate fields (the form
the batched backend produces via ``ExecutionTrace.from_aggregates``);
:meth:`ResultStore.get_trace` rebuilds a trace that compares equal to the
original.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Union

from ..analysis.metrics import RunMetrics
from ..radio.trace import ExecutionTrace
from .keys import SCHEMA_VERSION
from .resultset import ResultSet, _row_dict_to_metrics

__all__ = ["ResultStore", "StoreError"]

_FORMAT = "repro-result-store"
_META_NAME = "store.json"
_SEGMENTS_DIR = "segments"


class StoreError(RuntimeError):
    """A result-store directory is missing, malformed or of a foreign format."""


class ResultStore:
    """Append-only content-addressed store of completed grid rows.

    Open with ``ResultStore(path)`` (creates the directory when missing) or
    ``ResultStore.open(path, require_existing=True)`` (the ``--resume``
    contract: resuming a sweep that never started is reported as an error
    instead of silently starting cold).  Instances are context managers;
    :meth:`close` releases the append handles.
    """

    def __init__(self, root: Union[str, os.PathLike], *, create: bool = True) -> None:
        self.root = Path(root)
        self._index: Dict[str, Dict[str, Any]] = {}
        self._traces: Dict[str, Dict[str, Any]] = {}
        self._order: List[str] = []
        self._handles: Dict[str, IO[str]] = {}
        self.skipped_lines = 0
        self.stale_lines = 0
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(
                f"{self.root} is not a directory; a result store needs a "
                f"directory path"
            )
        meta_path = self.root / _META_NAME
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError) as exc:
                raise StoreError(f"unreadable store metadata {meta_path}: {exc}") from exc
            if meta.get("format") != _FORMAT:
                raise StoreError(
                    f"{self.root} is not a repro result store "
                    f"(format={meta.get('format')!r})"
                )
            self.schema_version = int(meta.get("schema_version", 0))
        elif self.root.exists() and any(self.root.iterdir()):
            raise StoreError(
                f"{self.root} exists, is not empty and has no {_META_NAME}; "
                f"refusing to treat it as a result store"
            )
        elif not create:
            raise StoreError(
                f"no result store at {self.root}; run once without --resume "
                f"(or create the store first) to start a sweep cold"
            )
        else:
            (self.root / _SEGMENTS_DIR).mkdir(parents=True, exist_ok=True)
            self.schema_version = SCHEMA_VERSION
            meta_path.write_text(
                json.dumps({"format": _FORMAT, "schema_version": SCHEMA_VERSION},
                           indent=2) + "\n"
            )
        self._scan()

    @classmethod
    def open(
        cls, root: Union[str, os.PathLike], *, require_existing: bool = False
    ) -> "ResultStore":
        """Open (or, unless ``require_existing``, create) the store at ``root``."""
        return cls(root, create=not require_existing)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def _scan(self) -> None:
        segments = self.root / _SEGMENTS_DIR
        if not segments.is_dir():
            return
        for path in sorted(segments.glob("*.jsonl")):
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        doc = json.loads(line)
                        key, row = doc["key"], doc["row"]
                    except (ValueError, KeyError, TypeError):
                        # A hard kill can truncate the final line of a
                        # segment; the row it described was never reported
                        # complete, so skipping it is exactly right.
                        self.skipped_lines += 1
                        continue
                    if doc.get("schema", SCHEMA_VERSION) != SCHEMA_VERSION:
                        # A row from before a schema bump: its key can never
                        # match again, and surfacing it through rows() /
                        # `repro results` would mix row generations.
                        self.stale_lines += 1
                        continue
                    if key not in self._index:
                        self._order.append(key)
                    self._index[key] = row
                    if doc.get("trace") is not None:
                        self._traces[key] = doc["trace"]

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> List[str]:
        """All stored keys, in first-appended order."""
        return list(self._order)

    def get(self, key: str) -> Optional[RunMetrics]:
        """The stored row for ``key``, or ``None`` when absent."""
        doc = self._index.get(key)
        return None if doc is None else _row_dict_to_metrics(doc)

    def get_trace(self, key: str) -> Optional[ExecutionTrace]:
        """The stored trace attachment for ``key`` rebuilt from its aggregates."""
        doc = self._traces.get(key)
        return None if doc is None else ExecutionTrace.from_aggregates_doc(doc)

    def rows(self) -> ResultSet:
        """Every stored row as a columnar ResultSet, in first-appended order."""
        return ResultSet.from_dicts(self._index[key] for key in self._order)

    def iter_items(self) -> Iterator[tuple]:
        """Iterate ``(key, RunMetrics)`` pairs in first-appended order."""
        for key in self._order:
            yield key, _row_dict_to_metrics(self._index[key])

    def describe(self) -> Dict[str, Any]:
        """Summary facts: row count, segment count, schema version, path."""
        segments = self.root / _SEGMENTS_DIR
        return {
            "path": str(self.root),
            "rows": len(self._index),
            "segments": len(list(segments.glob("*.jsonl"))) if segments.is_dir() else 0,
            "schema_version": self.schema_version,
            "skipped_lines": self.skipped_lines,
            "stale_lines": self.stale_lines,
        }

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def _handle(self, key: str) -> IO[str]:
        shard = key[:2]
        if shard not in self._handles:
            path = self.root / _SEGMENTS_DIR / f"{shard}.jsonl"
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = open(path, "a", encoding="utf-8")
            if handle.tell() > 0:
                # A hard kill mid-write can leave a truncated final line.
                # Appending straight after it would glue the next (good) row
                # onto the junk, turning one unparseable line into two lost
                # rows — the good row would be shadowed forever.  Terminate
                # the partial line so every new row starts on its own line.
                with open(path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    if probe.read(1) != b"\n":
                        handle.write("\n")
                        handle.flush()
            self._handles[shard] = handle
        return self._handles[shard]

    def put(
        self,
        key: str,
        row: RunMetrics,
        *,
        trace: Optional[ExecutionTrace] = None,
    ) -> bool:
        """Append one completed row (idempotent; returns False on duplicates).

        The line is flushed immediately: a row that has been yielded to the
        caller is on disk, which is the durability contract resume relies on.
        A ``trace`` attachment must be a summary/none-level trace (the store
        persists its aggregate fields; see ``ExecutionTrace.to_aggregates``).
        """
        if key in self._index:
            return False
        doc: Dict[str, Any] = {"key": key, "schema": SCHEMA_VERSION,
                               "row": row.as_dict()}
        if trace is not None:
            doc["trace"] = trace.to_aggregates()
        handle = self._handle(key)
        handle.write(json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n")
        handle.flush()
        self._index[key] = doc["row"]
        self._order.append(key)
        if trace is not None:
            self._traces[key] = doc["trace"]
        return True

    def flush(self) -> None:
        """Flush every open segment handle."""
        for handle in self._handles.values():
            handle.flush()

    def close(self) -> None:
        """Close the append handles (reading remains possible)."""
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r}, rows={len(self._index)})"

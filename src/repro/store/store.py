"""The content-addressed on-disk result store behind resumable sweeps.

Layout of a store directory::

    DIR/
      store.json            # format marker + schema version (documentation)
      segments/<xy>.jsonl   # appended rows, sharded by the key's first byte
      segments/<xy>.idx     # disposable sidecar offset index (see store.index)
      segments/<xy>.colseg  # optional binary columnar segment (see store.columnar)

Each segment line is one completed grid row::

    {"key": "<sha256>", "schema": N, "row": {...RunMetrics fields...},
     "trace": {...}?}

Lines whose ``schema`` is not the current :data:`~repro.store.keys.SCHEMA_VERSION`
(including lines missing the field entirely) are retired on load — their keys
could never match again anyway — so a schema bump cleanly retires old rows
instead of mixing generations in ``rows()``.

Rows are *appended* (one unbuffered line write per completed cell), so a sweep
killed at cell 9,000/10,000 keeps its first 9,000 rows; a truncated final line
from a hard kill is skipped on load.  Keys are content-addressed
(:mod:`repro.store.keys`): re-running a grid against the same store skips
every cell whose key is already present, which is what makes
``run_grid(..., store=...)`` incremental and ``repro sweep --resume`` exact.

Three scaling properties distinguish this implementation from a naive
scan-everything store:

* **Indexed opens** — opening a store loads each segment's sidecar offset
  index (key → byte span of the winning line) instead of JSON-parsing every
  row; segments that grew since their index was written are tail-scanned from
  the first uncovered byte only.  ``describe()["scanned_lines"]`` reports how
  many JSONL lines the open actually parsed (0 = fully indexed).
* **Lazy reads** — only key → span maps are resident. ``get``/``get_trace``
  seek-and-parse one line; ``rows()``/``iter_items()``/``iter_docs()`` stream
  from disk on demand.  A span that fails to parse (e.g. the segment was
  compacted by another process) triggers one self-healing reload before the
  read is retried.
* **Multi-writer safety** — appends go through ``O_APPEND`` file descriptors
  under a per-segment advisory ``fcntl.flock``, so concurrent processes can
  share one store without interleaving partial lines; each writer refreshes
  the sidecar index under the same lock on :meth:`ResultStore.close`.
* **Columnar analytics** — ``compact(format="columnar")`` rewrites each
  shard's winners into a binary column-block segment (``<xy>.colseg``,
  :mod:`repro.store.columnar`) that opens by ``mmap`` — key lookups stay
  O(1), ``rows()`` becomes a *lazy* ResultSet that reads only the column
  blocks a query touches, and appends keep landing in the shard's JSONL
  file, whose rows win over columnar rows of the same key on load.  Reads
  dispatch per segment by file magic, so mixed stores just work.

The optional ``trace`` attachment carries a summary/none-level
:class:`~repro.radio.trace.ExecutionTrace` as its aggregate fields (the form
the batched backend produces via ``ExecutionTrace.from_aggregates``);
:meth:`ResultStore.get_trace` rebuilds a trace that compares equal to the
original.  The trace served for a key always belongs to the same line as the
row served by ``get`` (the last valid line for that key).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Set, Union

import numpy as np

from ..analysis.metrics import RunMetrics
from ..radio.trace import ExecutionTrace
from .columnar import (
    COLUMNAR_MAGIC,
    COLUMNAR_SUFFIX,
    ColumnarError,
    ColumnarSegment,
    read_file_magic,
)
from .index import SegmentIndex, load_segment_index, write_segment_index
from .keys import SCHEMA_VERSION
from .resultset import ResultSet, _EagerSource, _GatherSource, _row_dict_to_metrics

__all__ = ["ResultStore", "StoreError"]

_FORMAT = "repro-result-store"
_META_NAME = "store.json"
_SEGMENTS_DIR = "segments"

# Keys must be shard-prefix safe (they name segment files) and sidecar safe
# (they are serialized on one comma-joined line).  Content-addressed sha256
# hex keys trivially qualify; anything else is rejected at put() and treated
# as junk when encountered in a hand-edited segment.
_KEY_RE = re.compile(r"[A-Za-z0-9_-]+")

try:
    import fcntl

    def _lock_exclusive(fd: int) -> None:
        fcntl.flock(fd, fcntl.LOCK_EX)

    def _unlock(fd: int) -> None:
        fcntl.flock(fd, fcntl.LOCK_UN)

except ImportError:  # pragma: no cover - non-POSIX fallback, single-writer only
    def _lock_exclusive(fd: int) -> None:
        pass

    def _unlock(fd: int) -> None:
        pass


class StoreError(RuntimeError):
    """A result-store directory is missing, malformed or of a foreign format."""


def locked_segment_fd(path: Path, *, create: bool = False) -> int:
    """Open ``path`` and take its exclusive advisory lock, surviving renames.

    After acquiring the lock the descriptor is re-checked against the path: a
    concurrent compaction may have replaced the file between open and lock, in
    which case the lock protects a dead inode and must be retaken on the new
    one.  The caller owns the returned fd (unlock + close).
    """
    flags = os.O_RDWR | (os.O_CREAT if create else 0)
    fd = os.open(path, flags, 0o644)
    while True:
        _lock_exclusive(fd)
        try:
            stat = os.stat(path)
        except FileNotFoundError:
            stat = None
        here = os.fstat(fd)
        if stat is not None and (stat.st_ino, stat.st_dev) == (here.st_ino, here.st_dev):
            return fd
        _unlock(fd)
        os.close(fd)
        fd = os.open(path, flags, 0o644)


class ResultStore:
    """Append-only content-addressed store of completed grid rows.

    Open with ``ResultStore(path)`` (creates the directory when missing) or
    ``ResultStore.open(path, require_existing=True)`` (the ``--resume``
    contract: resuming a sweep that never started is reported as an error
    instead of silently starting cold).  ``rebuild_index=True`` ignores the
    sidecar ``.idx`` files and re-parses every segment line (a diagnostic /
    benchmarking knob; the indexes are refreshed on :meth:`close`).
    Instances are context managers; :meth:`close` writes the sidecar indexes
    and releases the append descriptors (reading remains possible).
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        *,
        create: bool = True,
        rebuild_index: bool = False,
    ) -> None:
        self.root = Path(root)
        # Parallel arrays, one slot per distinct key in first-appended order;
        # _slot maps key -> slot.  A slot stores the byte span of the key's
        # *winning* (last valid) line, so duplicate lines resolve to the same
        # row/trace pair everywhere.
        self._slot: Dict[str, int] = {}
        self._keys: List[str] = []
        self._offs: List[int] = []
        self._lens: List[int] = []
        self._shard_at: List[str] = []
        # Per-shard bookkeeping for sidecar maintenance.
        self._covered: Dict[str, int] = {}       # segment bytes our view accounts for
        self._seg_skipped: Dict[str, int] = {}
        self._seg_stale: Dict[str, int] = {}
        self._dirty: Set[str] = set()            # shards whose sidecar is stale
        self._repaired: Set[str] = set()         # shards tail-repaired this session
        self._append_fds: Dict[str, int] = {}
        self._readers: Dict[str, IO[bytes]] = {}
        # Open columnar segments by shard.  A slot living in one of these has
        # _lens[slot] == -1 and _offs[slot] == its row index in the segment.
        self._columnar: Dict[str, ColumnarSegment] = {}
        self.skipped_lines = 0
        self.stale_lines = 0
        self.scanned_lines = 0
        self.quarantined_segments = 0
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(
                f"{self.root} is not a directory; a result store needs a "
                f"directory path"
            )
        meta_path = self.root / _META_NAME
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError) as exc:
                raise StoreError(f"unreadable store metadata {meta_path}: {exc}") from exc
            if meta.get("format") != _FORMAT:
                raise StoreError(
                    f"{self.root} is not a repro result store "
                    f"(format={meta.get('format')!r})"
                )
            self.schema_version = int(meta.get("schema_version", 0))
        elif self.root.exists() and any(self.root.iterdir()):
            raise StoreError(
                f"{self.root} exists, is not empty and has no {_META_NAME}; "
                f"refusing to treat it as a result store"
            )
        elif not create:
            raise StoreError(
                f"no result store at {self.root}; run once without --resume "
                f"(or create the store first) to start a sweep cold"
            )
        else:
            (self.root / _SEGMENTS_DIR).mkdir(parents=True, exist_ok=True)
            self.schema_version = SCHEMA_VERSION
            meta_path.write_text(
                json.dumps({"format": _FORMAT, "schema_version": SCHEMA_VERSION},
                           indent=2) + "\n"
            )
        self._load(rebuild_index=rebuild_index)

    @classmethod
    def open(
        cls,
        root: Union[str, os.PathLike],
        *,
        require_existing: bool = False,
        rebuild_index: bool = False,
    ) -> "ResultStore":
        """Open (or, unless ``require_existing``, create) the store at ``root``."""
        return cls(root, create=not require_existing, rebuild_index=rebuild_index)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def _segment_path(self, shard: str) -> Path:
        return self.root / _SEGMENTS_DIR / f"{shard}.jsonl"

    def _load(self, *, rebuild_index: bool) -> None:
        segments = self.root / _SEGMENTS_DIR
        try:
            with os.scandir(segments) as scan:
                # scandir keeps per-segment fixed costs low: a store shards
                # into up to 256 segments and open time is dominated by
                # per-file overhead once the sidecars do the heavy lifting.
                # Sorting (shard, kind) loads a shard's columnar segment
                # before its JSONL file, so JSONL rows — always the newer
                # generation — win via _record's last-wins rule.
                found = []
                for entry in scan:
                    if not entry.is_file():
                        continue
                    if entry.name.endswith(".jsonl"):
                        found.append((entry.name[:-len(".jsonl")], 1,
                                      entry.path, entry.stat().st_size))
                    elif entry.name.endswith(COLUMNAR_SUFFIX):
                        found.append((entry.name[:-len(COLUMNAR_SUFFIX)], 0,
                                      entry.path, entry.stat().st_size))
                found.sort()
        except OSError:
            return
        for shard, _kind, path, size in found:
            # Dispatch by magic, not extension: the payload decides how a
            # segment is read.
            if read_file_magic(path) == COLUMNAR_MAGIC:
                self._load_columnar(shard, path, rebuild=rebuild_index)
                continue
            index = None
            if not rebuild_index:
                index = load_segment_index(path, segment_bytes=size,
                                           schema=SCHEMA_VERSION)
            if index is not None:
                if shard in self._columnar:
                    # Mixed shard: sidecar keys may collide with columnar
                    # keys, so register via last-wins instead of bulk-extend.
                    for key, off, length in zip(index.keys, index.offsets,
                                                index.lengths):
                        self._record(key, shard, off, length)
                else:
                    base = len(self._keys)
                    self._slot.update(zip(index.keys, range(base, base + len(index.keys))))
                    self._keys.extend(index.keys)
                    self._offs.extend(index.offsets)
                    self._lens.extend(index.lengths)
                    self._shard_at.extend([shard] * len(index.keys))
                self._seg_skipped[shard] = index.skipped
                self._seg_stale[shard] = index.stale
                self.skipped_lines += index.skipped
                self.stale_lines += index.stale
                if index.segment_bytes < size:
                    # The segment grew after its sidecar was written (another
                    # writer, or a crash before close): parse only the tail.
                    self._scan_segment(shard, path, index.segment_bytes)
                    self._dirty.add(shard)
            else:
                self._scan_segment(shard, path, 0)
                self._dirty.add(shard)
            self._covered[shard] = size
        if len(self._slot) != len(self._keys):
            # A (forged/corrupt) sidecar smuggled duplicate keys past the
            # fast path above; ground truth is on disk, so rebuild from it.
            self._reset_memory()
            self._load(rebuild_index=True)

    def _load_columnar(self, shard: str, path: str, *, rebuild: bool) -> None:
        """Open ``path`` as a columnar segment and register its keys.

        A segment that fails validation (torn tail from a killed rewrite,
        foreign schema, size mismatch) is *quarantined*: counted, never read,
        left on disk for ``compact()`` to drop — the columnar analogue of a
        truncated JSONL line.
        """
        try:
            segment = ColumnarSegment(path)
        except (OSError, ColumnarError):
            self.quarantined_segments += 1
            return
        old = self._columnar.pop(shard, None)
        if old is not None:  # pragma: no cover - one .colseg per shard
            old.close()
        self._columnar[shard] = segment
        keys = segment.keys_list()
        if rebuild:
            for row, key in enumerate(keys):
                self._record(key, shard, row, -1)
        else:
            base = len(self._keys)
            self._slot.update(zip(keys, range(base, base + len(keys))))
            self._keys.extend(keys)
            self._offs.extend(range(len(keys)))
            self._lens.extend([-1] * len(keys))
            self._shard_at.extend([shard] * len(keys))

    def _scan_segment(self, shard: str, path: Union[str, os.PathLike], start: int) -> None:
        """Parse segment lines in ``[start, EOF)``, recording winning spans."""
        with open(path, "rb") as handle:
            if start:
                handle.seek(start)
            offset = start
            for raw in handle:
                line_offset, length = offset, len(raw)
                offset += length
                self.scanned_lines += 1
                stripped = raw.strip()
                if not stripped:
                    continue
                try:
                    doc = json.loads(stripped)
                    key, row = doc["key"], doc["row"]
                except (ValueError, KeyError, TypeError):
                    # A hard kill can truncate the final line of a segment;
                    # the row it described was never reported complete, so
                    # skipping it is exactly right.
                    self._count_skipped(shard)
                    continue
                if row is None or not isinstance(key, str) or not _KEY_RE.fullmatch(key):
                    self._count_skipped(shard)
                    continue
                if doc.get("schema", 0) != SCHEMA_VERSION:
                    # A row from before a schema bump — or from before rows
                    # were versioned at all (no "schema" field): its key can
                    # never match again, and surfacing it through rows() /
                    # `repro results` would mix row generations.
                    self._count_stale(shard)
                    continue
                self._record(key, shard, line_offset, length)

    def _record(self, key: str, shard: str, offset: int, length: int) -> None:
        slot = self._slot.get(key)
        if slot is None:
            self._slot[key] = len(self._keys)
            self._keys.append(key)
            self._offs.append(offset)
            self._lens.append(length)
            self._shard_at.append(shard)
        else:
            # Duplicate line for a known key: the last valid line wins, for
            # the row and its trace attachment alike.
            self._offs[slot] = offset
            self._lens[slot] = length
            self._shard_at[slot] = shard

    def _count_skipped(self, shard: str) -> None:
        self._seg_skipped[shard] = self._seg_skipped.get(shard, 0) + 1
        self.skipped_lines += 1

    def _count_stale(self, shard: str) -> None:
        self._seg_stale[shard] = self._seg_stale.get(shard, 0) + 1
        self.stale_lines += 1

    def _reset_memory(self) -> None:
        self._slot.clear()
        self._keys.clear()
        self._offs.clear()
        self._lens.clear()
        self._shard_at.clear()
        self._covered.clear()
        self._seg_skipped.clear()
        self._seg_stale.clear()
        self._dirty.clear()
        self.skipped_lines = 0
        self.stale_lines = 0
        self.scanned_lines = 0
        self.quarantined_segments = 0
        for handle in self._readers.values():
            handle.close()
        self._readers.clear()
        for segment in self._columnar.values():
            segment.close()
        self._columnar.clear()

    def _reload(self) -> None:
        """Re-derive the in-memory view from the JSONL ground truth."""
        self._reset_memory()
        self._load(rebuild_index=True)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def __contains__(self, key: str) -> bool:
        return key in self._slot

    def __len__(self) -> int:
        return len(self._slot)

    def keys(self) -> List[str]:
        """All stored keys, in first-appended order."""
        return list(self._keys)

    def _reader(self, shard: str) -> IO[bytes]:
        handle = self._readers.get(shard)
        if handle is None:
            handle = open(self._segment_path(shard), "rb")
            self._readers[shard] = handle
        return handle

    def _read_span(self, slot: int, key: str) -> Dict[str, Any]:
        if self._lens[slot] == -1:
            segment = self._columnar.get(self._shard_at[slot])
            if segment is None:
                raise ValueError(f"missing columnar segment for key {key}")
            doc = segment.doc(self._offs[slot])
            if doc.get("key") != key:
                raise ValueError(f"stale columnar row for key {key}")
            return doc
        handle = self._reader(self._shard_at[slot])
        handle.seek(self._offs[slot])
        doc = json.loads(handle.read(self._lens[slot]))
        if not isinstance(doc, dict) or doc.get("key") != key:
            raise ValueError(f"stale span for key {key}")
        return doc

    def _load_doc(self, key: str) -> Optional[Dict[str, Any]]:
        """The full stored document for ``key`` (its winning line), or None.

        Spans can go stale when another process rewrites a segment (e.g.
        ``repro store compact`` against a store we hold open); the first
        failed read reloads the view from disk and retries once.
        """
        slot = self._slot.get(key)
        if slot is None:
            return None
        try:
            return self._read_span(slot, key)
        except (OSError, ValueError):
            self._reload()
            slot = self._slot.get(key)
            if slot is None:
                return None
            try:
                return self._read_span(slot, key)
            except (OSError, ValueError) as exc:
                raise StoreError(
                    f"unreadable row for key {key} in {self.root}: {exc}"
                ) from exc

    def get(self, key: str) -> Optional[RunMetrics]:
        """The stored row for ``key``, or ``None`` when absent (one O(1) seek)."""
        doc = self._load_doc(key)
        return None if doc is None else _row_dict_to_metrics(doc["row"])

    def get_trace(self, key: str) -> Optional[ExecutionTrace]:
        """The trace attached to the *winning* line of ``key``, or ``None``.

        Reading the trace from the same line that supplies the row guarantees
        ``get``/``get_trace`` can never serve a row/trace pair from two
        different generations of a duplicated key.
        """
        doc = self._load_doc(key)
        if doc is None or doc.get("trace") is None:
            return None
        return ExecutionTrace.from_aggregates_doc(doc["trace"])

    def iter_docs(self) -> Iterator[Dict[str, Any]]:
        """Stream full stored documents in first-appended order, lazily."""
        for key in list(self._keys):
            doc = self._load_doc(key)
            if doc is not None:
                yield doc

    def rows(self) -> ResultSet:
        """Every stored row as a columnar ResultSet, in first-appended order.

        Against a JSONL-only store the rows are streamed from disk into the
        columnar buffers — the JSON documents are never all resident at once.
        When columnar segments are present the returned set is *lazy*: a
        gather source maps each row to (segment, local row) and a column is
        only read — straight from the segments' mmapped blocks — when a query
        touches it, so aggregating one column of a million-row store loads
        bytes proportional to that column.
        """
        if not self._columnar:
            return ResultSet.from_dicts(doc["row"] for doc in self.iter_docs())
        sources: List[Any] = []
        source_of_shard: Dict[str, int] = {}
        source_ids: List[int] = []
        local_rows: List[int] = []
        jsonl_rows: List[RunMetrics] = []
        for key in list(self._keys):
            slot = self._slot.get(key)
            if slot is None:  # pragma: no cover - keys/_slot kept in sync
                continue
            if self._lens[slot] == -1:
                shard = self._shard_at[slot]
                sid = source_of_shard.get(shard)
                if sid is None:
                    sid = source_of_shard[shard] = len(sources)
                    sources.append(self._columnar[shard])
                source_ids.append(sid)
                local_rows.append(self._offs[slot])
            else:
                doc = self._load_doc(key)
                if doc is None:
                    continue
                source_ids.append(-1)
                local_rows.append(len(jsonl_rows))
                jsonl_rows.append(_row_dict_to_metrics(doc["row"]))
        ids = np.asarray(source_ids, dtype=np.intp)
        if jsonl_rows:
            ids[ids == -1] = len(sources)
            sources.append(_EagerSource(jsonl_rows))
        return ResultSet._from_source(_GatherSource(
            sources, ids, np.asarray(local_rows, dtype=np.intp)))

    def iter_items(self) -> Iterator[tuple]:
        """Iterate ``(key, RunMetrics)`` pairs in first-appended order, lazily."""
        for doc in self.iter_docs():
            yield doc["key"], _row_dict_to_metrics(doc["row"])

    def describe(self) -> Dict[str, Any]:
        """Summary facts: row count, segment count, schema version, path.

        ``scanned_lines`` is the number of JSONL lines the open had to parse;
        0 means every segment was served entirely by its sidecar index.
        ``formats`` breaks segment and byte counts down per storage format
        (classified by file magic, like reads); ``segments`` stays the total.
        ``quarantined_segments`` counts columnar segments that failed
        validation on load (torn tail, foreign schema) and were set aside.
        """
        segments = self.root / _SEGMENTS_DIR
        formats = {
            "jsonl": {"segments": 0, "bytes": 0},
            "columnar": {"segments": 0, "bytes": 0},
        }
        if segments.is_dir():
            for path in segments.iterdir():
                if not path.is_file() or not (
                    path.name.endswith(".jsonl")
                    or path.name.endswith(COLUMNAR_SUFFIX)
                ):
                    continue
                try:
                    size = path.stat().st_size
                except OSError:  # pragma: no cover - racing deletion
                    continue
                kind = ("columnar" if read_file_magic(path) == COLUMNAR_MAGIC
                        else "jsonl")
                formats[kind]["segments"] += 1
                formats[kind]["bytes"] += size
        return {
            "path": str(self.root),
            "rows": len(self._slot),
            "segments": formats["jsonl"]["segments"] + formats["columnar"]["segments"],
            "formats": formats,
            "schema_version": self.schema_version,
            "skipped_lines": self.skipped_lines,
            "stale_lines": self.stale_lines,
            "scanned_lines": self.scanned_lines,
            "quarantined_segments": self.quarantined_segments,
        }

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def _append_fd(self, shard: str) -> int:
        fd = self._append_fds.get(shard)
        if fd is None:
            path = self._segment_path(shard)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
            self._append_fds[shard] = fd
        return fd

    def _locked_append_fd(self, shard: str) -> int:
        """The shard's O_APPEND descriptor with its exclusive lock held.

        Like :func:`locked_segment_fd`, the inode is re-checked after locking
        so a writer never appends to a segment file that a concurrent
        compaction already replaced (those bytes would be silently lost with
        the old inode).
        """
        path = self._segment_path(shard)
        fd = self._append_fd(shard)
        while True:
            _lock_exclusive(fd)
            try:
                stat = os.stat(path)
            except FileNotFoundError:
                stat = None
            here = os.fstat(fd)
            if stat is not None and (stat.st_ino, stat.st_dev) == (here.st_ino, here.st_dev):
                return fd
            _unlock(fd)
            os.close(fd)
            fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
            self._append_fds[shard] = fd
            # Whatever we believed about this segment predates the rewrite.
            self._covered[shard] = 0
            reader = self._readers.pop(shard, None)
            if reader is not None:
                reader.close()

    def _append_line(self, shard: str, data: bytes) -> int:
        """Append ``data`` under the segment lock; returns its byte offset."""
        fd = self._locked_append_fd(shard)
        try:
            end = os.lseek(fd, 0, os.SEEK_END)
            if shard not in self._repaired:
                # A hard kill mid-write can leave a truncated final line.
                # Appending straight after it would glue the next (good) row
                # onto the junk, turning one unparseable line into two lost
                # rows — the good row would be shadowed forever.  Terminate
                # the partial line so every new row starts on its own line.
                if end > 0 and os.pread(fd, 1, end - 1) != b"\n":
                    os.write(fd, b"\n")
                    end += 1
                self._repaired.add(shard)
            os.write(fd, data)
        finally:
            _unlock(fd)
        covered = self._covered.get(shard, 0)
        if end in (covered, covered + 1):  # +1 absorbs our own repair newline
            self._covered[shard] = end + len(data)
        # else: a concurrent writer appended bytes we have not scanned;
        # close() tail-scans [covered, EOF) under the lock before writing
        # the sidecar, so coverage claims stay truthful.
        self._dirty.add(shard)
        return end

    def put(
        self,
        key: str,
        row: RunMetrics,
        *,
        trace: Optional[ExecutionTrace] = None,
    ) -> bool:
        """Append one completed row (idempotent; returns False on duplicates).

        The line hits the segment in a single unbuffered ``write`` under the
        segment lock: a row that has been yielded to the caller is on disk,
        which is the durability contract resume relies on, and concurrent
        writers in other processes can never interleave partial lines.
        A ``trace`` attachment must be a summary/none-level trace (the store
        persists its aggregate fields; see ``ExecutionTrace.to_aggregates``).
        """
        if not isinstance(key, str) or not _KEY_RE.fullmatch(key):
            raise StoreError(
                f"invalid store key {key!r}: keys must be non-empty strings "
                f"over [A-Za-z0-9_-]"
            )
        if key in self._slot:
            return False
        doc: Dict[str, Any] = {"key": key, "schema": SCHEMA_VERSION,
                               "row": row.as_dict()}
        if trace is not None:
            doc["trace"] = trace.to_aggregates()
        data = (json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")
        shard = key[:2]
        offset = self._append_line(shard, data)
        self._record(key, shard, offset, len(data))
        return True

    def flush(self) -> None:
        """No-op, kept for API compatibility: appends are unbuffered writes."""

    def _write_indexes(self) -> None:
        """Refresh the sidecar index of every dirty shard (best-effort).

        Runs under each segment's lock; if concurrent writers appended bytes
        beyond our coverage, the uncovered tail is scanned first so the
        sidecar never claims to cover lines it did not account for.  The
        last closer wins with a fully-covering index.
        """
        for shard in sorted(self._dirty):
            path = self._segment_path(shard)
            try:
                fd = locked_segment_fd(path)
            except OSError:
                continue
            try:
                size = os.fstat(fd).st_size
                covered = self._covered.get(shard, 0)
                if covered < size:
                    self._scan_segment(shard, path, covered)
                    self._covered[shard] = size
                # Columnar slots (_lens == -1) live outside the JSONL file
                # and must never leak into its sidecar spans.
                slots = [s for s, sh in enumerate(self._shard_at)
                         if sh == shard and self._lens[s] >= 0]
                write_segment_index(path, SegmentIndex(
                    segment_bytes=size,
                    schema=SCHEMA_VERSION,
                    skipped=self._seg_skipped.get(shard, 0),
                    stale=self._seg_stale.get(shard, 0),
                    keys=[self._keys[s] for s in slots],
                    offsets=[self._offs[s] for s in slots],
                    lengths=[self._lens[s] for s in slots],
                ))
            except OSError:
                continue
            finally:
                _unlock(fd)
                os.close(fd)
        self._dirty.clear()

    def compact(self, *, format: str = "jsonl") -> Dict[str, Any]:
        """Compact every segment in place and reload; returns the stats dict.

        See :func:`repro.store.compact.compact_store` — duplicate keys,
        retired-schema lines and junk (torn-tail) lines are dropped, segments
        are rewritten atomically, and sidecar indexes are refreshed.
        ``format="columnar"`` rewrites each shard's winners into a binary
        columnar segment (appends continue to land in JSONL beside it);
        ``format="jsonl"`` expands any columnar segments back to plain JSONL.
        The in-memory view is reloaded from the compacted segments, so the
        store stays fully usable (reads and writes) afterwards.
        """
        from .compact import compact_store

        stats = compact_store(self.root, format=format)
        self._reset_memory()
        self._load(rebuild_index=False)
        return stats

    def close(self) -> None:
        """Write sidecar indexes and release descriptors (reading still works)."""
        try:
            self._write_indexes()
        finally:
            for fd in self._append_fds.values():
                os.close(fd)
            self._append_fds.clear()
            for handle in self._readers.values():
                handle.close()
            self._readers.clear()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r}, rows={len(self._slot)})"

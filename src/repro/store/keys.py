"""Content-addressed cache keys for grid cells.

Every grid row (one scheme run on one fault/clock cell of one instance) is
identified by a stable key: the SHA-256 of the canonical JSON encoding of all
the inputs that determine the row's value — scheme, graph family, requested
size, derived instance seed, source rule, payload, normalized fault/clock
specs, backend name, trace level and the result-schema version.  Two runs
with identical key fields are guaranteed to produce identical
:class:`~repro.analysis.metrics.RunMetrics` rows (the equivalence suites
assert backends agree, and instance seeds are derived deterministically), so
a :class:`~repro.store.store.ResultStore` can skip every cell whose key it
already holds.

Deliberately *not* part of the key: ``jobs``, ``chunk_size`` and
``batch_size`` — rows are independent of all three by construction — so a
sweep resumed with different parallelism still hits the cache.

Bumping :data:`SCHEMA_VERSION` (done whenever the meaning of a stored row
changes) invalidates every previously stored row *by construction*: old rows
keep their old keys and simply never match again.

This module depends only on the standard library so the store layer never
participates in the api/analysis import cycle; callers pass fault/clock specs
already normalized by :mod:`repro.api.specs`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

__all__ = ["SCHEMA_VERSION", "canonical_payload", "normalize_backend_name", "unit_key"]

#: Version of the stored row schema.  Part of every key: bump it to
#: invalidate all previously cached rows (e.g. when RunMetrics gains a field
#: whose value older rows cannot supply).
#: 2: RunMetrics gained the ``backend`` execution-provenance column.
SCHEMA_VERSION = 2


def canonical_payload(payload: Any) -> str:
    """A stable JSON encoding of the source payload µ (stringified fallback)."""
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return json.dumps(str(payload))


def normalize_backend_name(backend: Any) -> str:
    """Reduce a backend spec (name / instance / ``None``) to its registry name.

    A shard-count suffix (``"sharded:4"``) is stripped: the shard count is
    pure parallelism — results are bit-identical at any shard count — so it
    is excluded from cache keys for the same reason ``jobs`` and
    ``batch_size`` are.  ELL tier suffixes (``"ell:jit"`` / ``"ell:numpy"``)
    are stripped too: the JIT and NumPy tiers are bit-identical by the
    equivalence suite, so a sweep resumed on a machine without numba still
    hits every row a JIT-equipped machine stored (and vice versa).
    """
    if backend is None:
        return "reference"
    name = backend if isinstance(backend, str) else str(getattr(backend, "name", backend))
    if name.startswith("sharded:"):
        return "sharded"
    if name.startswith("ell:"):
        return "ell"
    return name


def unit_key(
    *,
    scheme: str,
    family: str,
    size: int,
    seed: int,
    source_rule: str,
    payload: Any,
    fault_spec: Optional[Dict[str, Any]],
    clock_spec: Optional[Dict[str, Any]],
    backend: Any = None,
    trace_level: str = "summary",
    schema_version: int = SCHEMA_VERSION,
) -> str:
    """The content-addressed key of one grid row.

    ``fault_spec`` / ``clock_spec`` must already be in canonical dict form
    (``None`` for the paper's default channel), as produced by
    :func:`repro.api.specs.normalize_fault_spec` /
    :func:`~repro.api.specs.normalize_clock_spec` — :class:`repro.api.GridConfig`
    normalizes its axes on construction, so grid callers can pass them through.
    """
    doc = {
        "schema": int(schema_version),
        "scheme": str(scheme),
        "family": str(family),
        "n": int(size),
        "seed": int(seed),
        "source_rule": str(source_rule),
        "payload": canonical_payload(payload),
        "fault": fault_spec,
        "clock": clock_spec,
        "backend": normalize_backend_name(backend),
        "trace_level": str(trace_level),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()

"""Sidecar offset indexes: O(1) key lookup without re-parsing JSONL segments.

Each segment ``segments/<xy>.jsonl`` may carry a sidecar ``segments/<xy>.idx``
mapping every live key to the byte span of its winning line.  The sidecar is a
**disposable cache**: it is written atomically (temp + rename) on
:meth:`~repro.store.store.ResultStore.close` and after compaction, validated
against the segment on open, and silently rebuilt from the JSONL whenever it
is missing, stale (the segment shrank or was rewritten) or corrupt.  Deleting
every ``.idx`` file never loses data — the JSONL segments alone are the
durability contract.

File layout (version 1)::

    repro-idx 1\n
    <segment_bytes> <schema> <entries=K> <skipped> <stale>\n
    key_1,key_2,...,key_K\n
    <K little-endian int64 (offset, length) pairs>

One read, one ``str.split`` over the key line and one ``numpy.frombuffer``
over the binary span blob parse in a few milliseconds at 10⁵ entries — an
order of magnitude faster than ``json.loads`` over every segment line, which
is what makes indexed opens O(#keys) dictionary builds instead of O(#bytes)
JSON parses.  (A store shards into up to 256 segments, so the loader is also
deliberately frugal with per-file fixed costs.)  ``skipped`` / ``stale``
record how many junk / retired-schema lines the covered bytes contain, so an
indexed open restores the same diagnostic counters a full scan would have
produced.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

__all__ = ["SegmentIndex", "index_path", "load_segment_index", "write_segment_index"]

_MAGIC = b"repro-idx 1\n"
_SPAN_DTYPE = np.dtype("<i8")


@dataclass
class SegmentIndex:
    """The parsed sidecar of one segment: key → byte-span, plus scan counters."""

    #: Bytes of the segment the entries (and counters) account for.  When the
    #: segment on disk is longer, the extra tail was appended after this index
    #: was written and must be scanned; when it is shorter, the segment was
    #: rewritten and the whole index is stale.
    segment_bytes: int
    #: The row-schema version the entries were filtered against.
    schema: int
    #: Unparseable (torn / junk) lines within the covered bytes.
    skipped: int
    #: Retired-schema lines within the covered bytes.
    stale: int
    keys: List[str]
    offsets: List[int]
    lengths: List[int]


def index_path(segment_path: Path) -> Path:
    """The sidecar path for a ``segments/<xy>.jsonl`` segment."""
    return segment_path.with_suffix(".idx")


def load_segment_index(
    segment_path: Union[str, os.PathLike], *, segment_bytes: int, schema: int
) -> Optional[SegmentIndex]:
    """Parse and validate the sidecar of ``segment_path``; ``None`` when unusable.

    ``segment_bytes`` is the segment's current size: an index claiming to
    cover more bytes than exist (the segment was truncated or compacted) is
    stale, as is one built under a different row-schema version or whose
    entries point past its own covered range.  Any parse error also returns
    ``None`` — the caller falls back to a full JSONL scan.
    """
    spath = os.fspath(segment_path)
    if spath.endswith(".jsonl"):
        spath = spath[:-len(".jsonl")]
    try:
        with open(spath + ".idx", "rb") as handle:
            raw = handle.read()
    except OSError:
        return None
    try:
        if not raw.startswith(_MAGIC):
            return None
        meta_end = raw.index(b"\n", len(_MAGIC))
        fields = raw[len(_MAGIC):meta_end].split()
        if len(fields) != 5:
            return None
        covered, idx_schema, entries, skipped, stale = map(int, fields)
        if idx_schema != schema or covered > segment_bytes:
            return None
        keys_end = raw.index(b"\n", meta_end + 1)
        key_blob = raw[meta_end + 1:keys_end]
        keys = key_blob.decode("utf-8").split(",") if key_blob else []
        spans = np.frombuffer(raw, dtype=_SPAN_DTYPE, offset=keys_end + 1)
        if len(keys) != entries or spans.size != 2 * entries:
            return None
        # Span *values* are not range-checked here: a reader that follows a
        # bad span fails to parse the line and self-heals by rescanning the
        # JSONL (ResultStore._load_doc), so per-entry validation on the open
        # fast path would buy nothing.
        spans = spans.reshape(-1, 2)
        return SegmentIndex(
            segment_bytes=covered,
            schema=schema,
            skipped=skipped,
            stale=stale,
            keys=keys,
            offsets=spans[:, 0].tolist(),
            lengths=spans[:, 1].tolist(),
        )
    except (ValueError, OverflowError, UnicodeDecodeError):
        return None


def write_segment_index(segment_path: Path, index: SegmentIndex) -> None:
    """Atomically (temp + rename) write the sidecar for ``segment_path``.

    Raises ``OSError`` on unwritable directories; callers treat the sidecar
    as best-effort and swallow the error (the store works without it).
    """
    path = index_path(segment_path)
    meta = (f"{int(index.segment_bytes)} {int(index.schema)} "
            f"{len(index.keys)} {int(index.skipped)} {int(index.stale)}\n")
    spans = np.empty((len(index.keys), 2), dtype=_SPAN_DTYPE)
    if index.keys:
        spans[:, 0] = index.offsets
        spans[:, 1] = index.lengths
    tmp = path.with_suffix(".idx.tmp")
    with open(tmp, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(meta.encode("ascii"))
        handle.write(",".join(index.keys).encode("utf-8") + b"\n")
        handle.write(spans.tobytes())
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)

"""repro.store — the persistence layer of streaming experiment sessions.

Three pieces, layered::

    from repro.store import ResultSet, ResultStore, unit_key

    store = ResultStore("sweeps/fig2")        # content-addressed JSONL store
    rows = run_grid(cfg, store=store)         # incremental by construction
    rows.filter(scheme="lambda").column("completion_round")   # columnar math

* :mod:`repro.store.keys` — stable content-addressed keys per grid row
  (scheme × family × n × seed × source rule × fault × clock × backend ×
  trace level × schema version);
* :mod:`repro.store.resultset` — :class:`ResultSet`, the NumPy-backed
  columnar container ``run_grid`` returns (list-compatible);
* :mod:`repro.store.store` — :class:`ResultStore`, the sharded append-only
  JSONL store that makes sweeps resumable (O(1) lookups via the sidecar
  offset indexes of :mod:`repro.store.index`, multi-writer safe appends);
* :mod:`repro.store.compact` — :func:`compact_store`, the in-place segment
  garbage collector behind ``repro store compact`` (``format="columnar"``
  rewrites winners into binary column blocks);
* :mod:`repro.store.columnar` — the mmap-backed binary columnar segment
  format behind lazy, column-proportional analytics on big stores.
"""

from .columnar import (
    COLUMNAR_MAGIC,
    COLUMNAR_SUFFIX,
    ColumnarError,
    ColumnarSegment,
    write_columnar_segment,
)
from .compact import compact_store
from .keys import SCHEMA_VERSION, canonical_payload, normalize_backend_name, unit_key
from .resultset import ResultSet
from .store import ResultStore, StoreError

__all__ = [
    "COLUMNAR_MAGIC",
    "COLUMNAR_SUFFIX",
    "ColumnarError",
    "ColumnarSegment",
    "SCHEMA_VERSION",
    "ResultSet",
    "ResultStore",
    "StoreError",
    "canonical_payload",
    "compact_store",
    "normalize_backend_name",
    "unit_key",
    "write_columnar_segment",
]

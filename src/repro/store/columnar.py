"""Binary columnar segments: the store's analytics-grade on-disk format (v2).

A JSONL segment is perfect for appends and terrible for analytics: answering
"mean completion round by scheme" over 10⁶ rows means JSON-parsing every
field of every row.  ``repro store compact --format columnar`` rewrites a
shard's winner lines into one ``segments/<xy>.colseg`` file laid out as
per-column blocks, so a reader that wants two columns touches two columns'
bytes — the file is ``mmap``-ed and NumPy views are taken lazily per column.

File layout (all integers little-endian)::

    repro-colseg 1\\n                 # 15-byte magic
    <u64 header_bytes>
    <header_bytes of UTF-8 JSON>     # {"schema", "rows", "total_bytes",
                                     #  "columns": [{name, kind, ...offsets}]}
    <column blocks, 8-byte aligned>

Column kinds::

    int64      rows × 8 bytes of values
    opt_int64  rows × 8 bytes of values + rows × 1 byte validity mask
    str        (rows+1) × 8 bytes of blob offsets + UTF-8 blob

Per row the file stores the ``key``, every RunMetrics field, and the row's
``trace`` attachment as its canonical JSON text (``""`` = no attachment).
:func:`write_columnar_segment` *verifies before renaming* that every stored
document reconstructs to exactly the canonical JSONL bytes the store's
``put()`` would have written — the bit-for-bit guarantee that makes a
columnar ↔ JSONL round-trip lossless — and refuses (:class:`ColumnarError`)
otherwise, so a segment with hand-edited non-canonical lines simply stays
JSONL.  Writes are atomic (temp + fsync + rename); a truncated or corrupt
file fails validation at open and is quarantined by the loader like JSONL
junk (dropped at the next compaction), never half-parsed.
"""

from __future__ import annotations

import json
import mmap
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..analysis.metrics import (
    METRIC_FIELDS,
    METRIC_INT_FIELDS,
    METRIC_OPTIONAL_INT_FIELDS,
    METRIC_STRING_FIELDS,
)
from .keys import SCHEMA_VERSION

__all__ = [
    "COLUMNAR_MAGIC",
    "COLUMNAR_SUFFIX",
    "ColumnarError",
    "ColumnarSegment",
    "write_columnar_segment",
    "read_file_magic",
]

COLUMNAR_MAGIC = b"repro-colseg 1\n"
COLUMNAR_SUFFIX = ".colseg"

_I64 = np.dtype("<i8")
_U8 = np.dtype("u1")
_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

#: Sentinel stored in the trace column for "no trace attachment".  A real
#: attachment is its canonical JSON text, which is never empty.
_NO_TRACE = ""


class ColumnarError(ValueError):
    """A document cannot be represented columnar-ly, or a file failed validation."""


def read_file_magic(path: Union[str, os.PathLike]) -> bytes:
    """The first ``len(COLUMNAR_MAGIC)`` bytes of ``path`` (b"" on any error)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(COLUMNAR_MAGIC))
    except OSError:
        return b""


def _canonical(doc: Any) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _check_int(value: Any, field: str, key: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ColumnarError(f"row {key}: field {field!r} is not an int")
    if not _INT64_MIN <= value <= _INT64_MAX:
        raise ColumnarError(f"row {key}: field {field!r} overflows int64")
    return value


def _align8(n: int) -> int:
    return (n + 7) & ~7


def write_columnar_segment(
    path: Union[str, os.PathLike],
    docs: Sequence[Dict[str, Any]],
) -> int:
    """Write ``docs`` (winner order) as one columnar segment; returns its size.

    Every doc must be a store document (``key``/``schema``/``row`` and an
    optional ``trace``) at the current schema version whose canonical JSON
    form the column blocks reproduce byte-for-byte; otherwise
    :class:`ColumnarError` is raised and nothing is written.  The write is
    atomic: temp file + fsync + rename, so readers only ever see a complete,
    self-validating segment.
    """
    path = Path(path)
    rows = len(docs)
    keys: List[str] = []
    traces: List[str] = []
    int_cols: Dict[str, List[int]] = {f: [] for f in METRIC_INT_FIELDS}
    opt_cols: Dict[str, List[int]] = {f: [] for f in METRIC_OPTIONAL_INT_FIELDS}
    opt_masks: Dict[str, List[bool]] = {f: [] for f in METRIC_OPTIONAL_INT_FIELDS}
    str_cols: Dict[str, List[str]] = {f: [] for f in METRIC_STRING_FIELDS}

    field_set = frozenset(METRIC_FIELDS)
    for doc in docs:
        if not isinstance(doc, dict) or not set(doc) <= {"key", "schema", "row", "trace"}:
            raise ColumnarError(f"not a store document: {sorted(doc)!r}")
        key = doc.get("key")
        if not isinstance(key, str):
            raise ColumnarError("store document without a string key")
        if doc.get("schema") != SCHEMA_VERSION:
            raise ColumnarError(f"row {key}: schema is not {SCHEMA_VERSION}")
        row = doc.get("row")
        if not isinstance(row, dict) or set(row) != field_set:
            raise ColumnarError(f"row {key}: fields differ from the RunMetrics schema")
        keys.append(key)
        for f in METRIC_INT_FIELDS:
            int_cols[f].append(_check_int(row[f], f, key))
        for f in METRIC_OPTIONAL_INT_FIELDS:
            v = row[f]
            opt_masks[f].append(v is not None)
            opt_cols[f].append(0 if v is None else _check_int(v, f, key))
        for f in METRIC_STRING_FIELDS:
            v = row[f]
            if not isinstance(v, str):
                raise ColumnarError(f"row {key}: field {f!r} is not a string")
            str_cols[f].append(v)
        traces.append(_canonical(doc["trace"]) if "trace" in doc else _NO_TRACE)

    # Assemble blocks in a fixed column order: key, RunMetrics fields, trace.
    directory: List[Dict[str, Any]] = []
    blocks: List[bytes] = []

    def _str_blocks(name: str, values: List[str]) -> None:
        encoded = [v.encode("utf-8") for v in values]
        lengths = np.fromiter((len(e) for e in encoded), dtype=_I64, count=rows)
        offsets = np.zeros(rows + 1, dtype=_I64)
        np.cumsum(lengths, out=offsets[1:])
        blob = b"".join(encoded)
        directory.append({"name": name, "kind": "str",
                          "blocks": [offsets.nbytes, len(blob)]})
        blocks.append(offsets.tobytes())
        blocks.append(blob)

    def _int_block(name: str, values: List[int]) -> None:
        data = np.asarray(values, dtype=_I64)
        directory.append({"name": name, "kind": "int64", "blocks": [data.nbytes]})
        blocks.append(data.tobytes())

    def _opt_blocks(name: str, values: List[int], mask: List[bool]) -> None:
        data = np.asarray(values, dtype=_I64)
        valid = np.asarray(mask, dtype=_U8)
        directory.append({"name": name, "kind": "opt_int64",
                          "blocks": [data.nbytes, valid.nbytes]})
        blocks.append(data.tobytes())
        blocks.append(valid.tobytes())

    _str_blocks("key", keys)
    for f in METRIC_FIELDS:
        if f in METRIC_INT_FIELDS:
            _int_block(f, int_cols[f])
        elif f in METRIC_OPTIONAL_INT_FIELDS:
            _opt_blocks(f, opt_cols[f], opt_masks[f])
        else:
            _str_blocks(f, str_cols[f])
    _str_blocks("trace", traces)

    # Lay the blocks out 8-byte aligned after the header and stamp absolute
    # offsets into the directory.  The header length depends on the offsets
    # (variable-width JSON integers), so fix the layout iteratively.
    def _layout(header_bytes: int) -> int:
        cursor = len(COLUMNAR_MAGIC) + 8 + header_bytes
        block_iter = iter(blocks)
        for entry in directory:
            offsets = []
            for _ in entry["blocks"]:
                cursor = _align8(cursor)
                block = next(block_iter)
                offsets.append(cursor)
                cursor += len(block)
            entry["offsets"] = offsets
        return cursor

    header_doc: Dict[str, Any] = {"schema": SCHEMA_VERSION, "rows": rows}
    header = b""
    for _ in range(8):  # converges in <=2 passes; bounded for safety
        total = _layout(len(header))
        header_doc["columns"] = [
            {"name": e["name"], "kind": e["kind"],
             "blocks": e["blocks"], "offsets": e["offsets"]}
            for e in directory
        ]
        header_doc["total_bytes"] = total
        new_header = _canonical(header_doc).encode("utf-8")
        if len(new_header) == len(header):
            header = new_header
            break
        header = new_header
    else:  # pragma: no cover - layout never oscillates
        raise ColumnarError("columnar header layout failed to converge")

    out = bytearray()
    out += COLUMNAR_MAGIC
    out += np.int64(len(header)).astype(_I64).tobytes()
    out += header
    for block in blocks:
        pad = _align8(len(out)) - len(out)
        out += b"\x00" * pad
        out += block
    if len(out) != header_doc["total_bytes"]:  # pragma: no cover - internal
        raise ColumnarError("columnar layout size mismatch")

    # Verify the bit-for-bit contract before publishing the file: every doc
    # must reconstruct to its canonical JSONL bytes.
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(out)
        handle.flush()
        os.fsync(handle.fileno())
    try:
        segment = ColumnarSegment(tmp)
        try:
            for i, doc in enumerate(docs):
                if _canonical(segment.doc(i)) != _canonical(doc):
                    raise ColumnarError(
                        f"row {keys[i]} does not round-trip bit-for-bit; "
                        f"keeping the segment JSONL"
                    )
        finally:
            segment.close()
    except ColumnarError:
        tmp.unlink(missing_ok=True)
        raise
    os.replace(tmp, path)
    return len(out)


class ColumnarSegment:
    """A lazily-mmapped reader over one ``.colseg`` file.

    Opening validates the magic, header, schema version and the announced
    ``total_bytes`` against the real file size (a truncated tail fails here);
    raises :class:`ColumnarError` on any mismatch.  Column data is only
    touched when asked for: :meth:`get_column` / :meth:`get_mask` return
    NumPy views/arrays over the mmap, so an aggregate over one column reads
    that column's pages only.  The reader also satisfies the column-source
    protocol of :class:`~repro.store.resultset.ResultSet`, which is how a
    columnar store serves lazy result sets.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        self._file = open(self.path, "rb")
        try:
            try:
                self._mm: Any = mmap.mmap(self._file.fileno(), 0,
                                          access=mmap.ACCESS_READ)
            except ValueError:  # empty file cannot be mapped
                raise ColumnarError(f"{self.path}: empty columnar segment")
            buf = self._mm
            magic_len = len(COLUMNAR_MAGIC)
            if buf[:magic_len] != COLUMNAR_MAGIC:
                raise ColumnarError(f"{self.path}: bad columnar magic")
            if len(buf) < magic_len + 8:
                raise ColumnarError(f"{self.path}: truncated columnar header")
            (header_len,) = np.frombuffer(buf, dtype=_I64, count=1,
                                          offset=magic_len)
            header_len = int(header_len)
            header_end = magic_len + 8 + header_len
            if header_len <= 0 or header_end > len(buf):
                raise ColumnarError(f"{self.path}: corrupt columnar header length")
            try:
                header = json.loads(bytes(buf[magic_len + 8:header_end]))
            except ValueError as exc:
                raise ColumnarError(f"{self.path}: corrupt columnar header: {exc}")
            if not isinstance(header, dict):
                raise ColumnarError(f"{self.path}: columnar header is not an object")
            if header.get("schema") != SCHEMA_VERSION:
                raise ColumnarError(
                    f"{self.path}: columnar schema {header.get('schema')!r} "
                    f"!= {SCHEMA_VERSION}"
                )
            if header.get("total_bytes") != len(buf):
                raise ColumnarError(
                    f"{self.path}: file is {len(buf)} bytes but the header "
                    f"announces {header.get('total_bytes')!r} (truncated tail?)"
                )
            self.rows = int(header.get("rows", -1))
            if self.rows < 0:
                raise ColumnarError(f"{self.path}: corrupt row count")
            self.nbytes = len(buf)
            self._dir: Dict[str, Dict[str, Any]] = {}
            for entry in header.get("columns", ()):
                if not isinstance(entry, dict) or "name" not in entry:
                    raise ColumnarError(f"{self.path}: corrupt column directory")
                self._dir[entry["name"]] = entry
            needed = {"key", "trace", *METRIC_FIELDS}
            if not needed <= set(self._dir):
                raise ColumnarError(
                    f"{self.path}: column directory is missing "
                    f"{sorted(needed - set(self._dir))}"
                )
            for name, entry in self._dir.items():
                self._check_entry(name, entry)
            self._decoded: Dict[str, np.ndarray] = {}
            self._keys: Optional[List[str]] = None
        except ColumnarError:
            self.close()
            raise

    # -------------------------------------------------------------- #
    # validation
    # -------------------------------------------------------------- #
    def _check_entry(self, name: str, entry: Dict[str, Any]) -> None:
        kind = entry.get("kind")
        sizes = entry.get("blocks")
        offsets = entry.get("offsets")
        expected = {
            "int64": [self.rows * 8],
            "opt_int64": [self.rows * 8, self.rows],
        }.get(kind)
        if kind == "str":
            if (not isinstance(sizes, list) or len(sizes) != 2
                    or sizes[0] != (self.rows + 1) * 8):
                raise ColumnarError(f"{self.path}: corrupt str column {name!r}")
        elif expected is not None:
            if sizes != expected:
                raise ColumnarError(f"{self.path}: corrupt {kind} column {name!r}")
        else:
            raise ColumnarError(f"{self.path}: unknown column kind {kind!r}")
        if (not isinstance(offsets, list) or len(offsets) != len(sizes)
                or any(not isinstance(o, int) or o < 0 or o + s > self.nbytes
                       for o, s in zip(offsets, sizes))):
            raise ColumnarError(
                f"{self.path}: column {name!r} points outside the file")

    # -------------------------------------------------------------- #
    # raw block access
    # -------------------------------------------------------------- #
    def _entry(self, name: str) -> Dict[str, Any]:
        entry = self._dir.get(name)
        if entry is None:
            raise KeyError(f"{self.path}: no column {name!r}")
        return entry

    def _i64(self, offset: int) -> np.ndarray:
        return np.frombuffer(self._mm, dtype=_I64, count=self.rows, offset=offset)

    def _str_parts(self, name: str) -> tuple:
        entry = self._entry(name)
        off_offset, blob_offset = entry["offsets"]
        offsets = np.frombuffer(self._mm, dtype=_I64, count=self.rows + 1,
                                offset=off_offset)
        blob_len = entry["blocks"][1]
        if offsets[0] != 0 or offsets[-1] != blob_len or np.any(np.diff(offsets) < 0):
            raise ValueError(f"{self.path}: corrupt offsets for column {name!r}")
        return offsets, blob_offset, blob_len

    def _str_value(self, name: str, i: int) -> str:
        offsets, blob_offset, _ = self._str_parts(name)
        start, end = int(offsets[i]), int(offsets[i + 1])
        return bytes(self._mm[blob_offset + start:blob_offset + end]).decode("utf-8")

    def _str_column(self, name: str) -> np.ndarray:
        cached = self._decoded.get(name)
        if cached is None:
            offsets, blob_offset, blob_len = self._str_parts(name)
            blob = bytes(self._mm[blob_offset:blob_offset + blob_len])
            bounds = offsets.tolist()
            cached = np.array(
                [blob[bounds[i]:bounds[i + 1]].decode("utf-8")
                 for i in range(self.rows)],
                dtype=np.str_,
            ) if self.rows else np.array([], dtype=np.str_)
            self._decoded[name] = cached
        return cached

    # -------------------------------------------------------------- #
    # the column-source protocol (ResultSet) + doc reconstruction
    # -------------------------------------------------------------- #
    @property
    def length(self) -> int:
        return self.rows

    def get_column(self, name: str) -> np.ndarray:
        """The raw typed column: int64 view for (optional-)int fields,
        decoded unicode array for string fields."""
        entry = self._entry(name)
        if entry["kind"] == "str":
            return self._str_column(name)
        return self._i64(entry["offsets"][0])

    def get_mask(self, name: str) -> np.ndarray:
        """The validity mask of an ``opt_int64`` column, as booleans."""
        entry = self._entry(name)
        if entry["kind"] != "opt_int64":
            raise KeyError(f"column {name!r} has no validity mask")
        return np.frombuffer(self._mm, dtype=_U8, count=self.rows,
                             offset=entry["offsets"][1]).astype(bool)

    def keys_list(self) -> List[str]:
        """Every row key, in row order (decoded once, then cached)."""
        if self._keys is None:
            self._keys = self._str_column("key").tolist()
        return self._keys

    def key_at(self, i: int) -> str:
        if self._keys is not None:
            return self._keys[i]
        return self._str_value("key", i)

    def doc(self, i: int) -> Dict[str, Any]:
        """Reconstruct row ``i`` as its full store document (canonical form)."""
        if not 0 <= i < self.rows:
            raise ValueError(f"{self.path}: row {i} not in a {self.rows}-row segment")
        row: Dict[str, Any] = {}
        for f in METRIC_FIELDS:
            entry = self._dir[f]
            if entry["kind"] == "str":
                row[f] = self._str_value(f, i)
            elif entry["kind"] == "int64":
                row[f] = int(self._i64(entry["offsets"][0])[i])
            else:
                valid = self._mm[entry["offsets"][1] + i]
                row[f] = int(self._i64(entry["offsets"][0])[i]) if valid else None
        doc: Dict[str, Any] = {"key": self.key_at(i), "schema": SCHEMA_VERSION,
                               "row": row}
        trace_text = self._str_value("trace", i)
        if trace_text != _NO_TRACE:
            doc["trace"] = json.loads(trace_text)
        return doc

    def iter_docs(self):
        """Yield every row's store document, in row order."""
        for i in range(self.rows):
            yield self.doc(i)

    def close(self) -> None:
        mm = getattr(self, "_mm", None)
        if mm is not None:
            mm.close()
            self._mm = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "ColumnarSegment":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnarSegment({str(self.path)!r}, rows={self.rows})"

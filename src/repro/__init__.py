"""repro — reproduction of "Constant-Length Labeling Schemes for Deterministic
Radio Broadcast" (Ellen, Gorain, Miller, Pelc; SPAA 2019).

The package is organised in layers:

* :mod:`repro.graphs`    — graph substrate (generators, properties, I/O);
* :mod:`repro.radio`     — the round-synchronous radio-network simulator;
* :mod:`repro.core`      — the paper's labeling schemes and universal
  algorithms (λ/B, λ_ack/B_ack, λ_arb/B_arb), plus verification of every
  lemma/theorem against simulation traces;
* :mod:`repro.baselines` — the comparison schemes the paper's introduction
  discusses (round-robin, G²-colouring TDMA, collision-detection signalling,
  centralised BFS schedules);
* :mod:`repro.analysis`  — metrics, theoretical bounds, sweeps and reports;
* :mod:`repro.viz`       — ASCII rendering of graphs and executions,
  including the reproduction of the paper's Figure 1.

Quick start::

    from repro import grid_graph, run_broadcast
    g = grid_graph(4, 4)
    outcome = run_broadcast(g, source=0)
    print(outcome.completion_round, "<=", outcome.bound_broadcast)
"""

from .graphs import (
    Graph,
    GraphBuilder,
    GraphError,
    complete_graph,
    cycle_graph,
    generate_family,
    grid_graph,
    path_graph,
    random_geometric_graph,
    random_gnp_graph,
    random_tree,
    star_graph,
)
from .core import (
    BroadcastOutcome,
    Labeling,
    Outcome,
    build_sequences,
    lambda_ack_scheme,
    lambda_arb_scheme,
    lambda_scheme,
    run_acknowledged_broadcast,
    run_arbitrary_source_broadcast,
    run_broadcast,
    verify_broadcast_outcome,
)
from .radio import ExecutionTrace, Message, RadioSimulator, run_protocol
from . import api

__version__ = "1.0.0"

__all__ = [
    "BroadcastOutcome",
    "ExecutionTrace",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "Labeling",
    "Message",
    "Outcome",
    "RadioSimulator",
    "__version__",
    "api",
    "build_sequences",
    "complete_graph",
    "cycle_graph",
    "generate_family",
    "grid_graph",
    "lambda_ack_scheme",
    "lambda_arb_scheme",
    "lambda_scheme",
    "path_graph",
    "random_geometric_graph",
    "random_gnp_graph",
    "random_tree",
    "run_acknowledged_broadcast",
    "run_arbitrary_source_broadcast",
    "run_broadcast",
    "run_protocol",
    "star_graph",
    "verify_broadcast_outcome",
]

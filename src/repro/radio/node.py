"""Per-node protocol interface for the round-synchronous radio model.

A *universal* algorithm in the paper's sense is a deterministic rule that maps
a node's history — its label plus the sequence of messages it has heard so far
— to a decision (transmit a particular message, or listen) in each round.  The
:class:`RadioNode` base class enforces exactly that information regime:

* a node knows its own ``node_id`` only for bookkeeping (traces, metrics); the
  shipped protocols never read it when deciding — universality tests in
  ``tests/test_universality.py`` verify this by running the same protocols with
  permuted identifiers and shifted local clocks;
* a node sees its **local** round counter, which may be offset from the global
  round by an arbitrary per-node constant (the paper's "round numbers refer to
  the local time at the source");
* a node that transmits in a round hears nothing in that round; a listening
  node hears a message iff exactly one neighbour transmitted (collision ⇒
  silence, unless the collision-detection variant is enabled).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from .messages import Message

__all__ = ["HistoryEntry", "RadioNode", "SilentNode"]


@dataclass(frozen=True)
class HistoryEntry:
    """One round of a node's history.

    Attributes
    ----------
    local_round:
        The node's local round counter when the event happened.
    sent:
        The message the node transmitted, or ``None`` if it listened.
    heard:
        The message the node heard, or ``None`` (silence or undetected
        collision).
    collision_detected:
        Only ever ``True`` when the simulator runs with collision detection
        enabled; always ``False`` in the paper's default model.
    """

    local_round: int
    sent: Optional[Message]
    heard: Optional[Message]
    collision_detected: bool = False


class RadioNode(ABC):
    """Base class for per-node radio protocols.

    Subclasses implement :meth:`decide` (what to do this round) and may
    override :meth:`on_receive` to update internal state when a message is
    heard.  The engine drives the following cycle every round:

    1. ``decide(local_round)`` is called on every node simultaneously; a return
       value of ``None`` means *listen*, a :class:`Message` means *transmit*.
    2. The engine resolves collisions and calls ``deliver(...)`` on every node
       with what (if anything) it heard.

    The base class records the full history (the paper allows the decision to
    depend on the entire history) and exposes the convenience accessors the
    shipped protocols need.
    """

    def __init__(self, node_id: int, label: str, *, is_source: bool = False,
                 source_payload: Any = None) -> None:
        if is_source and source_payload is None:
            raise ValueError("the source node must be given a source payload")
        self.node_id = node_id
        self.label = label
        self.is_source = is_source
        self.history: List[HistoryEntry] = []
        self._ever_sent = False
        self._ever_heard = False

    # ------------------------------------------------------------------ #
    # protocol hooks
    # ------------------------------------------------------------------ #
    @abstractmethod
    def decide(self, local_round: int) -> Optional[Message]:
        """Return the message to transmit this round, or ``None`` to listen."""

    def on_receive(self, local_round: int, message: Message) -> None:
        """Hook invoked when the node hears ``message`` (exactly one transmitter)."""

    def on_collision(self, local_round: int) -> None:
        """Hook invoked on a detected collision (collision-detection model only)."""

    def on_silence(self, local_round: int) -> None:
        """Hook invoked when the node listens and hears nothing."""

    # ------------------------------------------------------------------ #
    # engine-facing plumbing (do not override)
    # ------------------------------------------------------------------ #
    def deliver(
        self,
        local_round: int,
        sent: Optional[Message],
        heard: Optional[Message],
        collision_detected: bool = False,
    ) -> None:
        """Record this round's outcome and dispatch the appropriate hook."""
        self.history.append(
            HistoryEntry(
                local_round=local_round,
                sent=sent,
                heard=heard,
                collision_detected=collision_detected,
            )
        )
        if sent is not None:
            self._ever_sent = True
            return  # a transmitting node hears nothing in the same round
        if heard is not None:
            self._ever_heard = True
            self.on_receive(local_round, heard)
        elif collision_detected:
            self.on_collision(local_round)
        else:
            self.on_silence(local_round)

    # ------------------------------------------------------------------ #
    # history accessors
    # ------------------------------------------------------------------ #
    @property
    def ever_sent(self) -> bool:
        """True if the node has transmitted in any past round."""
        return self._ever_sent

    @property
    def ever_heard(self) -> bool:
        """True if the node has heard any message in any past round."""
        return self._ever_heard

    @property
    def ever_communicated(self) -> bool:
        """True if the node has sent or received any message (the paper's
        "never sent or received a message" guard, negated)."""
        return self._ever_sent or self._ever_heard

    def sent_in(self, local_round: int) -> Optional[Message]:
        """The message this node transmitted in the given local round, if any."""
        for entry in reversed(self.history):
            if entry.local_round == local_round:
                return entry.sent
        return None

    def heard_in(self, local_round: int) -> Optional[Message]:
        """The message this node heard in the given local round, if any."""
        for entry in reversed(self.history):
            if entry.local_round == local_round:
                return entry.heard
        return None

    def rounds_heard(self) -> List[Tuple[int, Message]]:
        """All ``(local_round, message)`` pairs the node has heard, in order."""
        return [(e.local_round, e.heard) for e in self.history if e.heard is not None]

    def rounds_sent(self) -> List[Tuple[int, Message]]:
        """All ``(local_round, message)`` pairs the node has transmitted, in order."""
        return [(e.local_round, e.sent) for e in self.history if e.sent is not None]

    def __repr__(self) -> str:
        role = "source" if self.is_source else "node"
        return f"{type(self).__name__}({role} {self.node_id}, label={self.label!r})"


class SilentNode(RadioNode):
    """A node that never transmits — useful as a baseline and in tests."""

    def decide(self, local_round: int) -> Optional[Message]:
        """Always listen."""
        return None

"""Round-synchronous radio-network simulator (the paper's §1.1 model).

Public surface::

    from repro.radio import RadioSimulator, run_protocol, Message, RadioNode
"""

from .clock import ClockModel, OffsetClocks, SynchronizedClocks, random_offsets
from .collision import CollisionModel, NoCollisionDetection, WithCollisionDetection
from .engine import NodeFactory, RadioSimulator, SimulationResult, run_protocol
from .faults import (
    CompositeFaults,
    CrashFaults,
    FaultModel,
    NoFaults,
    TransmissionDropFaults,
)
from .messages import (
    ACK,
    INITIALIZE,
    Message,
    READY,
    SOURCE,
    STAY,
    ack_message,
    initialize_message,
    message_size_bits,
    ready_message,
    source_message,
    stay_message,
)
from .node import HistoryEntry, RadioNode, SilentNode
from .trace import (
    TRACE_FULL,
    TRACE_LEVELS,
    TRACE_NONE,
    TRACE_SUMMARY,
    ExecutionTrace,
    RoundRecord,
    TraceLevelError,
)

__all__ = [
    "ACK",
    "INITIALIZE",
    "READY",
    "SOURCE",
    "STAY",
    "TRACE_FULL",
    "TRACE_LEVELS",
    "TRACE_NONE",
    "TRACE_SUMMARY",
    "TraceLevelError",
    "ClockModel",
    "CollisionModel",
    "CompositeFaults",
    "CrashFaults",
    "ExecutionTrace",
    "FaultModel",
    "HistoryEntry",
    "Message",
    "NoCollisionDetection",
    "NoFaults",
    "NodeFactory",
    "OffsetClocks",
    "RadioNode",
    "RadioSimulator",
    "RoundRecord",
    "SilentNode",
    "SimulationResult",
    "SynchronizedClocks",
    "TransmissionDropFaults",
    "WithCollisionDetection",
    "ack_message",
    "initialize_message",
    "message_size_bits",
    "random_offsets",
    "ready_message",
    "run_protocol",
    "source_message",
    "stay_message",
]

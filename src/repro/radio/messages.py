"""Message taxonomy for the radio-network simulator.

The paper's algorithms use a tiny message vocabulary:

* the *source message* µ itself (Algorithm B),
* a constant-size ``"stay"`` control message (Algorithm B),
* an ``"ack"`` message carrying a round number (Algorithm B_ack),
* ``"initialize"`` and ``"ready"`` control messages (Algorithm B_arb, §4).

Messages transmitted by B_ack / B_arb additionally piggyback an
``O(log n)``-bit round stamp that implements the global clock (§1.1).  We model
every transmission as an immutable :class:`Message` with a ``kind``, an
optional ``payload`` and an optional integer ``round_stamp``; the
:func:`message_size_bits` helper charges each message the number of bits the
paper accounts for, so the benchmark harness can report message-size overhead
faithfully.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

__all__ = [
    "Message",
    "SOURCE",
    "STAY",
    "ACK",
    "INITIALIZE",
    "READY",
    "source_message",
    "stay_message",
    "ack_message",
    "initialize_message",
    "ready_message",
    "message_size_bits",
]

# Message kinds (string constants so traces render readably).
SOURCE = "source"
STAY = "stay"
ACK = "ack"
INITIALIZE = "initialize"
READY = "ready"

_KNOWN_KINDS = frozenset({SOURCE, STAY, ACK, INITIALIZE, READY})


@dataclass(frozen=True)
class Message:
    """An immutable radio transmission.

    Attributes
    ----------
    kind:
        One of :data:`SOURCE`, :data:`STAY`, :data:`ACK`, :data:`INITIALIZE`,
        :data:`READY`.
    payload:
        The application payload.  For :data:`SOURCE` messages this is the
        source message µ; for :data:`ACK` messages in B_arb it may carry µ or
        the timestamp T; otherwise usually ``None``.
    round_stamp:
        The round-number annotation used by B_ack / B_arb to implement a global
        clock, or ``None`` for plain Algorithm B messages.
    """

    kind: str
    payload: Any = None
    round_stamp: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _KNOWN_KINDS:
            raise ValueError(f"unknown message kind {self.kind!r}; known kinds: {sorted(_KNOWN_KINDS)}")
        if self.round_stamp is not None and self.round_stamp < 0:
            raise ValueError(f"round_stamp must be non-negative, got {self.round_stamp}")

    # Convenience predicates — protocols read much better with these.
    @property
    def is_source(self) -> bool:
        """True if this carries the source message µ."""
        return self.kind == SOURCE

    @property
    def is_stay(self) -> bool:
        """True for the constant-size "stay" control message."""
        return self.kind == STAY

    @property
    def is_ack(self) -> bool:
        """True for acknowledgement messages."""
        return self.kind == ACK

    @property
    def is_initialize(self) -> bool:
        """True for B_arb phase-1 "initialize" messages."""
        return self.kind == INITIALIZE

    @property
    def is_ready(self) -> bool:
        """True for B_arb phase-2 "ready" messages."""
        return self.kind == READY

    def with_stamp(self, round_stamp: int) -> "Message":
        """Return a copy carrying the given round stamp."""
        return Message(kind=self.kind, payload=self.payload, round_stamp=round_stamp)

    def __str__(self) -> str:
        stamp = f", t={self.round_stamp}" if self.round_stamp is not None else ""
        payload = f", payload={self.payload!r}" if self.payload is not None else ""
        return f"<{self.kind}{payload}{stamp}>"


def source_message(payload: Any, round_stamp: Optional[int] = None) -> Message:
    """Build a message carrying the source message µ."""
    return Message(SOURCE, payload=payload, round_stamp=round_stamp)


def stay_message(round_stamp: Optional[int] = None) -> Message:
    """Build the constant-size "stay" control message."""
    return Message(STAY, round_stamp=round_stamp)


def ack_message(round_stamp: int, payload: Any = None) -> Message:
    """Build an acknowledgement message carrying the informing round number."""
    return Message(ACK, payload=payload, round_stamp=round_stamp)


def initialize_message(round_stamp: Optional[int] = None) -> Message:
    """Build the B_arb phase-1 "initialize" message."""
    return Message(INITIALIZE, round_stamp=round_stamp)


def ready_message(timestamp: int, round_stamp: Optional[int] = None) -> Message:
    """Build the B_arb phase-2 "ready" message carrying the timestamp T."""
    return Message(READY, payload=timestamp, round_stamp=round_stamp)


def message_size_bits(message: Message, source_payload_bits: int = 0) -> int:
    """Number of bits the paper charges for transmitting ``message``.

    * Source messages cost the payload size (``source_payload_bits``).
    * "stay"/"initialize"/"ready"/"ack" control markers cost a constant 2 bits
      (there are at most four control kinds plus the source marker).
    * A round stamp adds ``ceil(log2(stamp + 2))`` bits, matching the paper's
      O(log n) accounting for the global-clock annotation.
    """
    bits = source_payload_bits if message.is_source else 2
    if message.round_stamp is not None:
        bits += max(1, math.ceil(math.log2(message.round_stamp + 2)))
    if message.is_ready or (message.is_ack and message.payload is not None):
        # READY carries the timestamp T; the B_arb ack may carry µ or T.
        extra = message.payload
        if isinstance(extra, int):
            bits += max(1, math.ceil(math.log2(abs(extra) + 2)))
        else:
            bits += source_payload_bits
    return bits

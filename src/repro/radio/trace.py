"""Execution traces: the complete round-by-round record of a simulation.

Everything downstream of the simulator — metrics, bound verification, the
Lemma 2.8 characterisation checks, the Figure 1 renderer — operates on an
:class:`ExecutionTrace` rather than poking into node objects.  A trace is a
pure value: it can be compared, serialised and replayed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from .messages import Message

__all__ = ["RoundRecord", "ExecutionTrace"]


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one global round.

    Attributes
    ----------
    round_number:
        Global (source-local) round number, starting at 1.
    transmissions:
        Mapping transmitter node → message it put on the channel.  Includes
        only transmissions that survived fault injection.
    receptions:
        Mapping listener node → message it actually heard (exactly one
        transmitting neighbour).
    collisions:
        Set of listening nodes with two or more transmitting neighbours.
    suppressed:
        Transmissions decided by nodes but dropped by the fault model, mapping
        node → message (empty with :class:`~repro.radio.faults.NoFaults`).
    """

    round_number: int
    transmissions: Mapping[int, Message]
    receptions: Mapping[int, Message]
    collisions: FrozenSet[int]
    suppressed: Mapping[int, Message] = field(default_factory=dict)

    @property
    def num_transmitters(self) -> int:
        """Number of nodes that transmitted this round."""
        return len(self.transmissions)

    @property
    def num_receivers(self) -> int:
        """Number of nodes that heard a message this round."""
        return len(self.receptions)

    @property
    def is_silent(self) -> bool:
        """True if nobody transmitted this round."""
        return not self.transmissions


@dataclass
class ExecutionTrace:
    """Ordered list of :class:`RoundRecord` plus graph/protocol metadata."""

    num_nodes: int
    source: Optional[int]
    rounds: List[RoundRecord] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # building
    # ------------------------------------------------------------------ #
    def append(self, record: RoundRecord) -> None:
        """Append the next round's record (round numbers must be consecutive)."""
        expected = self.num_rounds + 1
        if record.round_number != expected:
            raise ValueError(
                f"expected round {expected}, got record for round {record.round_number}"
            )
        self.rounds.append(record)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_rounds(self) -> int:
        """Number of rounds recorded so far."""
        return len(self.rounds)

    def record(self, round_number: int) -> RoundRecord:
        """The record for a 1-indexed round number."""
        if not (1 <= round_number <= self.num_rounds):
            raise IndexError(f"round {round_number} not in 1..{self.num_rounds}")
        return self.rounds[round_number - 1]

    def __iter__(self):
        return iter(self.rounds)

    def __len__(self) -> int:
        return self.num_rounds

    # ------------------------------------------------------------------ #
    # derived per-node views
    # ------------------------------------------------------------------ #
    def transmit_rounds(self, node: int) -> List[int]:
        """Rounds in which ``node`` transmitted (any message kind)."""
        return [r.round_number for r in self.rounds if node in r.transmissions]

    def receive_rounds(self, node: int) -> List[int]:
        """Rounds in which ``node`` heard a message (any kind)."""
        return [r.round_number for r in self.rounds if node in r.receptions]

    def collision_rounds(self, node: int) -> List[int]:
        """Rounds in which ``node`` experienced a collision."""
        return [r.round_number for r in self.rounds if node in r.collisions]

    def messages_heard(self, node: int) -> List[Tuple[int, Message]]:
        """All ``(round, message)`` pairs heard by ``node``."""
        return [
            (r.round_number, r.receptions[node]) for r in self.rounds if node in r.receptions
        ]

    def messages_sent(self, node: int) -> List[Tuple[int, Message]]:
        """All ``(round, message)`` pairs transmitted by ``node``."""
        return [
            (r.round_number, r.transmissions[node]) for r in self.rounds if node in r.transmissions
        ]

    # ------------------------------------------------------------------ #
    # broadcast-specific summaries
    # ------------------------------------------------------------------ #
    def first_source_receipt(self, node: int) -> Optional[int]:
        """First round in which ``node`` heard a message carrying µ, or ``None``.

        Both plain :data:`~repro.radio.messages.SOURCE` messages and ack
        messages that carry µ as payload count, because B_arb distributes µ via
        the acknowledgement chain in its phase 2.
        """
        for r in self.rounds:
            msg = r.receptions.get(node)
            if msg is not None and msg.is_source:
                return r.round_number
        return None

    def informed_nodes(self) -> Set[int]:
        """Nodes that have heard µ at least once (the source is always counted)."""
        informed: Set[int] = set()
        if self.source is not None:
            informed.add(self.source)
        for r in self.rounds:
            for node, msg in r.receptions.items():
                if msg.is_source:
                    informed.add(node)
        return informed

    def informed_by_round(self) -> Dict[int, int]:
        """Mapping node → first round it heard µ (source omitted)."""
        first: Dict[int, int] = {}
        for r in self.rounds:
            for node, msg in r.receptions.items():
                if msg.is_source and node not in first:
                    first[node] = r.round_number
        return first

    def broadcast_completion_round(self) -> Optional[int]:
        """First round after which every non-source node has heard µ, or ``None``.

        Only meaningful when :attr:`source` is set.
        """
        if self.source is None:
            return None
        pending = set(range(self.num_nodes)) - {self.source}
        for r in self.rounds:
            for node, msg in r.receptions.items():
                if msg.is_source:
                    pending.discard(node)
            if not pending:
                return r.round_number
        return None

    def first_ack_at(self, node: int) -> Optional[int]:
        """First round in which ``node`` heard an ack message, or ``None``."""
        for r in self.rounds:
            msg = r.receptions.get(node)
            if msg is not None and msg.is_ack:
                return r.round_number
        return None

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #
    def total_transmissions(self) -> int:
        """Total number of transmissions across all rounds."""
        return sum(r.num_transmitters for r in self.rounds)

    def total_collisions(self) -> int:
        """Total number of (node, round) collision events."""
        return sum(len(r.collisions) for r in self.rounds)

    def transmissions_by_kind(self) -> Dict[str, int]:
        """Histogram of transmitted message kinds."""
        hist: Dict[str, int] = {}
        for r in self.rounds:
            for msg in r.transmissions.values():
                hist[msg.kind] = hist.get(msg.kind, 0) + 1
        return hist

    # ------------------------------------------------------------------ #
    # serialization (for regression fixtures)
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Serialise the trace to JSON (payloads are stringified)."""
        doc = {
            "num_nodes": self.num_nodes,
            "source": self.source,
            "metadata": {k: str(v) for k, v in self.metadata.items()},
            "rounds": [
                {
                    "round": r.round_number,
                    "transmissions": {
                        str(u): _msg_doc(m) for u, m in sorted(r.transmissions.items())
                    },
                    "receptions": {
                        str(u): _msg_doc(m) for u, m in sorted(r.receptions.items())
                    },
                    "collisions": sorted(r.collisions),
                }
                for r in self.rounds
            ],
        }
        return json.dumps(doc, indent=2)

    def summary(self) -> str:
        """Multi-line human readable summary of the execution."""
        lines = [
            f"ExecutionTrace: {self.num_nodes} nodes, source={self.source}, "
            f"{self.num_rounds} rounds",
            f"  total transmissions: {self.total_transmissions()}",
            f"  total collisions:    {self.total_collisions()}",
            f"  informed nodes:      {len(self.informed_nodes())}/{self.num_nodes}",
        ]
        completion = self.broadcast_completion_round()
        if completion is not None:
            lines.append(f"  broadcast complete in round {completion}")
        return "\n".join(lines)


def _msg_doc(message: Message) -> Dict[str, Any]:
    return {
        "kind": message.kind,
        "payload": None if message.payload is None else str(message.payload),
        "round_stamp": message.round_stamp,
    }

"""Execution traces: the round-by-round record of a simulation.

Everything downstream of the simulator — metrics, bound verification, the
Lemma 2.8 characterisation checks, the Figure 1 renderer — operates on an
:class:`ExecutionTrace` rather than poking into node objects.  A trace is a
pure value: it can be compared, serialised and replayed.

Traces support three recording levels (:data:`TRACE_LEVELS`):

* ``"full"``    — keep every :class:`RoundRecord` (the historical behaviour,
  and the default).  Memory grows with rounds × activity.
* ``"summary"`` — keep only O(n) incremental aggregates: totals, per-node
  first-informed / first-ack rounds, the completion round.  All the headline
  accessors (:meth:`ExecutionTrace.broadcast_completion_round`,
  :meth:`ExecutionTrace.first_ack_at`, :meth:`ExecutionTrace.total_transmissions`,
  …) keep working; per-round record access raises :class:`TraceLevelError`.
* ``"none"``    — like ``"summary"``; reserved for backends that skip even
  per-round trace interaction on their hot path.

The aggregates are maintained incrementally at *every* level, so the summary
accessors are O(1) even on full traces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .messages import Message, message_size_bits

__all__ = [
    "RoundRecord",
    "ExecutionTrace",
    "TraceLevelError",
    "TRACE_NONE",
    "TRACE_SUMMARY",
    "TRACE_FULL",
    "TRACE_LEVELS",
]

#: Recording levels, cheapest first.
TRACE_NONE = "none"
TRACE_SUMMARY = "summary"
TRACE_FULL = "full"
TRACE_LEVELS = (TRACE_NONE, TRACE_SUMMARY, TRACE_FULL)


class TraceLevelError(ValueError):
    """Raised when per-round record access is attempted on a summary trace."""


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one global round.

    Attributes
    ----------
    round_number:
        Global (source-local) round number, starting at 1.
    transmissions:
        Mapping transmitter node → message it put on the channel.  Includes
        only transmissions that survived fault injection.
    receptions:
        Mapping listener node → message it actually heard (exactly one
        transmitting neighbour).
    collisions:
        Set of listening nodes with two or more transmitting neighbours.
    suppressed:
        Transmissions decided by nodes but dropped by the fault model, mapping
        node → message (empty with :class:`~repro.radio.faults.NoFaults`).
    """

    round_number: int
    transmissions: Mapping[int, Message]
    receptions: Mapping[int, Message]
    collisions: FrozenSet[int]
    suppressed: Mapping[int, Message] = field(default_factory=dict)

    @property
    def num_transmitters(self) -> int:
        """Number of nodes that transmitted this round."""
        return len(self.transmissions)

    @property
    def num_receivers(self) -> int:
        """Number of nodes that heard a message this round."""
        return len(self.receptions)

    @property
    def is_silent(self) -> bool:
        """True if nobody transmitted this round."""
        return not self.transmissions


def _carries_payload_bits(message: Message) -> bool:
    """True if ``message``'s size includes the source payload bit count.

    Mirrors the accounting of :func:`~repro.radio.messages.message_size_bits`:
    source messages always carry µ; ack/ready messages carry it only when
    their payload is a non-integer (integers are charged their own bit width).
    """
    if message.is_source:
        return True
    if message.is_ready or (message.is_ack and message.payload is not None):
        return not isinstance(message.payload, int)
    return False


class ExecutionTrace:
    """Round records (optional) plus incrementally maintained aggregates.

    Equality compares the identity fields, the retained records *and* the
    incremental aggregates, so two summary traces are equal exactly when they
    describe the same aggregate execution (full traces additionally compare
    record by record).
    """

    def __init__(
        self,
        num_nodes: int,
        source: Optional[int],
        rounds: Optional[Sequence[RoundRecord]] = None,
        metadata: Optional[Dict[str, Any]] = None,
        level: str = TRACE_FULL,
    ) -> None:
        if level not in TRACE_LEVELS:
            raise ValueError(f"unknown trace level {level!r}; expected one of {TRACE_LEVELS}")
        self.num_nodes = num_nodes
        self.source = source
        self.metadata: Dict[str, Any] = dict(metadata) if metadata else {}
        self.level = level
        self._records: List[RoundRecord] = []
        # Incremental aggregates (maintained at every level).
        self._num_rounds = 0
        self._total_tx = 0
        self._total_rx = 0
        self._total_collisions = 0
        self._kind_hist: Dict[str, int] = {}
        self._fixed_bits = 0
        self._payload_messages = 0
        self._informed_first: Dict[int, int] = {}
        self._ack_first: Dict[int, int] = {}
        self._ack_last: Dict[int, int] = {}
        self._pending: Set[int] = set()
        self._completion_round: Optional[int] = None
        if source is not None:
            self._pending.update(v for v in range(num_nodes) if v != source)
        for record in rounds or ():
            self.append(record)

    def _identity(self):
        return (
            self.num_nodes,
            self.source,
            self.level,
            self.metadata,
            self._records,
            self._num_rounds,
            self._total_tx,
            self._total_rx,
            self._total_collisions,
            self._kind_hist,
            self._fixed_bits,
            self._payload_messages,
            self._informed_first,
            self._ack_first,
            self._ack_last,
            self._completion_round,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, ExecutionTrace):
            return NotImplemented
        return self._identity() == other._identity()

    def __repr__(self) -> str:
        return (
            f"ExecutionTrace(num_nodes={self.num_nodes}, source={self.source}, "
            f"level={self.level!r}, rounds={self._num_rounds})"
        )

    @property
    def rounds(self) -> List[RoundRecord]:
        """The retained :class:`RoundRecord` list (full traces only).

        Raising here (rather than returning an empty list) keeps direct
        consumers — renderers, verifiers, per-round metrics — from silently
        processing nothing when handed a summary trace.
        """
        self._require_full("accessing trace.rounds")
        return self._records

    # ------------------------------------------------------------------ #
    # building
    # ------------------------------------------------------------------ #
    def append(self, record: RoundRecord) -> None:
        """Append the next round's record (round numbers must be consecutive)."""
        expected = self._num_rounds + 1
        if record.round_number != expected:
            raise ValueError(
                f"expected round {expected}, got record for round {record.round_number}"
            )
        self._num_rounds = expected
        self._ingest(record)
        if self.level == TRACE_FULL:
            self._records.append(record)

    def _ingest(self, record: RoundRecord) -> None:
        rnd = record.round_number
        self._total_tx += len(record.transmissions)
        self._total_rx += len(record.receptions)
        self._total_collisions += len(record.collisions)
        for msg in record.transmissions.values():
            self._kind_hist[msg.kind] = self._kind_hist.get(msg.kind, 0) + 1
            self._fixed_bits += message_size_bits(msg, source_payload_bits=0)
            if _carries_payload_bits(msg):
                self._payload_messages += 1
        for node, msg in record.receptions.items():
            if msg.is_source:
                self._informed_first.setdefault(node, rnd)
                self._pending.discard(node)
            elif msg.is_ack:
                self._ack_first.setdefault(node, rnd)
                self._ack_last[node] = rnd
        if self._completion_round is None and self.source is not None and not self._pending:
            self._completion_round = rnd

    def record_summary_round(
        self,
        round_number: int,
        *,
        transmissions: int = 0,
        receptions: int = 0,
        collisions: int = 0,
        kinds: Optional[Mapping[str, int]] = None,
        fixed_bits: int = 0,
        payload_messages: int = 0,
        informed: Iterable[int] = (),
        ack_hearers: Iterable[int] = (),
    ) -> None:
        """Record one round's aggregates without materialising a :class:`RoundRecord`.

        This is the fast path used by the vectorized backend at the
        ``"summary"`` / ``"none"`` levels: ``fixed_bits`` is the round's total
        message size excluding source-payload bits, ``payload_messages`` the
        number of transmissions whose size includes the payload, ``informed``
        the nodes that heard a µ-carrying message this round and
        ``ack_hearers`` the nodes that heard an ack.
        """
        if self.level == TRACE_FULL:
            raise TraceLevelError(
                "record_summary_round is only valid on summary/none traces; "
                "append full RoundRecords instead"
            )
        expected = self._num_rounds + 1
        if round_number != expected:
            raise ValueError(f"expected round {expected}, got summary for round {round_number}")
        self._num_rounds = expected
        self._total_tx += transmissions
        self._total_rx += receptions
        self._total_collisions += collisions
        for kind, count in (kinds or {}).items():
            if count:
                self._kind_hist[kind] = self._kind_hist.get(kind, 0) + int(count)
        self._fixed_bits += int(fixed_bits)
        self._payload_messages += int(payload_messages)
        for node in informed:
            node = int(node)
            self._informed_first.setdefault(node, round_number)
            self._pending.discard(node)
        for node in ack_hearers:
            node = int(node)
            self._ack_first.setdefault(node, round_number)
            self._ack_last[node] = round_number
        if self._completion_round is None and self.source is not None and not self._pending:
            self._completion_round = round_number

    @classmethod
    def from_aggregates(
        cls,
        num_nodes: int,
        source: Optional[int],
        *,
        level: str,
        num_rounds: int,
        total_transmissions: int = 0,
        total_receptions: int = 0,
        total_collisions: int = 0,
        kind_hist: Optional[Mapping[str, int]] = None,
        fixed_bits: int = 0,
        payload_messages: int = 0,
        informed_first: Optional[Mapping[int, int]] = None,
        ack_first: Optional[Mapping[int, int]] = None,
        ack_last: Optional[Mapping[int, int]] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> "ExecutionTrace":
        """Materialise a summary/none-level trace from whole-run aggregates.

        The batched backend advances many instances per kernel round and
        accumulates each instance's aggregates in arrays; calling
        :meth:`record_summary_round` once per instance per round would undo
        that batching.  This constructor builds the identical end state in
        one step: the result compares equal (``==``) to a trace built
        incrementally from the same execution.  The completion round is
        derived exactly as the incremental path would have: the first round
        by which every non-source node appears in ``informed_first`` is
        their maximum first-receipt round (or round 1 for a source-only
        network that ran at least one round).
        """
        if level == TRACE_FULL:
            raise TraceLevelError(
                "from_aggregates builds summary/none traces; full traces "
                "need their per-round records appended"
            )
        trace = cls(num_nodes, source, metadata=metadata, level=level)
        trace._num_rounds = int(num_rounds)
        trace._total_tx = int(total_transmissions)
        trace._total_rx = int(total_receptions)
        trace._total_collisions = int(total_collisions)
        trace._kind_hist = {
            str(k): int(v) for k, v in (kind_hist or {}).items() if int(v)
        }
        trace._fixed_bits = int(fixed_bits)
        trace._payload_messages = int(payload_messages)
        trace._informed_first = {int(v): int(r) for v, r in (informed_first or {}).items()}
        trace._ack_first = {int(v): int(r) for v, r in (ack_first or {}).items()}
        trace._ack_last = {int(v): int(r) for v, r in (ack_last or {}).items()}
        trace._pending -= set(trace._informed_first)
        if source is not None and not trace._pending and trace._num_rounds >= 1:
            non_source = [r for v, r in trace._informed_first.items() if v != source]
            trace._completion_round = max(non_source) if non_source else 1
        return trace

    def to_aggregates(self) -> Dict[str, Any]:
        """The trace's aggregate state as a JSON-serializable document.

        This is the persistence format of summary/none traces (the result
        store attaches it to rows): every field :meth:`from_aggregates`
        accepts, with integer-keyed maps stringified for JSON.  For a
        summary/none trace whose metadata values are JSON-native,
        ``from_aggregates_doc(json.loads(json.dumps(t.to_aggregates())))``
        compares equal (``==``) to ``t`` — including the batched backend's
        whole-run aggregates (kind histogram, fixed bits, payload-message
        count, first-informed/ack maps).  Metadata travels verbatim, so
        non-JSON-serializable metadata values fail at ``json.dumps`` time
        rather than silently coming back stringified.  Full traces raise:
        their per-round records do not survive this view (use
        :meth:`to_json`).
        """
        if self.level == TRACE_FULL:
            raise TraceLevelError(
                "to_aggregates() captures summary/none traces; full traces "
                "serialise their per-round records via to_json()"
            )
        return {
            "num_nodes": self.num_nodes,
            "source": self.source,
            "level": self.level,
            "num_rounds": self._num_rounds,
            "total_transmissions": self._total_tx,
            "total_receptions": self._total_rx,
            "total_collisions": self._total_collisions,
            "kind_hist": dict(self._kind_hist),
            "fixed_bits": self._fixed_bits,
            "payload_messages": self._payload_messages,
            "informed_first": {str(v): r for v, r in self._informed_first.items()},
            "ack_first": {str(v): r for v, r in self._ack_first.items()},
            "ack_last": {str(v): r for v, r in self._ack_last.items()},
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_aggregates_doc(cls, doc: Mapping[str, Any]) -> "ExecutionTrace":
        """Rebuild a summary/none trace from a :meth:`to_aggregates` document."""
        return cls.from_aggregates(
            int(doc["num_nodes"]),
            None if doc.get("source") is None else int(doc["source"]),
            level=doc.get("level", TRACE_SUMMARY),
            num_rounds=int(doc.get("num_rounds", 0)),
            total_transmissions=int(doc.get("total_transmissions", 0)),
            total_receptions=int(doc.get("total_receptions", 0)),
            total_collisions=int(doc.get("total_collisions", 0)),
            kind_hist=doc.get("kind_hist"),
            fixed_bits=int(doc.get("fixed_bits", 0)),
            payload_messages=int(doc.get("payload_messages", 0)),
            informed_first={int(v): int(r)
                            for v, r in (doc.get("informed_first") or {}).items()},
            ack_first={int(v): int(r)
                       for v, r in (doc.get("ack_first") or {}).items()},
            ack_last={int(v): int(r)
                      for v, r in (doc.get("ack_last") or {}).items()},
            metadata=dict(doc.get("metadata") or {}),
        )

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_rounds(self) -> int:
        """Number of rounds recorded so far."""
        return self._num_rounds

    @property
    def has_full_records(self) -> bool:
        """True if per-round :class:`RoundRecord` objects were retained."""
        return self.level == TRACE_FULL

    def _require_full(self, what: str) -> None:
        if self.level != TRACE_FULL:
            raise TraceLevelError(
                f"{what} requires a full trace, but this trace was recorded at "
                f"level {self.level!r}; rerun with trace_level='full'"
            )

    def record(self, round_number: int) -> RoundRecord:
        """The record for a 1-indexed round number."""
        self._require_full("record()")
        if not (1 <= round_number <= self.num_rounds):
            raise IndexError(f"round {round_number} not in 1..{self.num_rounds}")
        return self.rounds[round_number - 1]

    def __iter__(self):
        self._require_full("iterating a trace")
        return iter(self.rounds)

    def __len__(self) -> int:
        return self.num_rounds

    # ------------------------------------------------------------------ #
    # derived per-node views (full traces only)
    # ------------------------------------------------------------------ #
    def transmit_rounds(self, node: int) -> List[int]:
        """Rounds in which ``node`` transmitted (any message kind)."""
        self._require_full("transmit_rounds()")
        return [r.round_number for r in self.rounds if node in r.transmissions]

    def receive_rounds(self, node: int) -> List[int]:
        """Rounds in which ``node`` heard a message (any kind)."""
        self._require_full("receive_rounds()")
        return [r.round_number for r in self.rounds if node in r.receptions]

    def collision_rounds(self, node: int) -> List[int]:
        """Rounds in which ``node`` experienced a collision."""
        self._require_full("collision_rounds()")
        return [r.round_number for r in self.rounds if node in r.collisions]

    def messages_heard(self, node: int) -> List[Tuple[int, Message]]:
        """All ``(round, message)`` pairs heard by ``node``."""
        self._require_full("messages_heard()")
        return [
            (r.round_number, r.receptions[node]) for r in self.rounds if node in r.receptions
        ]

    def messages_sent(self, node: int) -> List[Tuple[int, Message]]:
        """All ``(round, message)`` pairs transmitted by ``node``."""
        self._require_full("messages_sent()")
        return [
            (r.round_number, r.transmissions[node]) for r in self.rounds if node in r.transmissions
        ]

    # ------------------------------------------------------------------ #
    # broadcast-specific summaries (work at every level)
    # ------------------------------------------------------------------ #
    def first_source_receipt(self, node: int) -> Optional[int]:
        """First round in which ``node`` heard a message carrying µ, or ``None``.

        Both plain :data:`~repro.radio.messages.SOURCE` messages and ack
        messages that carry µ as payload count, because B_arb distributes µ via
        the acknowledgement chain in its phase 2.
        """
        return self._informed_first.get(node)

    def informed_nodes(self) -> Set[int]:
        """Nodes that have heard µ at least once (the source is always counted)."""
        informed: Set[int] = set(self._informed_first)
        if self.source is not None:
            informed.add(self.source)
        return informed

    def informed_by_round(self) -> Dict[int, int]:
        """Mapping node → first round it heard µ (source omitted)."""
        return dict(self._informed_first)

    def broadcast_completion_round(self) -> Optional[int]:
        """First round after which every non-source node has heard µ, or ``None``.

        Only meaningful when :attr:`source` is set.
        """
        if self.source is None:
            return None
        return self._completion_round

    def first_ack_at(self, node: int) -> Optional[int]:
        """First round in which ``node`` heard an ack message, or ``None``."""
        return self._ack_first.get(node)

    def last_ack_at(self, node: int) -> Optional[int]:
        """Most recent round in which ``node`` heard an ack message, or ``None``."""
        return self._ack_last.get(node)

    # ------------------------------------------------------------------ #
    # aggregates (work at every level)
    # ------------------------------------------------------------------ #
    def total_transmissions(self) -> int:
        """Total number of transmissions across all rounds."""
        return self._total_tx

    def total_receptions(self) -> int:
        """Total number of successful receptions across all rounds."""
        return self._total_rx

    def total_collisions(self) -> int:
        """Total number of (node, round) collision events."""
        return self._total_collisions

    def transmissions_by_kind(self) -> Dict[str, int]:
        """Histogram of transmitted message kinds."""
        return dict(self._kind_hist)

    def total_message_bits(self, source_payload_bits: int = 32) -> int:
        """Total bits put on the channel (the paper's message-size accounting)."""
        return self._fixed_bits + self._payload_messages * source_payload_bits

    # ------------------------------------------------------------------ #
    # serialization (for regression fixtures; full traces only)
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Serialise the trace to JSON (payloads are stringified)."""
        self._require_full("to_json()")
        doc = {
            "num_nodes": self.num_nodes,
            "source": self.source,
            "metadata": {k: str(v) for k, v in self.metadata.items()},
            "rounds": [
                {
                    "round": r.round_number,
                    "transmissions": {
                        str(u): _msg_doc(m) for u, m in sorted(r.transmissions.items())
                    },
                    "receptions": {
                        str(u): _msg_doc(m) for u, m in sorted(r.receptions.items())
                    },
                    "collisions": sorted(r.collisions),
                }
                for r in self.rounds
            ],
        }
        return json.dumps(doc, indent=2)

    def summary(self) -> str:
        """Multi-line human readable summary of the execution."""
        lines = [
            f"ExecutionTrace: {self.num_nodes} nodes, source={self.source}, "
            f"{self.num_rounds} rounds",
            f"  total transmissions: {self.total_transmissions()}",
            f"  total collisions:    {self.total_collisions()}",
            f"  informed nodes:      {len(self.informed_nodes())}/{self.num_nodes}",
        ]
        completion = self.broadcast_completion_round()
        if completion is not None:
            lines.append(f"  broadcast complete in round {completion}")
        return "\n".join(lines)


def _msg_doc(message: Message) -> Dict[str, Any]:
    return {
        "kind": message.kind,
        "payload": None if message.payload is None else str(message.payload),
        "round_stamp": message.round_stamp,
    }

"""Collision semantics of the radio channel.

The paper's default model has **no collision detection**: when two or more
neighbours of a listening node transmit in the same round, the node hears
nothing and cannot distinguish that from silence.  The introduction notes that
*with* collision detection broadcast is trivially feasible even in anonymous
networks, which is exactly the baseline implemented in
:mod:`repro.baselines.collision_detection`; to support it the simulator can be
run with :class:`WithCollisionDetection`.

A collision model maps the multiset of messages arriving at a listener to what
the listener perceives: ``(heard_message_or_None, collision_detected_flag)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

from .messages import Message

__all__ = ["CollisionModel", "NoCollisionDetection", "WithCollisionDetection"]


class CollisionModel(ABC):
    """Strategy object deciding what a listening node perceives."""

    #: Whether nodes running under this model may rely on a collision signal.
    provides_detection: bool = False

    @abstractmethod
    def perceive(self, arriving: Sequence[Message]) -> Tuple[Optional[Message], bool]:
        """Resolve the messages arriving at a listener.

        Parameters
        ----------
        arriving:
            Messages transmitted this round by the listener's neighbours
            (order is by transmitter node index; the model must not depend on
            the order beyond determinism).

        Returns
        -------
        tuple
            ``(heard, collision_detected)`` where ``heard`` is the message the
            node receives (or ``None``) and ``collision_detected`` indicates a
            perceptible collision.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return type(self).__name__ + "()"


class NoCollisionDetection(CollisionModel):
    """The paper's model: a node hears a message iff exactly one neighbour transmits.

    Collisions are indistinguishable from background noise.
    """

    provides_detection = False

    def perceive(self, arriving: Sequence[Message]) -> Tuple[Optional[Message], bool]:
        """Deliver the unique message, or nothing at all."""
        if len(arriving) == 1:
            return arriving[0], False
        return None, False


class WithCollisionDetection(CollisionModel):
    """Extension model: collisions are perceptibly different from silence.

    A listening node whose neighbourhood has two or more transmitters receives
    no message but observes a collision indicator.  Used only by the
    bit-signalling baseline; never by the paper's core algorithms.
    """

    provides_detection = True

    def perceive(self, arriving: Sequence[Message]) -> Tuple[Optional[Message], bool]:
        """Deliver the unique message, or flag a collision when there are ≥ 2."""
        if len(arriving) == 1:
            return arriving[0], False
        if len(arriving) >= 2:
            return None, True
        return None, False

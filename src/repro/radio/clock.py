"""Local-clock modelling.

The paper is explicit that "round numbers refer to the local time at the
source, which can differ from the local time at other nodes".  Its algorithms
are therefore written so that a node's behaviour only depends on *relative*
round offsets ("first received µ in round r−2") or on round stamps carried
inside messages — never on a shared absolute round counter.

To be able to *test* that our protocol implementations respect this, the
engine threads a :class:`ClockModel` that maps the global simulation round to
each node's local round counter.  The default :class:`SynchronizedClocks`
makes them identical; :class:`OffsetClocks` applies an arbitrary fixed offset
per node.  A correct universal protocol must produce the same global behaviour
under any offset assignment (verified in ``tests/test_universality.py``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..graphs.random import SeedLike, make_rng

__all__ = ["ClockModel", "SynchronizedClocks", "OffsetClocks", "random_offsets"]


class ClockModel:
    """Maps the engine's global round counter to each node's local counter."""

    def local_round(self, node: int, global_round: int) -> int:
        """Local round number observed by ``node`` during global round ``global_round``."""
        raise NotImplementedError


class SynchronizedClocks(ClockModel):
    """All nodes share the source's round counter (the convenient default)."""

    def local_round(self, node: int, global_round: int) -> int:
        """Identity mapping."""
        return global_round


class OffsetClocks(ClockModel):
    """Each node's counter is the global round plus a fixed per-node offset."""

    def __init__(self, offsets: Mapping[int, int], default: int = 0) -> None:
        self.offsets: Dict[int, int] = dict(offsets)
        self.default = default

    def local_round(self, node: int, global_round: int) -> int:
        """Global round shifted by the node's offset."""
        return global_round + self.offsets.get(node, self.default)


def random_offsets(num_nodes: int, max_offset: int = 1000, seed: SeedLike = 0) -> OffsetClocks:
    """Build an :class:`OffsetClocks` with uniformly random non-negative offsets.

    Offsets are non-negative so local round counters stay positive; the source
    (node index is unknown here, so *every* node) may be shifted, which is
    strictly more adversarial than the paper requires.
    """
    rng = make_rng(seed)
    offsets = {v: int(rng.integers(0, max_offset + 1)) for v in range(num_nodes)}
    return OffsetClocks(offsets)

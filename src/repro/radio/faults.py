"""Fault injection for robustness experiments.

The paper's algorithms assume a reliable synchronous radio channel.  To make
that assumption *visible* (and to support the ablation benchmarks that show
how the schemes degrade outside their model), the engine accepts an optional
:class:`FaultModel` that may suppress individual transmissions or crash nodes
at chosen rounds.  The default :class:`NoFaults` model is a no-op and adds no
overhead to the hot loop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, Optional, Set

import numpy as np

from ..graphs.random import SeedLike, make_rng
from .messages import Message

__all__ = ["FaultModel", "NoFaults", "TransmissionDropFaults", "CrashFaults", "CompositeFaults"]


class FaultModel(ABC):
    """Strategy deciding which transmissions actually make it onto the channel."""

    @abstractmethod
    def transmission_survives(self, round_number: int, sender: int, message: Message) -> bool:
        """Return ``True`` if the transmission is actually emitted."""

    def node_is_alive(self, round_number: int, node: int) -> bool:
        """Return ``True`` if ``node`` participates (decides/listens) this round."""
        return True


class NoFaults(FaultModel):
    """The paper's reliable channel: every transmission is emitted."""

    def transmission_survives(self, round_number: int, sender: int, message: Message) -> bool:
        """Always true."""
        return True


class TransmissionDropFaults(FaultModel):
    """Each transmission is independently dropped with probability ``drop_prob``.

    Determinism is preserved: the per-(round, sender) coin is derived from the
    seed, so re-running the same experiment reproduces the same fault pattern.
    """

    def __init__(self, drop_prob: float, seed: SeedLike = 0) -> None:
        if not (0.0 <= drop_prob <= 1.0):
            raise ValueError(f"drop probability must be in [0, 1], got {drop_prob}")
        self.drop_prob = drop_prob
        self._base_seed = seed if isinstance(seed, int) else 0
        self._rng_cache: Dict[tuple, bool] = {}

    def transmission_survives(self, round_number: int, sender: int, message: Message) -> bool:
        """Drop the transmission with the configured probability (memoised per (round, sender))."""
        key = (round_number, sender)
        if key not in self._rng_cache:
            rng = make_rng(np.random.SeedSequence([self._base_seed, round_number, sender]))
            self._rng_cache[key] = bool(rng.random() >= self.drop_prob)
        return self._rng_cache[key]


class CrashFaults(FaultModel):
    """Nodes crash permanently at specified rounds.

    ``crash_schedule`` maps node → first round in which the node is dead; from
    that round on it neither transmits nor updates its state.
    """

    def __init__(self, crash_schedule: Dict[int, int]) -> None:
        for node, rnd in crash_schedule.items():
            if rnd < 1:
                raise ValueError(f"crash round for node {node} must be >= 1, got {rnd}")
        self.crash_schedule = dict(crash_schedule)

    def transmission_survives(self, round_number: int, sender: int, message: Message) -> bool:
        """A crashed node's transmissions never reach the channel."""
        return self.node_is_alive(round_number, sender)

    def node_is_alive(self, round_number: int, node: int) -> bool:
        """A node is alive strictly before its scheduled crash round."""
        crash_round = self.crash_schedule.get(node)
        return crash_round is None or round_number < crash_round


class CompositeFaults(FaultModel):
    """Combine several fault models; a transmission survives only if all agree."""

    def __init__(self, models: Iterable[FaultModel]) -> None:
        self.models = tuple(models)

    def transmission_survives(self, round_number: int, sender: int, message: Message) -> bool:
        """Conjunction of the component models."""
        return all(m.transmission_survives(round_number, sender, message) for m in self.models)

    def node_is_alive(self, round_number: int, node: int) -> bool:
        """A node must be alive under every component model."""
        return all(m.node_is_alive(round_number, node) for m in self.models)

"""The round-synchronous radio simulation engine.

This is the faithful implementation of the communication model of §1.1:

* time proceeds in synchronous rounds;
* in each round every node either transmits to all its neighbours or listens;
* a listening node hears a message iff **exactly one** of its neighbours
  transmits in that round;
* with two or more transmitting neighbours a collision occurs and (in the
  default no-collision-detection model) the node hears nothing, exactly as if
  nobody had transmitted.

The engine is deliberately free of protocol knowledge: protocols are supplied
as a factory that builds one :class:`~repro.radio.node.RadioNode` per node from
its label.  The engine therefore *cannot* leak topology information to the
nodes, which is what makes the universality claims testable.

Performance note (per the hpc-parallel guidance: profile, then optimise): the
hot loop is the per-round neighbour sweep.  For the graph sizes the paper's
O(n)-round algorithms need (n up to a few thousand), the dominant cost is the
per-listener transmitter count, which we compute with a NumPy bincount over
the CSR neighbour arrays instead of per-node Python set intersections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..graphs.graph import Graph, GraphError
from .clock import ClockModel, SynchronizedClocks
from .collision import CollisionModel, NoCollisionDetection
from .faults import FaultModel, NoFaults
from .messages import Message
from .node import RadioNode
from .trace import ExecutionTrace, RoundRecord

__all__ = ["NodeFactory", "RadioSimulator", "SimulationResult", "run_protocol"]

#: Callable that builds the per-node protocol object.  It receives
#: ``(node_id, label, is_source, source_payload)`` and must return a
#: :class:`RadioNode`.  ``source_payload`` is ``None`` for non-source nodes.
NodeFactory = Callable[[int, str, bool, Any], RadioNode]


@dataclass
class SimulationResult:
    """Outcome of a simulation run: the trace plus the final node objects."""

    trace: ExecutionTrace
    nodes: List[RadioNode]
    stop_round: int
    stop_reason: str

    @property
    def completed(self) -> bool:
        """True if the run stopped because its stop condition was met."""
        return self.stop_reason == "condition"


class RadioSimulator:
    """Synchronous radio-network simulator over a fixed labeled graph.

    Parameters
    ----------
    graph:
        The (connected) network topology.
    labels:
        Mapping node → label string, typically produced by one of the
        labeling schemes in :mod:`repro.core.labeling`.
    node_factory:
        Builds the protocol instance for each node.
    source:
        The node that initially holds the source message, or ``None`` for
        protocols without a distinguished source at simulation level (the
        B_arb coordinator experiments still pass a concrete source).
    source_payload:
        The source message µ handed to the source node.
    collision_model / fault_model / clock_model:
        Channel semantics; the defaults reproduce the paper's model exactly.
    trace_level:
        Trace recording level (see :mod:`repro.radio.trace`): ``"full"``
        keeps every round record, ``"summary"``/``"none"`` keep only O(n)
        aggregates (headline metrics still work; per-round access raises).
    """

    def __init__(
        self,
        graph: Graph,
        labels: Mapping[int, str],
        node_factory: NodeFactory,
        *,
        source: Optional[int] = None,
        source_payload: Any = "MSG",
        collision_model: Optional[CollisionModel] = None,
        fault_model: Optional[FaultModel] = None,
        clock_model: Optional[ClockModel] = None,
        trace_level: str = "full",
    ) -> None:
        if source is not None and source not in graph:
            raise GraphError(f"source {source} is not a node of {graph!r}")
        missing = [v for v in graph.nodes() if v not in labels]
        if missing:
            raise ValueError(f"labels missing for nodes {missing[:5]}{'...' if len(missing) > 5 else ''}")
        self.graph = graph
        self.labels = dict(labels)
        self.source = source
        self.source_payload = source_payload
        self.collision_model = collision_model or NoCollisionDetection()
        self.fault_model = fault_model or NoFaults()
        self.clock_model = clock_model or SynchronizedClocks()
        self.nodes: List[RadioNode] = [
            node_factory(
                v,
                self.labels[v],
                v == source,
                source_payload if v == source else None,
            )
            for v in graph.nodes()
        ]
        # The engine builds RoundRecords either way, so "none" is recorded as
        # "summary" here; only array backends can skip per-round bookkeeping.
        level = "summary" if trace_level == "none" else trace_level
        self.trace = ExecutionTrace(num_nodes=graph.n, source=source, level=level)
        self._round = 0
        # Pre-extract CSR arrays for the vectorised collision resolution.
        self._indptr, self._indices = graph.csr()

    # ------------------------------------------------------------------ #
    # stepping
    # ------------------------------------------------------------------ #
    @property
    def current_round(self) -> int:
        """Number of rounds simulated so far."""
        return self._round

    def step(self) -> RoundRecord:
        """Simulate one round and return its record."""
        self._round += 1
        rnd = self._round
        n = self.graph.n

        # Phase 1: every node decides simultaneously, based only on its history.
        decisions: List[Optional[Message]] = [None] * n
        for v in range(n):
            if not self.fault_model.node_is_alive(rnd, v):
                continue
            local = self.clock_model.local_round(v, rnd)
            decisions[v] = self.nodes[v].decide(local)

        # Phase 2: fault model may suppress transmissions.
        transmissions: Dict[int, Message] = {}
        suppressed: Dict[int, Message] = {}
        for v, msg in enumerate(decisions):
            if msg is None:
                continue
            if self.fault_model.transmission_survives(rnd, v, msg):
                transmissions[v] = msg
            else:
                suppressed[v] = msg

        # Phase 3: resolve what every listener hears.
        receptions: Dict[int, Message] = {}
        collisions: set = set()
        if transmissions:
            # counts[v] = number of transmitting neighbours of v, accumulated by
            # sweeping each transmitter's CSR neighbour slice (vectorised adds).
            counts = np.zeros(n, dtype=np.int64)
            for u in transmissions:
                counts[self._indices[self._indptr[u] : self._indptr[u + 1]]] += 1
            for v in range(n):
                if decisions[v] is not None:
                    continue  # transmitting nodes hear nothing
                c = int(counts[v])
                if c == 0:
                    continue
                arriving = [
                    transmissions[int(u)]
                    for u in self._indices[self._indptr[v] : self._indptr[v + 1]]
                    if int(u) in transmissions
                ]
                heard, collided = self.collision_model.perceive(arriving)
                if heard is not None:
                    receptions[v] = heard
                elif collided or len(arriving) >= 2:
                    # Record the collision in the trace even if undetectable by
                    # the node; the analysis layer wants collision counts.
                    collisions.add(v)

        # Phase 4: deliver outcomes to nodes (transmitters hear nothing).
        for v in range(n):
            if not self.fault_model.node_is_alive(rnd, v):
                continue
            local = self.clock_model.local_round(v, rnd)
            heard = receptions.get(v)
            detected = (
                v in collisions and self.collision_model.provides_detection
            )
            self.nodes[v].deliver(local, decisions[v], heard, detected)

        record = RoundRecord(
            round_number=rnd,
            transmissions=dict(transmissions),
            receptions=receptions,
            collisions=frozenset(collisions),
            suppressed=suppressed,
        )
        self.trace.append(record)
        return record

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #
    def run(
        self,
        max_rounds: int,
        stop_condition: Optional[Callable[["RadioSimulator"], bool]] = None,
        *,
        stop_on_quiescence: bool = False,
        quiescence_window: int = 2,
    ) -> SimulationResult:
        """Run rounds until a stop condition, quiescence, or the round budget.

        Parameters
        ----------
        max_rounds:
            Hard budget on the number of rounds to simulate.
        stop_condition:
            Optional predicate evaluated after every round; the run stops when
            it returns ``True``.
        stop_on_quiescence:
            Stop early after ``quiescence_window`` consecutive silent rounds
            (nobody transmitted).  Handy for protocols that simply go quiet.
        """
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
        silent_streak = 0
        stop_reason = "budget"
        stop_round = self._round
        for _ in range(max_rounds):
            record = self.step()
            stop_round = record.round_number
            if stop_condition is not None and stop_condition(self):
                stop_reason = "condition"
                break
            if stop_on_quiescence:
                silent_streak = silent_streak + 1 if record.is_silent else 0
                if silent_streak >= quiescence_window:
                    stop_reason = "quiescence"
                    break
        return SimulationResult(
            trace=self.trace, nodes=self.nodes, stop_round=stop_round, stop_reason=stop_reason
        )

    # ------------------------------------------------------------------ #
    # common stop conditions
    # ------------------------------------------------------------------ #
    def all_informed(self) -> bool:
        """True if every non-source node has heard the source message."""
        informed = self.trace.informed_nodes()
        return len(informed) == self.graph.n

    def source_acknowledged(self) -> bool:
        """True if the source has heard an ack message."""
        if self.source is None:
            return False
        return self.trace.first_ack_at(self.source) is not None


def run_protocol(
    graph: Graph,
    labels: Mapping[int, str],
    node_factory: NodeFactory,
    *,
    source: Optional[int],
    source_payload: Any = "MSG",
    max_rounds: Optional[int] = None,
    stop_condition: Optional[Callable[[RadioSimulator], bool]] = None,
    collision_model: Optional[CollisionModel] = None,
    fault_model: Optional[FaultModel] = None,
    clock_model: Optional[ClockModel] = None,
    stop_on_quiescence: bool = False,
    trace_level: str = "full",
) -> SimulationResult:
    """Convenience wrapper: build a :class:`RadioSimulator` and run it.

    ``max_rounds`` defaults to ``4 * n + 10``, a generous envelope above every
    bound proven in the paper (2n−3 for broadcast, 3ℓ−4 ≤ 3n−4 for the ack).
    """
    if max_rounds is None:
        max_rounds = 4 * graph.n + 10
    sim = RadioSimulator(
        graph,
        labels,
        node_factory,
        source=source,
        source_payload=source_payload,
        collision_model=collision_model,
        fault_model=fault_model,
        clock_model=clock_model,
        trace_level=trace_level,
    )
    return sim.run(max_rounds, stop_condition, stop_on_quiescence=stop_on_quiescence)

"""Grid experiments: ``run_grid`` — the engine under every sweep.

A :class:`GridConfig` extends the legacy sweep grid (families × sizes × seeds
× schemes) with two new axes the old sweep layer could not express at all:
**fault models** and **clock models**, as declarative specs (see
:mod:`repro.api.specs`).  ``run_grid`` executes the full cross product and
returns flat :class:`~repro.analysis.metrics.RunMetrics` rows in a stable
order; with ``jobs > 1`` cells fan out over a process pool with results
guaranteed identical to the serial order, because every cell is a plain
serializable spec the workers rematerialize (graph from its seed-derived
spec, fault/clock model from its spec dict).

The legacy ``repro.analysis.sweep.run_sweep`` /
``repro.analysis.executor.run_sweep_parallel`` entry points are thin wrappers
over this module: a grid with the default ``faults=(None,)`` /
``clocks=(None,)`` axes reproduces legacy sweep rows bit for bit.

With ``batch_size`` set (or ``backend="batched"``), work units sharing a
(scheme, fault spec, clock spec, trace level) compatibility key are grouped
and dispatched through ``SimulationBackend.run_batch`` — on the batched
backend that is one block-diagonal kernel invocation per group — with rows
guaranteed identical to per-cell execution and independent of both the job
count and the batch size.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import RunMetrics, metrics_from_run
from ..backends import BACKEND_NAMES
from .schemes import get_scheme, scheme_names
from .specs import (
    ClockSpec,
    FaultSpec,
    clock_model_from_spec,
    fault_model_from_spec,
    normalize_clock_spec,
    normalize_fault_spec,
    spec_label,
)

__all__ = ["DEFAULT_BATCH_SIZE", "GridConfig", "grid_cell_specs", "run_grid"]

#: One grid cell: ``(family, size, rep, fault_spec, clock_spec)`` — all plain
#: picklable data; workers rematerialize the graph and the channel models.
CellSpec = Tuple[str, int, int, Optional[Dict[str, Any]], Optional[Dict[str, Any]]]


@dataclass
class GridConfig:
    """Declarative description of a grid experiment.

    The first six fields mirror :class:`~repro.analysis.sweep.SweepConfig`;
    ``faults`` / ``clocks`` add the channel-perturbation axes and ``payload``
    the source message.  Every axis entry must be serializable spec data.
    """

    families: Sequence[str]
    sizes: Sequence[int]
    seeds_per_size: int = 1
    schemes: Sequence[str] = ("lambda",)
    source_rule: str = "zero"
    base_seed: int = 2019
    faults: Sequence[FaultSpec] = (None,)
    clocks: Sequence[ClockSpec] = (None,)
    payload: Any = "MSG"
    #: Work units per stacked kernel invocation when the grid runs batched
    #: (``backend="batched"`` or an explicit ``run_grid(batch_size=...)``).
    #: ``None`` leaves the engine default.
    batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        self.faults = tuple(normalize_fault_spec(f) for f in self.faults) or (None,)
        self.clocks = tuple(normalize_clock_spec(c) for c in self.clocks) or (None,)
        if self.batch_size is not None:
            self.batch_size = int(self.batch_size)
            if self.batch_size < 1:
                raise ValueError(
                    f"batch_size must be a positive integer or None, "
                    f"got {self.batch_size}"
                )

    @classmethod
    def from_sweep(cls, config: Any) -> "GridConfig":
        """Lift a legacy :class:`~repro.analysis.sweep.SweepConfig`.

        A :class:`GridConfig` (or anything else already carrying
        fault/clock/payload axes) passes through losslessly, so the legacy
        ``run_sweep`` entry point never silently drops axes.
        """
        return cls(
            families=list(config.families),
            sizes=list(config.sizes),
            seeds_per_size=config.seeds_per_size,
            schemes=list(config.schemes),
            source_rule=config.source_rule,
            base_seed=config.base_seed,
            faults=tuple(getattr(config, "faults", (None,))),
            clocks=tuple(getattr(config, "clocks", (None,))),
            payload=getattr(config, "payload", "MSG"),
            batch_size=getattr(config, "batch_size", None),
        )


def grid_cell_specs(config: GridConfig) -> List[CellSpec]:
    """Every grid cell in stable sweep order (instance → fault → clock)."""
    return [
        (family, size, rep, fault, clock)
        for family in config.families
        for size in config.sizes
        for rep in range(config.seeds_per_size)
        for fault in config.faults
        for clock in config.clocks
    ]


def _validate_schemes(config: GridConfig) -> None:
    unknown = [s for s in config.schemes if s not in scheme_names()]
    if unknown:
        raise ValueError(f"unknown schemes {unknown}; known: {scheme_names()}")


def _group_cells_by_instance(
    cells: Sequence[CellSpec],
) -> List[Tuple[Tuple[str, int, int], List[CellSpec]]]:
    """Group *consecutive* cells sharing an instance, preserving sweep order.

    ``grid_cell_specs`` keeps the fault/clock axes innermost, so all cells of
    one (family, size, rep) instance are adjacent; grouping lets the runner
    materialize the graph (and compute each paper scheme's labeling) once per
    instance instead of once per channel-model combination.
    """
    groups: List[Tuple[Tuple[str, int, int], List[CellSpec]]] = []
    for cell in cells:
        key = (cell[0], cell[1], cell[2])
        if groups and groups[-1][0] == key:
            groups[-1][1].append(cell)
        else:
            groups.append((key, [cell]))
    return groups


def _cell_error(
    exc: BaseException, scheme_name: str, instance: Any, fault_spec: Any, clock_spec: Any
):
    """Wrap a cell failure so it names the failing scenario spec.

    Workers ship whole chunks across the pool boundary; without this, a
    failure surfaces as a bare traceback with no hint of which
    (scheme, graph, seed) cell died.
    """
    from ..analysis.executor import GridExecutionError  # local: avoids cycle

    fault_tag = spec_label(fault_spec, default="none")
    clock_tag = spec_label(clock_spec, default="sync")
    spec = {
        "scheme": scheme_name,
        "family": instance.family,
        "n": instance.n,
        "seed": instance.seed,
        "source": instance.source,
        "fault": fault_tag,
        "clock": clock_tag,
    }
    return GridExecutionError(
        f"grid cell failed: scheme={scheme_name!r} graph={instance.family}:"
        f"{instance.n} seed={instance.seed} source={instance.source} "
        f"fault={fault_tag!r} clock={clock_tag!r}: {type(exc).__name__}: {exc}",
        spec,
    )


def _run_instance_cells(
    config: GridConfig,
    cells: Sequence[CellSpec],
    *,
    backend: Any,
    trace_level: str,
) -> List[RunMetrics]:
    """Run every configured scheme on each fault/clock cell of one instance."""
    from ..analysis.sweep import materialize_instance  # local: avoids import cycle

    family, size, rep = cells[0][0], cells[0][1], cells[0][2]
    instance = materialize_instance(config, family, size, rep)
    # Labels and schedules are pure functions of (graph, source, payload), so
    # every scheme's SchemeLabels is built once and reused across the
    # fault/clock cells of the instance.  ``_payload_text`` reaches the one
    # scheme whose label step depends on the payload (bit signalling); the
    # others swallow it.
    labels_infos: Dict[str, Any] = {}
    rows: List[RunMetrics] = []
    for _, _, _, fault_spec, clock_spec in cells:
        fault_tag = spec_label(fault_spec, default="none")
        clock_tag = spec_label(clock_spec, default="sync")
        for scheme_name in config.schemes:
            scheme = get_scheme(scheme_name)
            options = scheme.grid_options(instance.graph, instance.source)
            if scheme_name not in labels_infos:
                try:
                    labels_infos[scheme_name] = scheme.build_labels(
                        instance.graph, instance.source,
                        _payload_text=str(config.payload), **options,
                    )
                except Exception as exc:
                    raise _cell_error(exc, scheme_name, instance, fault_spec,
                                      clock_spec) from exc
            # Fresh model objects per run: fault models memoise coin flips,
            # and a shared instance across schemes would make results depend
            # on execution order (and break jobs-independence).
            fault_model = fault_model_from_spec(fault_spec)
            clock_model = clock_model_from_spec(clock_spec, instance.graph.n)
            try:
                outcome = scheme.run(
                    instance.graph,
                    instance.source,
                    payload=config.payload,
                    labels_info=labels_infos[scheme_name],
                    fault_model=fault_model,
                    clock_model=clock_model,
                    backend=backend,
                    trace_level=trace_level,
                    **options,
                )
            except Exception as exc:
                raise _cell_error(exc, scheme_name, instance, fault_spec,
                                  clock_spec) from exc
            rows.append(
                metrics_from_run(
                    instance.graph,
                    outcome,
                    family=instance.family,
                    source=instance.source,
                    fault=fault_tag,
                    clock=clock_tag,
                )
            )
    return rows


#: Stacked-kernel batch size used when batching is requested without an
#: explicit knob (``backend="batched"`` with no ``batch_size``).
DEFAULT_BATCH_SIZE = 64


def _run_cells_batched(
    config: GridConfig,
    cells: Sequence[CellSpec],
    *,
    backend: Any,
    trace_level: str,
    batch_size: int,
) -> List[RunMetrics]:
    """Run a span of grid cells with compatible work units batched together.

    Work units (one scheme run on one fault/clock cell of one instance) are
    grouped by (scheme, fault spec, clock spec) — the compatibility key under
    which the batched backend can stack them — and dispatched ``batch_size``
    at a time through ``run_batch``.  Rows come back in the same stable
    order the per-cell path produces; the backend guarantees batched results
    are bit-identical to per-task execution, so the grouping is invisible to
    callers.  A failure is re-attributed to its single work unit (the batch
    is replayed per task) and raised as a
    :class:`~repro.analysis.executor.GridExecutionError` naming the spec.

    Cells are processed in windows spanning ~``batch_size`` instances, so
    peak memory stays O(batch_size) graphs/labelings — not O(all instances)
    — while every (scheme, fault, clock) group inside a window still fills
    whole batches.
    """
    from ..analysis.executor import chunk_specs  # local: avoids cycle

    cells_per_instance = max(1, len(config.faults) * len(config.clocks))
    window = batch_size * cells_per_instance
    rows: List[RunMetrics] = []
    for span in chunk_specs(cells, window):
        rows.extend(
            _run_cell_window_batched(config, span, backend=backend,
                                     trace_level=trace_level, batch_size=batch_size)
        )
    return rows


def _run_cell_window_batched(
    config: GridConfig,
    cells: Sequence[CellSpec],
    *,
    backend: Any,
    trace_level: str,
    batch_size: int,
) -> List[RunMetrics]:
    """One window of the batched path: materialize, group, stack, derive."""
    from ..analysis.executor import GridExecutionError, chunk_specs
    from ..analysis.sweep import materialize_instance  # local: avoids cycle
    from ..backends import resolve_backend

    backend_obj = resolve_backend(backend if backend is not None else "batched")

    instances: Dict[Tuple[str, int, int], Any] = {}
    units: List[Tuple[int, str, Tuple[str, int, int], Any, Any]] = []
    for key, group in _group_cells_by_instance(cells):
        if key not in instances:
            instances[key] = materialize_instance(config, *key)
        for cell in group:
            for scheme_name in config.schemes:
                units.append((len(units), scheme_name, key, cell[3], cell[4]))

    labels_cache: Dict[Tuple[str, Tuple[str, int, int]], Any] = {}
    groups: Dict[Tuple[str, str, str], List] = {}
    for unit in units:
        _, scheme_name, _, fault_spec, clock_spec = unit
        groups.setdefault(
            (scheme_name, repr(fault_spec), repr(clock_spec)), []
        ).append(unit)

    rows: List[Optional[RunMetrics]] = [None] * len(units)
    for members in groups.values():
        for batch in chunk_specs(members, batch_size):
            tasks, metas = [], []
            for unit in batch:
                index, scheme_name, key, fault_spec, clock_spec = unit
                instance = instances[key]
                scheme = get_scheme(scheme_name)
                try:
                    scheme.validate_source(instance.graph, instance.source)
                    options = scheme.grid_options(instance.graph, instance.source)
                    cache_key = (scheme_name, key)
                    if cache_key not in labels_cache:
                        labels_cache[cache_key] = scheme.build_labels(
                            instance.graph, instance.source,
                            _payload_text=str(config.payload), **options,
                        )
                    info = labels_cache[cache_key]
                    task = scheme.build_task(
                        instance.graph, info, instance.source,
                        payload=config.payload,
                        max_rounds=scheme.default_budget(instance.graph, info),
                        trace_level=trace_level,
                        # Fresh model objects per unit: fault models memoise
                        # coin flips, so sharing would couple units.
                        fault_model=fault_model_from_spec(fault_spec),
                        clock_model=clock_model_from_spec(clock_spec, instance.graph.n),
                    )
                except Exception as exc:
                    raise _cell_error(exc, scheme_name, instance, fault_spec,
                                      clock_spec) from exc
                tasks.append(task)
                metas.append(unit)
            try:
                results = backend_obj.run_batch(tasks)
            except GridExecutionError:
                raise
            except Exception:
                # Replay per task to attribute the failure to one cell spec.
                results = []
                for task, unit in zip(tasks, metas):
                    _, scheme_name, key, fault_spec, clock_spec = unit
                    try:
                        results.append(backend_obj.run_batch([task])[0])
                    except Exception as exc:
                        raise _cell_error(exc, scheme_name, instances[key],
                                          fault_spec, clock_spec) from exc
            for task, result, unit in zip(tasks, results, metas):
                index, scheme_name, key, fault_spec, clock_spec = unit
                instance = instances[key]
                scheme = get_scheme(scheme_name)
                try:
                    outcome = scheme.derive_outcome(
                        instance.graph, task, result, labels_cache[(scheme_name, key)]
                    )
                except Exception as exc:
                    raise _cell_error(exc, scheme_name, instance, fault_spec,
                                      clock_spec) from exc
                rows[index] = metrics_from_run(
                    instance.graph,
                    outcome,
                    family=instance.family,
                    source=instance.source,
                    fault=spec_label(fault_spec, default="none"),
                    clock=spec_label(clock_spec, default="sync"),
                )
    return rows  # type: ignore[return-value]


#: One work unit: the grid config (as a dict), a list of cell specs and the
#: execution knobs.  Everything inside is plain picklable data.
_ChunkPayload = Tuple[dict, List[CellSpec], Optional[str], str, Optional[int]]


def _run_grid_chunk(payload: _ChunkPayload) -> List[RunMetrics]:
    """Worker entry point: rematerialize each cell and run every scheme."""
    config_dict, chunk, backend, trace_level, batch_size = payload
    config = GridConfig(**config_dict)
    if batch_size is not None:
        return _run_cells_batched(config, chunk, backend=backend,
                                  trace_level=trace_level, batch_size=batch_size)
    rows: List[RunMetrics] = []
    for _, group in _group_cells_by_instance(chunk):
        rows.extend(
            _run_instance_cells(config, group, backend=backend, trace_level=trace_level)
        )
    return rows


def run_grid(
    config: GridConfig,
    *,
    backend: Any = None,
    trace_level: str = "summary",
    jobs: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> List[RunMetrics]:
    """Run every configured scheme over every grid cell and return all rows.

    Parameters
    ----------
    config:
        The experiment grid (including the fault/clock axes).
    backend / trace_level:
        Forwarded to every scheme run.  For parallel execution ``backend``
        must be a registry name (or an instance of a registered backend
        class, reduced to its name): only plain data crosses the process
        boundary.
    jobs:
        Worker process count.  ``1`` runs inline; ``None`` uses the CPU
        count.  Rows come back in the same stable order for any job count.
    chunk_size:
        Cells per work unit; defaults to ~4 chunks per worker.
    batch_size:
        Compatible work units per stacked kernel invocation.  Setting it (or
        ``config.batch_size``, or passing ``backend="batched"``, which
        implies :data:`DEFAULT_BATCH_SIZE`) routes execution through the
        batching path: work units sharing (scheme, fault, clock, trace
        level) run as one block-diagonal kernel invocation on backends that
        stack (results are guaranteed identical either way).  Must be
        positive.
    """
    from ..analysis.executor import chunk_specs, default_jobs  # local: avoids cycle

    _validate_schemes(config)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    if batch_size is None:
        batch_size = config.batch_size
    if batch_size is not None:
        batch_size = int(batch_size)
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
    backend_name = backend if isinstance(backend, str) else getattr(backend, "name", None)
    if batch_size is None and backend_name == "batched":
        batch_size = DEFAULT_BATCH_SIZE
    cells = grid_cell_specs(config)
    if not cells:
        return []
    if jobs == 1:
        if batch_size is not None:
            return _run_cells_batched(config, cells, backend=backend,
                                      trace_level=trace_level, batch_size=batch_size)
        rows: List[RunMetrics] = []
        for _, group in _group_cells_by_instance(cells):
            rows.extend(
                _run_instance_cells(config, group, backend=backend,
                                    trace_level=trace_level)
            )
        return rows
    if backend is not None and not isinstance(backend, str):
        if backend_name not in BACKEND_NAMES:
            raise ValueError(
                f"parallel sweeps need a registered backend name "
                f"{sorted(BACKEND_NAMES)}, got instance {backend!r} with name "
                f"{backend_name!r}; run with jobs=1 to use a custom backend object"
            )
        backend = backend_name
    if chunk_size is None:
        chunk_size = max(1, (len(cells) + jobs * 4 - 1) // (jobs * 4))
        if batch_size is not None:
            # A worker can only stack units within its own chunk: keep each
            # chunk wide enough to span ~batch_size instances per group, or
            # the pool's load-balancing default would silently cap batches.
            cells_per_instance = max(1, len(config.faults) * len(config.clocks))
            chunk_size = max(chunk_size, batch_size * cells_per_instance)
    chunks = chunk_specs(cells, chunk_size)
    payloads: List[_ChunkPayload] = [
        (asdict(config), chunk, backend, trace_level, batch_size) for chunk in chunks
    ]
    if len(chunks) == 1:
        results = [_run_grid_chunk(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            results = list(pool.map(_run_grid_chunk, payloads))
    return [row for chunk_rows in results for row in chunk_rows]

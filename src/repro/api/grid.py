"""Grid experiments: ``run_grid`` — the engine under every sweep.

A :class:`GridConfig` extends the legacy sweep grid (families × sizes × seeds
× schemes) with two new axes the old sweep layer could not express at all:
**fault models** and **clock models**, as declarative specs (see
:mod:`repro.api.specs`).  ``run_grid`` executes the full cross product and
returns flat :class:`~repro.analysis.metrics.RunMetrics` rows in a stable
order; with ``jobs > 1`` cells fan out over a process pool with results
guaranteed identical to the serial order, because every cell is a plain
serializable spec the workers rematerialize (graph from its seed-derived
spec, fault/clock model from its spec dict).

The legacy ``repro.analysis.sweep.run_sweep`` /
``repro.analysis.executor.run_sweep_parallel`` entry points are thin wrappers
over this module: a grid with the default ``faults=(None,)`` /
``clocks=(None,)`` axes reproduces legacy sweep rows bit for bit.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import RunMetrics, metrics_from_run
from ..backends import BACKEND_NAMES
from .schemes import get_scheme, scheme_names
from .specs import (
    ClockSpec,
    FaultSpec,
    clock_model_from_spec,
    fault_model_from_spec,
    normalize_clock_spec,
    normalize_fault_spec,
    spec_label,
)

__all__ = ["GridConfig", "grid_cell_specs", "run_grid"]

#: One grid cell: ``(family, size, rep, fault_spec, clock_spec)`` — all plain
#: picklable data; workers rematerialize the graph and the channel models.
CellSpec = Tuple[str, int, int, Optional[Dict[str, Any]], Optional[Dict[str, Any]]]


@dataclass
class GridConfig:
    """Declarative description of a grid experiment.

    The first six fields mirror :class:`~repro.analysis.sweep.SweepConfig`;
    ``faults`` / ``clocks`` add the channel-perturbation axes and ``payload``
    the source message.  Every axis entry must be serializable spec data.
    """

    families: Sequence[str]
    sizes: Sequence[int]
    seeds_per_size: int = 1
    schemes: Sequence[str] = ("lambda",)
    source_rule: str = "zero"
    base_seed: int = 2019
    faults: Sequence[FaultSpec] = (None,)
    clocks: Sequence[ClockSpec] = (None,)
    payload: Any = "MSG"

    def __post_init__(self) -> None:
        self.faults = tuple(normalize_fault_spec(f) for f in self.faults) or (None,)
        self.clocks = tuple(normalize_clock_spec(c) for c in self.clocks) or (None,)

    @classmethod
    def from_sweep(cls, config: Any) -> "GridConfig":
        """Lift a legacy :class:`~repro.analysis.sweep.SweepConfig`.

        A :class:`GridConfig` (or anything else already carrying
        fault/clock/payload axes) passes through losslessly, so the legacy
        ``run_sweep`` entry point never silently drops axes.
        """
        return cls(
            families=list(config.families),
            sizes=list(config.sizes),
            seeds_per_size=config.seeds_per_size,
            schemes=list(config.schemes),
            source_rule=config.source_rule,
            base_seed=config.base_seed,
            faults=tuple(getattr(config, "faults", (None,))),
            clocks=tuple(getattr(config, "clocks", (None,))),
            payload=getattr(config, "payload", "MSG"),
        )


def grid_cell_specs(config: GridConfig) -> List[CellSpec]:
    """Every grid cell in stable sweep order (instance → fault → clock)."""
    return [
        (family, size, rep, fault, clock)
        for family in config.families
        for size in config.sizes
        for rep in range(config.seeds_per_size)
        for fault in config.faults
        for clock in config.clocks
    ]


def _validate_schemes(config: GridConfig) -> None:
    unknown = [s for s in config.schemes if s not in scheme_names()]
    if unknown:
        raise ValueError(f"unknown schemes {unknown}; known: {scheme_names()}")


def _group_cells_by_instance(
    cells: Sequence[CellSpec],
) -> List[Tuple[Tuple[str, int, int], List[CellSpec]]]:
    """Group *consecutive* cells sharing an instance, preserving sweep order.

    ``grid_cell_specs`` keeps the fault/clock axes innermost, so all cells of
    one (family, size, rep) instance are adjacent; grouping lets the runner
    materialize the graph (and compute each paper scheme's labeling) once per
    instance instead of once per channel-model combination.
    """
    groups: List[Tuple[Tuple[str, int, int], List[CellSpec]]] = []
    for cell in cells:
        key = (cell[0], cell[1], cell[2])
        if groups and groups[-1][0] == key:
            groups[-1][1].append(cell)
        else:
            groups.append((key, [cell]))
    return groups


def _run_instance_cells(
    config: GridConfig,
    cells: Sequence[CellSpec],
    *,
    backend: Any,
    trace_level: str,
) -> List[RunMetrics]:
    """Run every configured scheme on each fault/clock cell of one instance."""
    from ..analysis.sweep import materialize_instance  # local: avoids import cycle

    family, size, rep = cells[0][0], cells[0][1], cells[0][2]
    instance = materialize_instance(config, family, size, rep)
    # Labels and schedules are pure functions of (graph, source, payload), so
    # every scheme's SchemeLabels is built once and reused across the
    # fault/clock cells of the instance.  ``_payload_text`` reaches the one
    # scheme whose label step depends on the payload (bit signalling); the
    # others swallow it.
    labels_infos: Dict[str, Any] = {}
    rows: List[RunMetrics] = []
    for _, _, _, fault_spec, clock_spec in cells:
        fault_tag = spec_label(fault_spec, default="none")
        clock_tag = spec_label(clock_spec, default="sync")
        for scheme_name in config.schemes:
            scheme = get_scheme(scheme_name)
            options = scheme.grid_options(instance.graph, instance.source)
            if scheme_name not in labels_infos:
                labels_infos[scheme_name] = scheme.build_labels(
                    instance.graph, instance.source,
                    _payload_text=str(config.payload), **options,
                )
            # Fresh model objects per run: fault models memoise coin flips,
            # and a shared instance across schemes would make results depend
            # on execution order (and break jobs-independence).
            fault_model = fault_model_from_spec(fault_spec)
            clock_model = clock_model_from_spec(clock_spec, instance.graph.n)
            outcome = scheme.run(
                instance.graph,
                instance.source,
                payload=config.payload,
                labels_info=labels_infos[scheme_name],
                fault_model=fault_model,
                clock_model=clock_model,
                backend=backend,
                trace_level=trace_level,
                **options,
            )
            rows.append(
                metrics_from_run(
                    instance.graph,
                    outcome,
                    family=instance.family,
                    source=instance.source,
                    fault=fault_tag,
                    clock=clock_tag,
                )
            )
    return rows


#: One work unit: the grid config (as a dict), a list of cell specs and the
#: execution knobs.  Everything inside is plain picklable data.
_ChunkPayload = Tuple[dict, List[CellSpec], Optional[str], str]


def _run_grid_chunk(payload: _ChunkPayload) -> List[RunMetrics]:
    """Worker entry point: rematerialize each cell and run every scheme."""
    config_dict, chunk, backend, trace_level = payload
    config = GridConfig(**config_dict)
    rows: List[RunMetrics] = []
    for _, group in _group_cells_by_instance(chunk):
        rows.extend(
            _run_instance_cells(config, group, backend=backend, trace_level=trace_level)
        )
    return rows


def run_grid(
    config: GridConfig,
    *,
    backend: Any = None,
    trace_level: str = "summary",
    jobs: Optional[int] = 1,
    chunk_size: Optional[int] = None,
) -> List[RunMetrics]:
    """Run every configured scheme over every grid cell and return all rows.

    Parameters
    ----------
    config:
        The experiment grid (including the fault/clock axes).
    backend / trace_level:
        Forwarded to every scheme run.  For parallel execution ``backend``
        must be a registry name (or an instance of a registered backend
        class, reduced to its name): only plain data crosses the process
        boundary.
    jobs:
        Worker process count.  ``1`` runs inline; ``None`` uses the CPU
        count.  Rows come back in the same stable order for any job count.
    chunk_size:
        Cells per work unit; defaults to ~4 chunks per worker.
    """
    from ..analysis.executor import chunk_specs, default_jobs  # local: avoids cycle

    _validate_schemes(config)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    cells = grid_cell_specs(config)
    if not cells:
        return []
    if jobs == 1:
        rows: List[RunMetrics] = []
        for _, group in _group_cells_by_instance(cells):
            rows.extend(
                _run_instance_cells(config, group, backend=backend,
                                    trace_level=trace_level)
            )
        return rows
    if backend is not None and not isinstance(backend, str):
        name = getattr(backend, "name", None)
        if name not in BACKEND_NAMES:
            raise ValueError(
                f"parallel sweeps need a registered backend name "
                f"{sorted(BACKEND_NAMES)}, got instance {backend!r} with name "
                f"{name!r}; run with jobs=1 to use a custom backend object"
            )
        backend = name
    if chunk_size is None:
        chunk_size = max(1, (len(cells) + jobs * 4 - 1) // (jobs * 4))
    chunks = chunk_specs(cells, chunk_size)
    payloads: List[_ChunkPayload] = [
        (asdict(config), chunk, backend, trace_level) for chunk in chunks
    ]
    if len(chunks) == 1:
        results = [_run_grid_chunk(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            results = list(pool.map(_run_grid_chunk, payloads))
    return [row for chunk_rows in results for row in chunk_rows]

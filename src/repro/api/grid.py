"""Grid experiments: streaming, resumable sessions behind ``run_grid``.

A :class:`GridConfig` extends the legacy sweep grid (families × sizes × seeds
× schemes) with two axes the old sweep layer could not express at all —
**fault models** and **clock models**, as declarative specs (see
:mod:`repro.api.specs`).  The execution surface is layered:

* :func:`iter_grid` is the streaming core: a generator yielding
  :class:`~repro.analysis.metrics.RunMetrics` rows as worker chunks complete
  — out of order across the pool by default, deterministically ordered with
  ``ordered=True`` — with ``on_cell`` / ``on_chunk`` progress callbacks
  instead of silent multi-minute blocking.  Handing it a
  :class:`~repro.store.ResultStore` makes the grid **incremental**: every
  cell whose content-addressed key (scheme, family, n, seed, source rule,
  payload, fault, clock, backend, trace level, schema version — see
  :mod:`repro.store.keys`) is already stored is served from disk, and every
  freshly computed row is flushed to the store before it is yielded, so an
  interrupted sweep resumes exactly where it died.
* :func:`run_grid` drains ``iter_grid(..., ordered=True)`` into a columnar
  :class:`~repro.store.ResultSet` (list-compatible, so existing consumers of
  the old ``List[RunMetrics]`` return type keep working).

The unit of work is one **row**: one scheme run on one
(family, size, rep, fault, clock) cell.  Row order is the stable sweep order
(instance → fault → clock → scheme) for any job count, chunk size and batch
size; with ``jobs > 1`` cells fan out over a process pool as plain
serializable specs the workers rematerialize.

``strict=False`` records a failing cell as a row with an ``"error:..."``
status instead of aborting the sweep; in strict mode the failure surfaces as
a :class:`~repro.analysis.executor.GridExecutionError` naming the cell spec
*and* its store key.

With ``batch_size`` set (or ``backend="batched"``), work units sharing a
(scheme, fault spec, clock spec, trace level) compatibility key are grouped
and dispatched through ``SimulationBackend.run_batch`` — on the batched
backend that is one block-diagonal kernel invocation per group — with rows
guaranteed identical to per-cell execution.
"""

from __future__ import annotations

from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..analysis.metrics import RunMetrics, metrics_from_run
from ..analysis.sweep import instance_seed
from ..backends import BACKEND_NAMES
from ..store import ResultSet, ResultStore, StoreError, unit_key
from .schemes import get_scheme, scheme_names
from .specs import (
    ClockSpec,
    FaultSpec,
    clock_model_from_spec,
    fault_model_from_spec,
    normalize_clock_spec,
    normalize_fault_spec,
    spec_label,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "GridConfig",
    "GridProgress",
    "grid_cell_specs",
    "grid_row_specs",
    "grid_unit_key",
    "iter_grid",
    "run_grid",
]

#: One grid cell: ``(family, size, rep, fault_spec, clock_spec)`` — all plain
#: picklable data; workers rematerialize the graph and the channel models.
CellSpec = Tuple[str, int, int, Optional[Dict[str, Any]], Optional[Dict[str, Any]]]

#: One work unit — one row of the result: a cell plus the scheme to run on it.
UnitSpec = Tuple[str, int, int, Optional[Dict[str, Any]], Optional[Dict[str, Any]], str]


@dataclass
class GridConfig:
    """Declarative description of a grid experiment.

    The first six fields mirror :class:`~repro.analysis.sweep.SweepConfig`;
    ``faults`` / ``clocks`` add the channel-perturbation axes and ``payload``
    the source message.  Every axis entry must be serializable spec data.
    """

    families: Sequence[str]
    sizes: Sequence[int]
    seeds_per_size: int = 1
    schemes: Sequence[str] = ("lambda",)
    source_rule: str = "zero"
    base_seed: int = 2019
    faults: Sequence[FaultSpec] = (None,)
    clocks: Sequence[ClockSpec] = (None,)
    payload: Any = "MSG"
    #: Work units per stacked kernel invocation when the grid runs batched
    #: (``backend="batched"`` or an explicit ``run_grid(batch_size=...)``).
    #: ``None`` leaves the engine default.
    batch_size: Optional[int] = None
    #: Segment worker count for the sharded backend: setting it selects
    #: ``backend="sharded:<shards>"`` (the requested backend must be
    #: ``"sharded"`` or unset).  Pure parallelism — rows and store keys are
    #: independent of it.
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        self.faults = tuple(normalize_fault_spec(f) for f in self.faults) or (None,)
        self.clocks = tuple(normalize_clock_spec(c) for c in self.clocks) or (None,)
        if self.batch_size is not None:
            self.batch_size = int(self.batch_size)
            if self.batch_size < 1:
                raise ValueError(
                    f"batch_size must be a positive integer or None, "
                    f"got {self.batch_size}"
                )
        if self.shards is not None:
            self.shards = int(self.shards)
            if self.shards < 1:
                raise ValueError(
                    f"shards must be a positive integer or None, got {self.shards}"
                )

    @classmethod
    def from_sweep(cls, config: Any) -> "GridConfig":
        """Lift a legacy :class:`~repro.analysis.sweep.SweepConfig`.

        A :class:`GridConfig` (or anything else already carrying
        fault/clock/payload axes) passes through losslessly, so the legacy
        ``run_sweep`` entry point never silently drops axes.
        """
        return cls(
            families=list(config.families),
            sizes=list(config.sizes),
            seeds_per_size=config.seeds_per_size,
            schemes=list(config.schemes),
            source_rule=config.source_rule,
            base_seed=config.base_seed,
            faults=tuple(getattr(config, "faults", (None,))),
            clocks=tuple(getattr(config, "clocks", (None,))),
            payload=getattr(config, "payload", "MSG"),
            batch_size=getattr(config, "batch_size", None),
            shards=getattr(config, "shards", None),
        )


def grid_cell_specs(config: GridConfig) -> List[CellSpec]:
    """Every grid cell in stable sweep order (instance → fault → clock)."""
    return [
        (family, size, rep, fault, clock)
        for family in config.families
        for size in config.sizes
        for rep in range(config.seeds_per_size)
        for fault in config.faults
        for clock in config.clocks
    ]


def grid_row_specs(config: GridConfig) -> List[UnitSpec]:
    """Every result row's work unit, in stable row order.

    Row order is instance → fault → clock → scheme: exactly the order
    ``run_grid`` rows come back in (and have since the unified API landed).
    """
    return [
        (family, size, rep, fault, clock, scheme)
        for family in config.families
        for size in config.sizes
        for rep in range(config.seeds_per_size)
        for fault in config.faults
        for clock in config.clocks
        for scheme in config.schemes
    ]


def grid_unit_key(
    config: GridConfig,
    unit: UnitSpec,
    *,
    backend: Any = None,
    trace_level: str = "summary",
) -> str:
    """The content-addressed result-store key of one grid row."""
    family, size, rep, fault_spec, clock_spec, scheme = unit
    return unit_key(
        scheme=scheme,
        family=family,
        size=size,
        seed=instance_seed(config.base_seed, family, size, rep),
        source_rule=config.source_rule,
        payload=config.payload,
        fault_spec=fault_spec,
        clock_spec=clock_spec,
        backend=backend,
        trace_level=trace_level,
    )


def _units_per_instance(config: GridConfig) -> int:
    return max(1, len(config.faults) * len(config.clocks) * len(config.schemes))


def _validate_schemes(config: GridConfig) -> None:
    unknown = [s for s in config.schemes if s not in scheme_names()]
    if unknown:
        raise ValueError(f"unknown schemes {unknown}; known: {scheme_names()}")


def _group_units_by_instance(
    units: Sequence[UnitSpec],
) -> List[Tuple[Tuple[str, int, int], List[UnitSpec]]]:
    """Group *consecutive* units sharing an instance, preserving row order.

    ``grid_row_specs`` keeps the fault/clock/scheme axes innermost, so all
    units of one (family, size, rep) instance are adjacent; grouping lets the
    runner materialize the graph (and compute each scheme's labeling) once
    per instance instead of once per row.  Holds for any contiguous slice of
    the row list — including slices with store-cached rows removed.
    """
    groups: List[Tuple[Tuple[str, int, int], List[UnitSpec]]] = []
    for unit in units:
        key = (unit[0], unit[1], unit[2])
        if groups and groups[-1][0] == key:
            groups[-1][1].append(unit)
        else:
            groups.append((key, [unit]))
    return groups


def _cell_error(
    exc: BaseException,
    scheme_name: str,
    instance: Any,
    fault_spec: Any,
    clock_spec: Any,
    store_key: Optional[str] = None,
):
    """Wrap a cell failure so it names the failing scenario spec.

    Workers ship whole chunks across the pool boundary; without this, a
    failure surfaces as a bare traceback with no hint of which
    (scheme, graph, seed) cell died.  ``store_key`` additionally names the
    result-store entry the cell would have filled, so store-backed sweeps
    can be resumed or diffed by key.
    """
    from ..analysis.executor import GridExecutionError  # local: avoids cycle

    fault_tag = spec_label(fault_spec, default="none")
    clock_tag = spec_label(clock_spec, default="sync")
    spec = {
        "scheme": scheme_name,
        "family": instance.family,
        "n": instance.n,
        "seed": instance.seed,
        "source": instance.source,
        "fault": fault_tag,
        "clock": clock_tag,
    }
    key_note = f" store_key={store_key}" if store_key else ""
    return GridExecutionError(
        f"grid cell failed: scheme={scheme_name!r} graph={instance.family}:"
        f"{instance.n} seed={instance.seed} source={instance.source} "
        f"fault={fault_tag!r} clock={clock_tag!r}:{key_note} "
        f"{type(exc).__name__}: {exc}",
        spec,
        store_key,
    )


def _failure_row(
    scheme_name: str,
    family: str,
    n: int,
    fault_spec: Any,
    clock_spec: Any,
    exc: BaseException,
) -> RunMetrics:
    """The ``strict=False`` record of a failed cell: zeroed measurements,
    ``status="error:<ExceptionName>"``."""
    return RunMetrics(
        scheme=scheme_name,
        family=family,
        n=int(n),
        source_eccentricity=0,
        label_bits=0,
        distinct_labels=0,
        completion_round=None,
        bound=None,
        acknowledgement_round=None,
        transmissions=0,
        collisions=0,
        total_message_bits=0,
        fault=spec_label(fault_spec, default="none"),
        clock=spec_label(clock_spec, default="sync"),
        status=f"error:{type(exc).__name__}",
    )


def _run_units(
    config: GridConfig,
    units: Sequence[UnitSpec],
    *,
    backend: Any,
    trace_level: str,
    strict: bool = True,
    retries: int = 0,
) -> List[RunMetrics]:
    """Run a contiguous span of work units, one backend call per unit.

    Instances are materialized once per consecutive group and every scheme's
    :class:`SchemeLabels` is built once per instance (labels and schedules
    are pure functions of (graph, source, payload)), then reused across the
    fault/clock rows.  ``_payload_text`` reaches the one scheme whose label
    step depends on the payload (bit signalling); the others swallow it.

    ``retries`` re-runs a failing *cell* up to that many extra times with
    fresh fault/clock model objects before the strict/non-strict failure
    handling applies — results are unchanged for deterministic failures
    (same seeds, same memoised coin flips) but a transient fault (OOM, a
    signal) gets one more chance instead of poisoning the sweep.
    """
    from ..analysis.sweep import materialize_instance  # local: avoids import cycle

    rows: List[RunMetrics] = []
    for (family, size, rep), group in _group_units_by_instance(units):
        try:
            instance = materialize_instance(config, family, size, rep)
        except Exception as exc:
            if strict:
                raise
            rows.extend(
                _failure_row(unit[5], family, size, unit[3], unit[4], exc)
                for unit in group
            )
            continue
        labels_infos: Dict[str, Any] = {}
        for unit in group:
            _, _, _, fault_spec, clock_spec, scheme_name = unit

            def key() -> str:
                return grid_unit_key(config, unit, backend=backend,
                                     trace_level=trace_level)

            scheme = get_scheme(scheme_name)
            try:
                outcome = None
                for attempt in range(max(0, int(retries)) + 1):
                    try:
                        options = scheme.grid_options(instance.graph,
                                                      instance.source)
                        if scheme_name not in labels_infos:
                            labels_infos[scheme_name] = scheme.build_labels(
                                instance.graph, instance.source,
                                _payload_text=str(config.payload), **options,
                            )
                        # Fresh model objects per run (and per retry): fault
                        # models memoise coin flips, and a shared instance
                        # across rows would make results depend on execution
                        # order (and break jobs-independence).
                        outcome = scheme.run(
                            instance.graph,
                            instance.source,
                            payload=config.payload,
                            labels_info=labels_infos[scheme_name],
                            fault_model=fault_model_from_spec(fault_spec),
                            clock_model=clock_model_from_spec(
                                clock_spec, instance.graph.n),
                            backend=backend,
                            trace_level=trace_level,
                            **options,
                        )
                        break
                    except Exception:
                        if attempt >= retries:
                            raise
            except Exception as exc:
                if strict:
                    raise _cell_error(exc, scheme_name, instance, fault_spec,
                                      clock_spec, key()) from exc
                rows.append(_failure_row(scheme_name, family, instance.n,
                                         fault_spec, clock_spec, exc))
                continue
            rows.append(
                metrics_from_run(
                    instance.graph,
                    outcome,
                    family=instance.family,
                    source=instance.source,
                    fault=spec_label(fault_spec, default="none"),
                    clock=spec_label(clock_spec, default="sync"),
                )
            )
    return rows


#: Stacked-kernel batch size used when batching is requested without an
#: explicit knob (``backend="batched"`` with no ``batch_size``).
DEFAULT_BATCH_SIZE = 64


def _run_units_batched(
    config: GridConfig,
    units: Sequence[UnitSpec],
    *,
    backend: Any,
    trace_level: str,
    batch_size: int,
    strict: bool = True,
    retries: int = 0,
) -> List[RunMetrics]:
    """Run a span of work units with compatible units batched together.

    Units are grouped by (scheme, fault spec, clock spec) — the
    compatibility key under which the batched backend can stack them — and
    dispatched ``batch_size`` at a time through ``run_batch``.  Rows come
    back in the same stable order the per-cell path produces; the backend
    guarantees batched results are bit-identical to per-task execution, so
    the grouping is invisible to callers.  A failure is re-attributed to its
    single work unit (the batch is replayed per task) and raised as a
    :class:`~repro.analysis.executor.GridExecutionError` naming the spec and
    store key — or, with ``strict=False``, recorded as an error-status row.

    Units are processed in windows spanning ~``batch_size`` instances, so
    peak memory stays O(batch_size) graphs/labelings — not O(all instances)
    — while every (scheme, fault, clock) group inside a window still fills
    whole batches.
    """
    from ..analysis.executor import chunk_specs  # local: avoids cycle

    window = batch_size * _units_per_instance(config)
    rows: List[RunMetrics] = []
    for span in chunk_specs(units, window):
        rows.extend(
            _run_unit_window_batched(config, span, backend=backend,
                                     trace_level=trace_level,
                                     batch_size=batch_size, strict=strict,
                                     retries=retries)
        )
    return rows


def _run_unit_window_batched(
    config: GridConfig,
    units: Sequence[UnitSpec],
    *,
    backend: Any,
    trace_level: str,
    batch_size: int,
    strict: bool,
    retries: int = 0,
) -> List[RunMetrics]:
    """One window of the batched path: materialize, group, stack, derive."""
    from ..analysis.executor import GridExecutionError, chunk_specs
    from ..analysis.sweep import materialize_instance  # local: avoids cycle
    from ..backends import resolve_backend

    backend_obj = resolve_backend(backend if backend is not None else "batched")

    def key_of(unit: UnitSpec) -> str:
        return grid_unit_key(config, unit, backend=backend, trace_level=trace_level)

    rows: List[Optional[RunMetrics]] = [None] * len(units)
    instances: Dict[Tuple[str, int, int], Any] = {}
    indexed: List[Tuple[int, UnitSpec]] = []
    for index, unit in enumerate(units):
        ikey = (unit[0], unit[1], unit[2])
        if ikey not in instances:
            try:
                instances[ikey] = materialize_instance(config, *ikey)
            except Exception as exc:
                if strict:
                    raise
                instances[ikey] = exc
        if isinstance(instances[ikey], BaseException):
            rows[index] = _failure_row(unit[5], unit[0], unit[1], unit[3],
                                       unit[4], instances[ikey])
            continue
        indexed.append((index, unit))

    groups: Dict[Tuple[str, str, str], List[Tuple[int, UnitSpec]]] = {}
    for index, unit in indexed:
        groups.setdefault((unit[5], repr(unit[3]), repr(unit[4])), []).append(
            (index, unit)
        )

    labels_cache: Dict[Tuple[str, Tuple[str, int, int]], Any] = {}
    for members in groups.values():
        for batch in chunk_specs(members, batch_size):
            tasks, metas = [], []
            for index, unit in batch:
                family, size, rep, fault_spec, clock_spec, scheme_name = unit
                instance = instances[(family, size, rep)]
                scheme = get_scheme(scheme_name)
                try:
                    scheme.validate_source(instance.graph, instance.source)
                    options = scheme.grid_options(instance.graph, instance.source)
                    cache_key = (scheme_name, (family, size, rep))
                    if cache_key not in labels_cache:
                        labels_cache[cache_key] = scheme.build_labels(
                            instance.graph, instance.source,
                            _payload_text=str(config.payload), **options,
                        )
                    info = labels_cache[cache_key]
                    task = scheme.build_task(
                        instance.graph, info, instance.source,
                        payload=config.payload,
                        max_rounds=scheme.default_budget(instance.graph, info),
                        trace_level=trace_level,
                        # Fresh model objects per unit: fault models memoise
                        # coin flips, so sharing would couple units.
                        fault_model=fault_model_from_spec(fault_spec),
                        clock_model=clock_model_from_spec(clock_spec,
                                                          instance.graph.n),
                    )
                except Exception as exc:
                    if strict:
                        raise _cell_error(exc, scheme_name, instance, fault_spec,
                                          clock_spec, key_of(unit)) from exc
                    rows[index] = _failure_row(scheme_name, family, instance.n,
                                               fault_spec, clock_spec, exc)
                    continue
                tasks.append(task)
                metas.append((index, unit))
            if not tasks:
                continue
            try:
                results = backend_obj.run_batch(tasks)
            except GridExecutionError:
                raise
            except Exception:
                # Replay per task to attribute the failure to one cell spec
                # (with ``retries`` extra chances per task: kernels are
                # deterministic, so only a transient failure changes outcome).
                results = []
                for task, (index, unit) in zip(tasks, metas):
                    family, size, rep, fault_spec, clock_spec, scheme_name = unit
                    instance = instances[(family, size, rep)]
                    try:
                        replay = None
                        for attempt in range(max(0, int(retries)) + 1):
                            try:
                                replay = backend_obj.run_batch([task])[0]
                                break
                            except Exception:
                                if attempt >= retries:
                                    raise
                        results.append(replay)
                    except Exception as exc:
                        if strict:
                            raise _cell_error(exc, scheme_name, instance,
                                              fault_spec, clock_spec,
                                              key_of(unit)) from exc
                        rows[index] = _failure_row(scheme_name, family,
                                                   instance.n, fault_spec,
                                                   clock_spec, exc)
                        results.append(None)
            for task, result, (index, unit) in zip(tasks, results, metas):
                if result is None:
                    continue  # failure row already recorded above
                family, size, rep, fault_spec, clock_spec, scheme_name = unit
                instance = instances[(family, size, rep)]
                scheme = get_scheme(scheme_name)
                try:
                    outcome = scheme.derive_outcome(
                        instance.graph, task, result,
                        labels_cache[(scheme_name, (family, size, rep))],
                    )
                    if result.backend is not None:
                        outcome.extras.setdefault("executed_by", result.backend)
                except Exception as exc:
                    if strict:
                        raise _cell_error(exc, scheme_name, instance, fault_spec,
                                          clock_spec, key_of(unit)) from exc
                    rows[index] = _failure_row(scheme_name, family, instance.n,
                                               fault_spec, clock_spec, exc)
                    continue
                rows[index] = metrics_from_run(
                    instance.graph,
                    outcome,
                    family=instance.family,
                    source=instance.source,
                    fault=spec_label(fault_spec, default="none"),
                    clock=spec_label(clock_spec, default="sync"),
                )
    return rows  # type: ignore[return-value]


#: One work unit chunk crossing the pool boundary: the grid config (as a
#: dict), a list of unit specs and the execution knobs — all plain picklable
#: data.
_ChunkPayload = Tuple[dict, List[UnitSpec], Optional[str], str, Optional[int],
                      bool, int]


def _run_grid_chunk(payload: _ChunkPayload) -> List[RunMetrics]:
    """Worker entry point: rematerialize each unit's cell and run its scheme."""
    config_dict, chunk, backend, trace_level, batch_size, strict, retries = payload
    config = GridConfig(**config_dict)
    if batch_size is not None:
        return _run_units_batched(config, chunk, backend=backend,
                                  trace_level=trace_level,
                                  batch_size=batch_size, strict=strict,
                                  retries=retries)
    return _run_units(config, chunk, backend=backend, trace_level=trace_level,
                      strict=strict, retries=retries)


@dataclass(frozen=True)
class GridProgress:
    """A progress snapshot handed to ``iter_grid``'s ``on_chunk`` callback.

    One snapshot is emitted before execution starts (announcing the plan:
    how many rows the store already holds) and one after every completed
    chunk.  ``computed_rows`` counts fresh successful rows, ``failed_rows``
    the error-status rows a non-strict sweep recorded.
    """

    total_rows: int
    cached_rows: int
    computed_rows: int = 0
    failed_rows: int = 0
    total_chunks: int = 0
    completed_chunks: int = 0

    @property
    def done_rows(self) -> int:
        """Rows available so far (cached + computed + failed)."""
        return self.cached_rows + self.computed_rows + self.failed_rows

    @property
    def remaining_rows(self) -> int:
        """Rows still to compute."""
        return self.total_rows - self.done_rows


def iter_grid(
    config: GridConfig,
    *,
    backend: Any = None,
    trace_level: str = "summary",
    jobs: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    ordered: bool = False,
    store: Optional[ResultStore] = None,
    strict: bool = True,
    retries: int = 0,
    on_cell: Optional[Callable[[RunMetrics], None]] = None,
    on_chunk: Optional[Callable[[GridProgress], None]] = None,
) -> Iterator[RunMetrics]:
    """Stream grid rows as they complete instead of blocking for the full grid.

    Returns a generator over :class:`RunMetrics` rows.  By default rows are
    yielded **as soon as their chunk completes** — out of order across the
    pool — which makes the first rows observable long before the pool
    drains; ``ordered=True`` buffers just enough to emit rows in the stable
    grid order instead (the order ``run_grid`` returns).

    Parameters beyond :func:`run_grid`'s:

    ordered:
        ``True`` yields rows in stable grid row order; ``False`` (default)
        yields them in completion order.
    store:
        A :class:`~repro.store.ResultStore`.  Rows whose content-addressed
        key is already stored are served from disk without touching a
        backend; every freshly computed ``"ok"`` row is flushed to the store
        *before* it is yielded, so interrupting the consumer (or the
        process) never loses completed work and a re-run resumes exactly
        where it died.  Error-status rows are never stored — a resumed sweep
        retries them.
    strict:
        ``True`` aborts on the first failing cell with a
        :class:`~repro.analysis.executor.GridExecutionError` (naming the
        cell spec and store key); ``False`` records failures as
        ``status="error:..."`` rows and keeps going.
    retries:
        Extra attempts for transient failures before the ``strict`` handling
        applies, at two levels: each failing *cell* is re-run with fresh
        fault/clock models, and a chunk whose **pool worker process died**
        (``BrokenProcessPool`` — a kill -9, an OOM reap) is resubmitted to a
        rebuilt pool instead of aborting the sweep.  Deterministic failures
        produce identical rows either way; the service path runs workers
        with ``retries=1`` and shares this accounting with the coordinator's
        lease expiry.  Default ``0`` (historical behavior).
    on_cell:
        Called with each row right before it is yielded.
    on_chunk:
        Called with a :class:`GridProgress` snapshot before execution starts
        and after every completed chunk.
    """
    _validate_schemes(config)
    jobs = _default_jobs() if jobs is None else max(1, int(jobs))
    if batch_size is None:
        batch_size = config.batch_size
    if batch_size is not None:
        batch_size = int(batch_size)
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
    backend_name = backend if isinstance(backend, str) else getattr(backend, "name", None)
    if config.shards is not None:
        # Shard selection composes the parameterized backend spec; the shard
        # count is parallelism only, so store keys normalize it away.
        if backend is not None and not (
            backend_name == "sharded" or str(backend_name).startswith("sharded:")
        ):
            raise ValueError(
                f"GridConfig.shards={config.shards} requires backend 'sharded' "
                f"(or None), got {backend_name!r}"
            )
        if not (backend is None or isinstance(backend, str)):
            # A backend *instance* carries its own shard count (and possibly
            # strict mode); silently swapping it for a pooled default would
            # discard both.
            raise ValueError(
                f"GridConfig.shards={config.shards} cannot override an explicit "
                f"backend instance {backend!r}; configure the instance's shard "
                f"count directly (or pass backend='sharded')"
            )
        backend = f"sharded:{config.shards}"
        backend_name = backend
    if batch_size is None and backend_name == "batched":
        batch_size = DEFAULT_BATCH_SIZE
    if jobs > 1 and backend is not None and not isinstance(backend, str):
        if backend_name not in BACKEND_NAMES:
            raise ValueError(
                f"parallel sweeps need a registered backend name "
                f"{sorted(BACKEND_NAMES)}, got instance {backend!r} with name "
                f"{backend_name!r}; run with jobs=1 to use a custom backend object"
            )
        backend = backend_name
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    units = grid_row_specs(config)
    return _iter_grid_stream(
        config, units, backend=backend, trace_level=trace_level, jobs=jobs,
        chunk_size=chunk_size, batch_size=batch_size, ordered=ordered,
        store=store, strict=strict, retries=int(retries),
        on_cell=on_cell, on_chunk=on_chunk,
    )


def _default_jobs() -> int:
    from ..analysis.executor import default_jobs  # local: avoids cycle

    return default_jobs()


def _iter_grid_stream(
    config: GridConfig,
    units: List[UnitSpec],
    *,
    backend: Any,
    trace_level: str,
    jobs: int,
    chunk_size: Optional[int],
    batch_size: Optional[int],
    ordered: bool,
    store: Optional[ResultStore],
    strict: bool,
    retries: int,
    on_cell: Optional[Callable[[RunMetrics], None]],
    on_chunk: Optional[Callable[[GridProgress], None]],
) -> Iterator[RunMetrics]:
    """The generator behind :func:`iter_grid` (validation happens eagerly)."""
    from ..analysis.executor import chunk_specs  # local: avoids cycle

    # Membership only (one O(1) index hit per cell): cached rows are fetched
    # lazily at emission time, so a mostly-warm million-cell sweep never
    # materializes every cached row up front.
    keys: List[Optional[str]] = [None] * len(units)
    cached: Set[int] = set()
    if store is not None:
        for i, unit in enumerate(units):
            keys[i] = grid_unit_key(config, unit, backend=backend,
                                    trace_level=trace_level)
            if keys[i] in store:
                cached.add(i)
    pending = [i for i in range(len(units)) if i not in cached]

    per_instance = _units_per_instance(config)
    if chunk_size is None:
        if jobs == 1:
            # Stream per instance (per batch window when batching): the first
            # rows surface after the first instance, and each scheme's labels
            # are still built once per instance within a chunk.
            chunk_size = per_instance if batch_size is None else batch_size * per_instance
        else:
            chunk_size = max(1, (len(pending) + jobs * 4 - 1) // (jobs * 4))
            if batch_size is not None:
                # A worker can only stack units within its own chunk: keep
                # each chunk wide enough to span ~batch_size instances per
                # (scheme, fault, clock) group, or the pool's load-balancing
                # default would silently cap batches.
                chunk_size = max(chunk_size, batch_size * per_instance)
    index_chunks = chunk_specs(pending, chunk_size) if pending else []

    progress = GridProgress(
        total_rows=len(units),
        cached_rows=len(cached),
        total_chunks=len(index_chunks),
    )
    if on_chunk:
        on_chunk(progress)

    buffer: Dict[int, RunMetrics] = {}
    next_emit = 0

    def _persist_and_stage(indices: Sequence[int], rows: Sequence[RunMetrics]):
        nonlocal progress
        computed = failed = 0
        for i, row in zip(indices, rows):
            if row.status == "ok":
                computed += 1
                if store is not None:
                    store.put(keys[i], row)
            else:
                failed += 1
            buffer[i] = row
        progress = replace(
            progress,
            computed_rows=progress.computed_rows + computed,
            failed_rows=progress.failed_rows + failed,
            completed_chunks=progress.completed_chunks + 1,
        )

    def _fetch_cached(i: int) -> RunMetrics:
        row = store.get(keys[i])
        if row is None:
            raise StoreError(
                f"row for cached cell {keys[i]} vanished from {store.root} "
                f"mid-sweep (store modified concurrently?)"
            )
        return row

    def _drain() -> List[RunMetrics]:
        nonlocal next_emit
        out: List[RunMetrics] = []
        if ordered:
            while True:
                if next_emit in cached:
                    cached.discard(next_emit)
                    out.append(_fetch_cached(next_emit))
                elif next_emit in buffer:
                    out.append(buffer.pop(next_emit))
                else:
                    break
                next_emit += 1
        else:
            for i in sorted(cached):
                out.append(_fetch_cached(i))
            cached.clear()
            for i in sorted(buffer):
                out.append(buffer.pop(i))
        return out

    for row in _drain():
        if on_cell:
            on_cell(row)
        yield row

    if not index_chunks:
        return

    payloads: List[_ChunkPayload] = [
        (asdict(config), [units[i] for i in chunk], backend, trace_level,
         batch_size, strict, retries)
        for chunk in index_chunks
    ]

    if min(jobs, len(index_chunks)) <= 1:
        for chunk, payload in zip(index_chunks, payloads):
            _persist_and_stage(chunk, _run_grid_chunk(payload))
            if on_chunk:
                on_chunk(progress)
            for row in _drain():
                if on_cell:
                    on_cell(row)
                yield row
        return

    workers = min(jobs, len(index_chunks))
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures: Dict[Any, Tuple[List[int], _ChunkPayload, int]] = {
            pool.submit(_run_grid_chunk, payload): (chunk, payload, 0)
            for chunk, payload in zip(index_chunks, payloads)
        }
        outstanding = set(futures)
        while outstanding:
            done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            # Persist every successful chunk of this wave before surfacing a
            # failure: completed work survives into the store even when a
            # sibling chunk kills the sweep.
            first_error: Optional[BaseException] = None
            broken: List[Tuple[List[int], _ChunkPayload, int]] = []
            pool_error: Optional[BaseException] = None
            for future in done:
                error = future.exception()
                if error is None:
                    chunk, _payload, _attempt = futures.pop(future)
                    _persist_and_stage(chunk, future.result())
                    if on_chunk:
                        on_chunk(progress)
                elif isinstance(error, BrokenExecutor):
                    broken.append(futures.pop(future))
                    pool_error = error
                else:
                    first_error = first_error or error
            if first_error is not None:
                raise first_error
            if broken:
                # A pool worker process died (kill -9, OOM reap): the
                # executor is broken and every outstanding future fails with
                # the same BrokenProcessPool.  Drain them all, then rebuild
                # the pool and resubmit each lost chunk — one consumed
                # attempt per chunk, the same accounting the service
                # coordinator applies to an expired lease.
                for future in wait(outstanding)[0]:
                    error = future.exception()
                    if error is None:
                        chunk, _payload, _attempt = futures.pop(future)
                        _persist_and_stage(chunk, future.result())
                        if on_chunk:
                            on_chunk(progress)
                    else:
                        broken.append(futures.pop(future))
                outstanding = set()
                exhausted = [item for item in broken if item[2] >= retries]
                survivors = [item for item in broken if item[2] < retries]
                if exhausted and strict:
                    raise pool_error  # type: ignore[misc]
                for chunk, _payload, _attempt in exhausted:
                    _persist_and_stage(chunk, [
                        _failure_row(units[i][5], units[i][0], units[i][1],
                                     units[i][3], units[i][4], pool_error)
                        for i in chunk
                    ])
                    if on_chunk:
                        on_chunk(progress)
                pool.shutdown(wait=False, cancel_futures=True)
                if survivors:
                    pool = ProcessPoolExecutor(max_workers=workers)
                    for chunk, payload, attempt in survivors:
                        future = pool.submit(_run_grid_chunk, payload)
                        futures[future] = (chunk, payload, attempt + 1)
                        outstanding.add(future)
            for row in _drain():
                if on_cell:
                    on_cell(row)
                yield row
    finally:
        # Reached on exhaustion, on a worker failure and when the consumer
        # closes the generator mid-sweep ("the crash at cell 9,000"): any
        # rows already persisted stay persisted, unfinished chunks are
        # cancelled.
        pool.shutdown(wait=True, cancel_futures=True)


def run_grid(
    config: GridConfig,
    *,
    backend: Any = None,
    trace_level: str = "summary",
    jobs: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    store: Optional[ResultStore] = None,
    strict: bool = True,
    retries: int = 0,
    on_cell: Optional[Callable[[RunMetrics], None]] = None,
    on_chunk: Optional[Callable[[GridProgress], None]] = None,
) -> ResultSet:
    """Run every configured scheme over every grid cell and return all rows.

    Drains :func:`iter_grid` in stable order into a columnar
    :class:`~repro.store.ResultSet` (list-compatible with the historical
    ``List[RunMetrics]`` return type).

    Parameters
    ----------
    config:
        The experiment grid (including the fault/clock axes).
    backend / trace_level:
        Forwarded to every scheme run.  For parallel execution ``backend``
        must be a registry name (or an instance of a registered backend
        class, reduced to its name): only plain data crosses the process
        boundary.
    jobs:
        Worker process count.  ``1`` runs inline; ``None`` uses the CPU
        count.  Rows come back in the same stable order for any job count.
    chunk_size:
        Work units per pool chunk; defaults to ~4 chunks per worker.
    batch_size:
        Compatible work units per stacked kernel invocation.  Setting it (or
        ``config.batch_size``, or passing ``backend="batched"``, which
        implies :data:`DEFAULT_BATCH_SIZE`) routes execution through the
        batching path: work units sharing (scheme, fault, clock, trace
        level) run as one block-diagonal kernel invocation on backends that
        stack (results are guaranteed identical either way).  Must be
        positive.
    store:
        A :class:`~repro.store.ResultStore` making the grid incremental:
        already-stored cells are served from disk, fresh rows are flushed as
        they complete, and an interrupted run resumes where it died.
    strict:
        ``False`` records failing cells as ``status="error:..."`` rows
        instead of aborting (see :func:`iter_grid`).
    retries:
        Extra attempts for transiently failing cells and for chunks lost to
        a died pool worker process (see :func:`iter_grid`).
    on_cell / on_chunk:
        Progress callbacks (see :func:`iter_grid`).
    """
    return ResultSet(
        iter_grid(
            config,
            backend=backend,
            trace_level=trace_level,
            jobs=jobs,
            chunk_size=chunk_size,
            batch_size=batch_size,
            ordered=True,
            store=store,
            strict=strict,
            retries=retries,
            on_cell=on_cell,
            on_chunk=on_chunk,
        )
    )

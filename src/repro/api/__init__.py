"""repro.api — the unified scenario/experiment surface.

One composable way to express every experiment the paper's comparison needs::

    from repro import api

    # One execution, declaratively (round-trips through JSON):
    scenario = api.Scenario(graph="grid:64:1", scheme="lambda_ack",
                            faults={"kind": "drop", "prob": 0.05, "seed": 7})
    outcome = api.run(scenario)

    # A whole grid, with fault/clock axes and parallel workers — returns a
    # columnar ResultSet (list-compatible):
    rows = api.run_grid(api.GridConfig(
        families=["path", "geometric"], sizes=[64, 256],
        schemes=["lambda", "round_robin"],
        faults=[None, "drop:0.1:3"],
    ), backend="vectorized", jobs=4)
    rows.filter(scheme="lambda").column("completion_round")

    # The same grid as a streaming, resumable session: rows arrive as worker
    # chunks complete, completed cells land in a content-addressed store,
    # and a re-run (after a crash, or with more seeds) skips everything the
    # store already holds:
    store = api.ResultStore("sweeps/demo")
    for row in api.iter_grid(cfg, jobs=4, store=store):
        print(row.scheme, row.n, row.completion_round)

Schemes live in one registry (:func:`scheme_names`, :func:`get_scheme`,
:func:`register_scheme`); all of them — the paper's λ / λ_ack / λ_arb and the
four baselines — return the same unified :class:`Outcome`.
"""

from ..core.outcome import Outcome
from ..store import ResultSet, ResultStore
from .grid import (
    GridConfig,
    GridProgress,
    grid_cell_specs,
    grid_row_specs,
    grid_unit_key,
    iter_grid,
    run_grid,
)
from .run import run
from .scenario import SOURCE_RULES, Scenario, graph_from_spec, pick_source
from .schemes import (
    Scheme,
    SchemeLabels,
    baseline_scheme_names,
    get_scheme,
    paper_scheme_names,
    register_scheme,
    scheme_backend_coverage,
    scheme_names,
)
from .specs import (
    clock_model_from_spec,
    fault_model_from_spec,
    normalize_clock_spec,
    normalize_fault_spec,
    spec_label,
)

__all__ = [
    "GridConfig",
    "GridProgress",
    "Outcome",
    "ResultSet",
    "ResultStore",
    "SOURCE_RULES",
    "Scenario",
    "Scheme",
    "SchemeLabels",
    "baseline_scheme_names",
    "clock_model_from_spec",
    "fault_model_from_spec",
    "get_scheme",
    "graph_from_spec",
    "grid_cell_specs",
    "grid_row_specs",
    "grid_unit_key",
    "iter_grid",
    "normalize_clock_spec",
    "normalize_fault_spec",
    "paper_scheme_names",
    "pick_source",
    "register_scheme",
    "run",
    "run_grid",
    "scheme_backend_coverage",
    "scheme_names",
    "spec_label",
]

"""repro.api — the unified scenario/experiment surface.

One composable way to express every experiment the paper's comparison needs::

    from repro import api

    # One execution, declaratively (round-trips through JSON):
    scenario = api.Scenario(graph="grid:64:1", scheme="lambda_ack",
                            faults={"kind": "drop", "prob": 0.05, "seed": 7})
    outcome = api.run(scenario)

    # A whole grid, with fault/clock axes and parallel workers:
    rows = api.run_grid(api.GridConfig(
        families=["path", "geometric"], sizes=[64, 256],
        schemes=["lambda", "round_robin"],
        faults=[None, "drop:0.1:3"],
    ), backend="vectorized", jobs=4)

Schemes live in one registry (:func:`scheme_names`, :func:`get_scheme`,
:func:`register_scheme`); all of them — the paper's λ / λ_ack / λ_arb and the
four baselines — return the same unified :class:`Outcome`.
"""

from ..core.outcome import Outcome
from .grid import GridConfig, grid_cell_specs, run_grid
from .run import run
from .scenario import SOURCE_RULES, Scenario, graph_from_spec, pick_source
from .schemes import (
    Scheme,
    SchemeLabels,
    baseline_scheme_names,
    get_scheme,
    paper_scheme_names,
    register_scheme,
    scheme_names,
)
from .specs import (
    clock_model_from_spec,
    fault_model_from_spec,
    normalize_clock_spec,
    normalize_fault_spec,
    spec_label,
)

__all__ = [
    "GridConfig",
    "Outcome",
    "SOURCE_RULES",
    "Scenario",
    "Scheme",
    "SchemeLabels",
    "baseline_scheme_names",
    "clock_model_from_spec",
    "fault_model_from_spec",
    "get_scheme",
    "graph_from_spec",
    "grid_cell_specs",
    "normalize_clock_spec",
    "normalize_fault_spec",
    "paper_scheme_names",
    "pick_source",
    "register_scheme",
    "run",
    "run_grid",
    "scheme_names",
    "spec_label",
]

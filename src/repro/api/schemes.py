"""The scheme registry: every algorithm behind one uniform protocol.

The paper is a *comparison* — λ / λ_ack / λ_arb against round-robin,
G²-coloring TDMA, collision-detection signalling and the centralized
schedule — so the experiment surface treats all seven identically.  A
:class:`Scheme` decomposes one end-to-end execution into the three steps every
scheme shares:

1. **labeler** (:meth:`Scheme.build_labels`) — compute (or validate a reused)
   labeling and its advice-size metadata;
2. **task builder** (:meth:`Scheme.build_task`) — describe the execution as a
   declarative :class:`~repro.backends.base.SimulationTask` (protocol, stop
   rule, budget, channel models);
3. **outcome deriver** (:meth:`Scheme.derive_outcome`) — turn the backend's
   result into the unified :class:`~repro.core.outcome.Outcome`.

:meth:`Scheme.run` is the template method gluing the three together through
:func:`~repro.backends.resolve_backend`, which is what ``repro.api.run`` /
``run_grid``, the legacy ``run_*`` entry points, the sweep layer and the CLI
all call.  New schemes plug in with::

    @register_scheme("my_scheme")
    class MyScheme(Scheme):
        ...

and immediately become available to scenarios, sweeps and the CLI.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Type, Union

from ..backends import SimulationTask, resolve_backend
from ..backends.base import BackendResult
from ..baselines.base import bits_needed
from ..baselines.centralized import ScheduledNode, compute_centralized_schedule
from ..baselines.collision_detection import (
    LENGTH_HEADER_BITS,
    SLOT_LENGTH,
    BitSignalNode,
)
from ..baselines.coloring_tdma import ColoringTdmaNode, coloring_tdma_labels
from ..baselines.round_robin import RoundRobinNode, round_robin_labels
from ..core.labeling import (
    Labeling,
    lambda_ack_scheme,
    lambda_arb_scheme,
    lambda_scheme,
)
from ..core.outcome import Outcome
from ..core.protocols.acknowledged import make_acknowledged_node
from ..core.protocols.arbitrary import ArbitrarySourceNode, make_arbitrary_node
from ..core.protocols.broadcast import make_broadcast_node
from ..graphs.graph import Graph, GraphError
from ..radio.clock import ClockModel
from ..radio.collision import WithCollisionDetection
from ..radio.faults import FaultModel

__all__ = [
    "Scheme",
    "SchemeLabels",
    "register_scheme",
    "get_scheme",
    "scheme_names",
    "paper_scheme_names",
    "baseline_scheme_names",
]


def _broadcast_bound(n: int) -> int:
    """Theorem 2.9's bound: all nodes informed within 2n − 3 rounds (≥ 1)."""
    return max(1, 2 * n - 3)


@dataclass
class SchemeLabels:
    """What a scheme's labeler produces: the labels plus advice metadata."""

    labels: Mapping[int, str]
    label_bits: int
    distinct_labels: int
    labeling: Optional[Labeling] = None
    extras: Dict[str, Any] = field(default_factory=dict)


class Scheme(ABC):
    """One registered broadcast scheme: labeler + task builder + outcome deriver."""

    #: Registry / CLI / scenario-file name.
    name: str = "abstract"
    #: ``"paper"`` for the labeled algorithms, ``"baseline"`` for comparisons.
    kind: str = "baseline"
    #: One-line description shown by ``repro schemes``.
    description: str = ""

    # ------------------------------------------------------------------ #
    # the three scheme-specific steps
    # ------------------------------------------------------------------ #
    @abstractmethod
    def build_labels(
        self, graph: Graph, source: int, *, labeling: Optional[Labeling] = None, **options: Any
    ) -> SchemeLabels:
        """Compute (or validate a reused) labeling for ``graph`` / ``source``."""

    @abstractmethod
    def default_budget(self, graph: Graph, info: SchemeLabels) -> int:
        """Round budget used when the caller does not set ``max_rounds``."""

    @abstractmethod
    def build_task(
        self,
        graph: Graph,
        info: SchemeLabels,
        source: int,
        *,
        payload: Any,
        max_rounds: int,
        trace_level: str,
        fault_model: Optional[FaultModel],
        clock_model: Optional[ClockModel],
    ) -> SimulationTask:
        """Describe the execution declaratively for the backend layer."""

    @abstractmethod
    def derive_outcome(
        self, graph: Graph, task: SimulationTask, result: BackendResult, info: SchemeLabels
    ) -> Outcome:
        """Assemble the unified :class:`Outcome` from the backend result."""

    # ------------------------------------------------------------------ #
    # hooks with sensible defaults
    # ------------------------------------------------------------------ #
    def validate_source(self, graph: Graph, source: int) -> None:
        """Reject sources outside the graph (schemes may refine this)."""
        if source not in graph:
            raise GraphError(f"source {source} is not a node of {graph!r}")

    def grid_options(self, graph: Graph, source: int) -> Dict[str, Any]:
        """Extra per-instance options a sweep grid passes to :meth:`run`."""
        return {}

    # ------------------------------------------------------------------ #
    # the template method
    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: Graph,
        source: int,
        *,
        payload: Any = "MSG",
        labeling: Optional[Labeling] = None,
        labels_info: Optional[SchemeLabels] = None,
        max_rounds: Optional[int] = None,
        fault_model: Optional[FaultModel] = None,
        clock_model: Optional[ClockModel] = None,
        backend: Any = None,
        trace_level: str = "full",
        **options: Any,
    ) -> Outcome:
        """Label, simulate and derive the outcome of one execution.

        ``labels_info`` lets callers that run the same (graph, source) many
        times — e.g. the sweep grid across fault/clock cells — reuse a
        previously built :class:`SchemeLabels` instead of recomputing labels
        or schedules; it must come from this scheme's own
        :meth:`build_labels` on the same instance.
        """
        self.validate_source(graph, source)
        info = labels_info if labels_info is not None else self.build_labels(
            graph, source, labeling=labeling, **options
        )
        budget = max_rounds if max_rounds is not None else self.default_budget(graph, info)
        task = self.build_task(
            graph,
            info,
            source,
            payload=payload,
            max_rounds=budget,
            trace_level=trace_level,
            fault_model=fault_model,
            clock_model=clock_model,
        )
        result = resolve_backend(backend).run_task(task)
        outcome = self.derive_outcome(graph, task, result, info)
        if result.backend is not None:
            # Execution provenance: the engine that actually ran the task
            # (after any fallback), surfaced into the metrics row's
            # ``backend`` column by ``metrics_from_run``.
            outcome.extras.setdefault("executed_by", result.backend)
        return outcome


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, Scheme] = {}


def register_scheme(name: str) -> Callable[[Type[Scheme]], Type[Scheme]]:
    """Class decorator registering a :class:`Scheme` under ``name``.

    The class is instantiated once; the shared instance is what
    :func:`get_scheme` returns.  Registering a name twice replaces the
    previous entry (useful for tests and downstream overrides).
    """

    def decorator(cls: Type[Scheme]) -> Type[Scheme]:
        if not (isinstance(cls, type) and issubclass(cls, Scheme)):
            raise TypeError(f"@register_scheme expects a Scheme subclass, got {cls!r}")
        cls.name = name
        _REGISTRY[name] = cls()
        return cls

    return decorator


def get_scheme(name: Union[str, Scheme]) -> Scheme:
    """Look up a registered scheme by name (a :class:`Scheme` passes through)."""
    if isinstance(name, Scheme):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; known schemes: {scheme_names()}"
        ) from None


def scheme_names() -> List[str]:
    """Sorted names of all registered schemes."""
    return sorted(_REGISTRY)


def scheme_backend_coverage(name: Union[str, Scheme]) -> List[str]:
    """The registered backends that execute ``name`` natively.

    Probes each backend's :meth:`~repro.backends.SimulationBackend.supports`
    with a tiny representative task (a 4-node path), so the answer reflects
    the actual kernel coverage — e.g. B_arb runs vectorized but is not yet
    stacked by the batched engine.  The reference backend covers everything
    by construction; backends outside a scheme's coverage still *run* it by
    falling back per task.  Used by ``repro schemes --json`` so tooling that
    builds grids programmatically can pick backends without trial and error.
    """
    from ..backends import BACKEND_NAMES, resolve_backend
    from ..graphs.generators import generate_family

    scheme = get_scheme(name)
    graph = generate_family("path", 4, 0)
    info = scheme.build_labels(graph, 0, **scheme.grid_options(graph, 0))
    task = scheme.build_task(
        graph, info, 0, payload="MSG",
        max_rounds=scheme.default_budget(graph, info),
        trace_level="summary", fault_model=None, clock_model=None,
    )
    return [n for n in BACKEND_NAMES if resolve_backend(n).supports(task)]


def paper_scheme_names() -> List[str]:
    """Sorted names of the paper's labeled algorithms."""
    return sorted(n for n, s in _REGISTRY.items() if s.kind == "paper")


def baseline_scheme_names() -> List[str]:
    """Sorted names of the comparison baselines."""
    return sorted(n for n, s in _REGISTRY.items() if s.kind == "baseline")


# --------------------------------------------------------------------------- #
# the paper's labeled algorithms
# --------------------------------------------------------------------------- #
def _labels_from_labeling(lab: Labeling, **extras: Any) -> SchemeLabels:
    return SchemeLabels(
        labels=lab.labels,
        label_bits=lab.length,
        distinct_labels=lab.num_distinct_labels(),
        labeling=lab,
        extras=extras,
    )


@register_scheme("lambda")
class LambdaScheme(Scheme):
    """Algorithm B with the 2-bit λ labeling (Theorem 2.9)."""

    kind = "paper"
    description = "2-bit λ labels + universal Algorithm B (≤ 2n−3 rounds)"

    def build_labels(self, graph, source, *, labeling=None, strategy="prune", **_):
        lab = labeling if labeling is not None else lambda_scheme(graph, source, strategy=strategy)
        if lab.scheme != "lambda":
            raise GraphError(f"run_broadcast expects a λ labeling, got {lab.scheme!r}")
        return _labels_from_labeling(lab)

    def default_budget(self, graph, info):
        return _broadcast_bound(graph.n) + 4

    def build_task(self, graph, info, source, *, payload, max_rounds, trace_level,
                   fault_model, clock_model):
        return SimulationTask(
            protocol="broadcast",
            graph=graph,
            labels=info.labels,
            node_factory=make_broadcast_node,
            source=source,
            payload=payload,
            max_rounds=max_rounds,
            stop_rule="all_informed",
            trace_level=trace_level,
            fault_model=fault_model,
            clock_model=clock_model,
        )

    def derive_outcome(self, graph, task, result, info):
        sim = result.simulation
        if "completion_round" in result.derived:
            completion = result.derived["completion_round"]
        else:
            completion = sim.trace.broadcast_completion_round()
        return Outcome(
            scheme=self.name,
            simulation=sim,
            completion_round=completion,
            labeling=info.labeling,
            label_bits=info.label_bits,
            distinct_labels=info.distinct_labels,
            bound_broadcast=_broadcast_bound(graph.n),
        )


@register_scheme("lambda_ack")
class LambdaAckScheme(Scheme):
    """Algorithm B_ack with the 3-bit λ_ack labeling (Theorem 3.9)."""

    kind = "paper"
    description = "3-bit λ_ack labels + acknowledged broadcast B_ack (≤ t+n−2)"

    def build_labels(self, graph, source, *, labeling=None, strategy="prune", **_):
        lab = labeling if labeling is not None else lambda_ack_scheme(
            graph, source, strategy=strategy
        )
        if lab.scheme != "lambda_ack":
            raise GraphError(
                f"run_acknowledged_broadcast expects a λ_ack labeling, got {lab.scheme!r}"
            )
        return _labels_from_labeling(lab)

    def default_budget(self, graph, info):
        return 3 * graph.n + 6

    def build_task(self, graph, info, source, *, payload, max_rounds, trace_level,
                   fault_model, clock_model):
        if graph.n == 1:
            # A single-node network: broadcast and acknowledgement are vacuous;
            # one round through the regular backend path suffices.
            max_rounds, stop_rule = 1, None
        else:
            stop_rule = "acknowledged"
        return SimulationTask(
            protocol="acknowledged",
            graph=graph,
            labels=info.labels,
            node_factory=make_acknowledged_node,
            source=source,
            payload=payload,
            max_rounds=max_rounds,
            stop_rule=stop_rule,
            trace_level=trace_level,
            fault_model=fault_model,
            clock_model=clock_model,
        )

    def derive_outcome(self, graph, task, result, info):
        sim = result.simulation
        if graph.n == 1:
            return Outcome(
                scheme=self.name, simulation=sim, completion_round=1,
                labeling=info.labeling, label_bits=info.label_bits,
                distinct_labels=info.distinct_labels, acknowledgement_round=1,
                bound_broadcast=1, bound_acknowledgement=2,
            )
        if "completion_round" in result.derived:
            completion = result.derived["completion_round"]
            ack_round = result.derived.get("acknowledgement_round")
        else:
            completion = sim.trace.broadcast_completion_round()
            ack_round = sim.trace.first_ack_at(task.source)
        bound_ack = None
        if completion is not None:
            bound_ack = completion + max(1, graph.n - 2)
        return Outcome(
            scheme=self.name,
            simulation=sim,
            completion_round=completion,
            labeling=info.labeling,
            label_bits=info.label_bits,
            distinct_labels=info.distinct_labels,
            acknowledgement_round=ack_round,
            bound_broadcast=_broadcast_bound(graph.n),
            bound_acknowledgement=bound_ack,
        )


@register_scheme("lambda_arb")
class LambdaArbScheme(Scheme):
    """Algorithm B_arb: 3-bit labels, source unknown at labeling time (Section 4)."""

    kind = "paper"
    description = "3-bit λ_arb labels + arbitrary-source broadcast B_arb"

    def build_labels(self, graph, source, *, labeling=None, coordinator=None,
                     strategy="prune", **_):
        lab = labeling if labeling is not None else lambda_arb_scheme(
            graph, coordinator=coordinator, strategy=strategy
        )
        if lab.scheme != "lambda_arb":
            raise GraphError(
                f"run_arbitrary_source_broadcast expects a λ_arb labeling, got {lab.scheme!r}"
            )
        return _labels_from_labeling(lab)

    def validate_source(self, graph, source):
        if source not in graph:
            raise GraphError(f"true source {source} is not a node of {graph!r}")

    def grid_options(self, graph, source):
        # Sweep convention: the coordinator is a node other than the source.
        return {"coordinator": 0 if source != 0 else graph.n - 1}

    def default_budget(self, graph, info):
        # Three acknowledged broadcasts plus guard delays: a 12n + 30 budget is
        # comfortably above the worst case (each phase is O(n) rounds).
        return 12 * graph.n + 30

    def build_task(self, graph, info, source, *, payload, max_rounds, trace_level,
                   fault_model, clock_model):
        lab = info.labeling
        coordinator_node = lab.coordinator if lab.coordinator is not None else 0
        if graph.n == 1:
            return SimulationTask(
                protocol="arbitrary", graph=graph, labels=info.labels,
                node_factory=make_arbitrary_node, source=source, payload=payload,
                max_rounds=1, trace_level=trace_level,
                fault_model=fault_model, clock_model=clock_model,
                extras={"coordinator": coordinator_node},
            )

        def everyone_knows_completion(sim) -> bool:
            return all(
                isinstance(node, ArbitrarySourceNode) and node.knows_completion
                for node in sim.nodes
            )

        return SimulationTask(
            protocol="arbitrary",
            graph=graph,
            labels=info.labels,
            node_factory=make_arbitrary_node,
            source=source,
            payload=payload,
            max_rounds=max_rounds,
            stop_rule="arb_complete",
            stop_condition=everyone_knows_completion,
            trace_level=trace_level,
            fault_model=fault_model,
            clock_model=clock_model,
            extras={"coordinator": coordinator_node},
        )

    def derive_outcome(self, graph, task, result, info):
        sim = result.simulation
        true_source = task.source
        coordinator_node = task.extras["coordinator"]
        if graph.n == 1:
            return Outcome(
                scheme=self.name, simulation=sim, completion_round=1,
                labeling=info.labeling, label_bits=info.label_bits,
                distinct_labels=info.distinct_labels, acknowledgement_round=1,
                common_completion_round=1, bound_broadcast=1,
                extras={"true_source": true_source,
                        "coordinator": info.labeling.coordinator},
            )
        if "completion_round" in result.derived:
            completion = result.derived["completion_round"]
            ack_round = result.derived.get("acknowledgement_round")
            common = result.derived.get("common_completion_round")
        else:
            completion, ack_round, common = _derive_arbitrary_outcome(
                graph, sim, true_source, coordinator_node
            )
        return Outcome(
            scheme=self.name,
            simulation=sim,
            completion_round=completion,
            labeling=info.labeling,
            label_bits=info.label_bits,
            distinct_labels=info.distinct_labels,
            acknowledgement_round=ack_round,
            common_completion_round=common,
            bound_broadcast=_broadcast_bound(graph.n),
            extras={"true_source": true_source, "coordinator": coordinator_node},
        )


def _derive_arbitrary_outcome(graph, sim, true_source, coordinator_node):
    """Assemble B_arb's headline rounds from the trace and node objects.

    Completion for B_arb: every node other than the coordinator and the true
    source hears µ via a SOURCE message in phase 3; the true source holds µ
    from the start; the coordinator learns µ from the phase-2 ack payload.
    The trace-level helper (which requires *every* non-source node to hear a
    SOURCE message) would therefore never credit the coordinator, so the
    completion round is assembled here from those three ingredients.
    """
    ack_round = sim.trace.first_ack_at(coordinator_node)
    receipt_rounds = []
    missing = False
    for v in graph.nodes():
        if v in (true_source, coordinator_node):
            continue
        first = sim.trace.first_source_receipt(v)
        if first is None:
            missing = True
            break
        receipt_rounds.append(first)
    coordinator_knows = any(
        isinstance(node, ArbitrarySourceNode)
        and node.node_id == coordinator_node
        and (node.sourcemsg is not None)
        for node in sim.nodes
    )
    coordinator_learned_round = None
    if coordinator_node != true_source:
        # The phase-2 ack (the one carrying µ) is the last ack the coordinator
        # hears; the trace tracks it incrementally at every level.
        coordinator_learned_round = sim.trace.last_ack_at(coordinator_node)
    completion = None
    if not missing and (coordinator_knows or coordinator_node == true_source):
        candidates = list(receipt_rounds)
        if coordinator_learned_round is not None:
            candidates.append(coordinator_learned_round)
        completion = max(candidates) if candidates else 1
    common_rounds = {
        node.completion_known_local_round
        for node in sim.nodes
        if isinstance(node, ArbitrarySourceNode)
    }
    common = None
    if len(common_rounds) == 1 and None not in common_rounds:
        common = common_rounds.pop()
    return completion, ack_round, common


# --------------------------------------------------------------------------- #
# the comparison baselines
# --------------------------------------------------------------------------- #
@register_scheme("round_robin")
class RoundRobinScheme(Scheme):
    """Folklore round-robin broadcast with distinct O(log n)-bit labels."""

    kind = "baseline"
    description = "distinct-id round-robin TDMA, 2·⌈log₂ n⌉-bit labels"

    def build_labels(self, graph, source, *, labeling=None, **_):
        labels = round_robin_labels(graph)
        return SchemeLabels(
            labels=labels,
            label_bits=max(len(lab) for lab in labels.values()),
            distinct_labels=len(set(labels.values())),
        )

    def default_budget(self, graph, info):
        return graph.n * (graph.n + 2)

    def build_task(self, graph, info, source, *, payload, max_rounds, trace_level,
                   fault_model, clock_model):
        def factory(node_id, label, is_source, source_payload):
            return RoundRobinNode(node_id, label, is_source=is_source,
                                  source_payload=source_payload)

        return SimulationTask(
            protocol="round_robin",
            graph=graph,
            labels=info.labels,
            node_factory=factory,
            source=source,
            payload=payload,
            max_rounds=max_rounds,
            stop_rule="all_informed",
            trace_level=trace_level,
            fault_model=fault_model,
            clock_model=clock_model,
        )

    def derive_outcome(self, graph, task, result, info):
        sim = result.simulation
        completion = result.derived.get(
            "completion_round", sim.trace.broadcast_completion_round()
        )
        return Outcome(
            scheme=self.name,
            simulation=sim,
            completion_round=completion,
            label_bits=info.label_bits,
            distinct_labels=info.distinct_labels,
            extras={"period": graph.n},
        )


@register_scheme("coloring_tdma")
class ColoringTdmaScheme(Scheme):
    """TDMA broadcast from a proper coloring of G² (O(log Δ)-bit labels)."""

    kind = "baseline"
    description = "G²-coloring TDMA, collision-free by construction"

    def build_labels(self, graph, source, *, labeling=None, **_):
        labels, num_colours = coloring_tdma_labels(graph)
        return SchemeLabels(
            labels=labels,
            label_bits=max(len(lab) for lab in labels.values()),
            distinct_labels=len(set(labels.values())),
            extras={"num_colours": num_colours},
        )

    def default_budget(self, graph, info):
        return info.extras["num_colours"] * (graph.n + 2)

    def build_task(self, graph, info, source, *, payload, max_rounds, trace_level,
                   fault_model, clock_model):
        def factory(node_id, label, is_source, source_payload):
            return ColoringTdmaNode(node_id, label, is_source=is_source,
                                    source_payload=source_payload)

        return SimulationTask(
            protocol="coloring_tdma",
            graph=graph,
            labels=info.labels,
            node_factory=factory,
            source=source,
            payload=payload,
            max_rounds=max_rounds,
            stop_rule="all_informed",
            trace_level=trace_level,
            fault_model=fault_model,
            clock_model=clock_model,
        )

    def derive_outcome(self, graph, task, result, info):
        sim = result.simulation
        completion = result.derived.get(
            "completion_round", sim.trace.broadcast_completion_round()
        )
        return Outcome(
            scheme=self.name,
            simulation=sim,
            completion_round=completion,
            label_bits=info.label_bits,
            distinct_labels=info.distinct_labels,
            extras={"num_colours": info.extras["num_colours"]},
        )


@register_scheme("collision_detection")
class CollisionDetectionScheme(Scheme):
    """Anonymous bit-signalling broadcast under collision detection."""

    kind = "baseline"
    description = "label-free bit signalling (needs the detection channel)"

    def build_labels(self, graph, source, *, labeling=None, with_detection=True,
                     _payload_text="MSG", **_):
        symbol_count = 1 + LENGTH_HEADER_BITS + 8 * len(_payload_text.encode("utf-8"))
        return SchemeLabels(
            labels={v: "0" for v in graph.nodes()},
            label_bits=0,
            distinct_labels=1,
            extras={"with_detection": bool(with_detection), "symbol_count": symbol_count},
        )

    def default_budget(self, graph, info):
        return SLOT_LENGTH * info.extras["symbol_count"] + graph.n + 10

    def build_task(self, graph, info, source, *, payload, max_rounds, trace_level,
                   fault_model, clock_model):
        def factory(node_id, label, is_source, source_payload):
            return BitSignalNode(node_id, label, is_source=is_source,
                                 source_payload=source_payload)

        def all_decoded(s) -> bool:
            return all(
                isinstance(node, BitSignalNode) and node.has_decoded for node in s.nodes
            )

        with_detection = info.extras["with_detection"]
        # ``stop_rule`` is the declarative twin of ``stop_condition``: array
        # backends (which have no node objects to inspect) implement it
        # natively, while the reference engine keeps using the callable.
        return SimulationTask(
            protocol="collision_detection",
            graph=graph,
            labels=info.labels,
            node_factory=factory,
            source=source,
            payload=str(payload),
            max_rounds=max_rounds,
            stop_rule="all_decoded",
            stop_condition=all_decoded,
            trace_level=trace_level,
            collision_model=WithCollisionDetection() if with_detection else None,
            fault_model=fault_model,
            clock_model=clock_model,
        )

    def run(self, graph, source, *, payload="MSG", **kwargs):
        # The round budget depends on the payload length, so the labeler needs
        # to see the serialized payload text when sizing the symbol stream.
        return super().run(graph, source, payload=payload,
                           _payload_text=str(payload), **kwargs)

    def derive_outcome(self, graph, task, result, info):
        sim = result.simulation
        payload = task.payload
        if "decoded_correctly" in result.derived:
            decoded_ok = result.derived["decoded_correctly"]
        else:
            decoded_ok = all(
                isinstance(node, BitSignalNode) and node.decoded == str(payload)
                for node in sim.nodes
            )
        completion = sim.stop_round if (sim.completed and decoded_ok) else None
        return Outcome(
            scheme=self.name,
            simulation=sim,
            completion_round=completion,
            label_bits=0,
            distinct_labels=1,
            extras={
                "symbols": info.extras["symbol_count"],
                "slot_length": SLOT_LENGTH,
                "with_detection": info.extras["with_detection"],
                "decoded_correctly": decoded_ok,
            },
        )


@register_scheme("centralized")
class CentralizedScheme(Scheme):
    """Centralized known-topology greedy schedule (unbounded advice)."""

    kind = "baseline"
    description = "precomputed greedy schedule, unbounded advice size"

    def build_labels(self, graph, source, *, labeling=None, strategy="greedy", **_):
        schedule = compute_centralized_schedule(graph, source, strategy=strategy)
        per_node_rounds: Dict[int, set] = {v: set() for v in graph.nodes()}
        for idx, transmitters in enumerate(schedule, start=1):
            for v in transmitters:
                per_node_rounds[v].add(idx)
        # Advice size: each scheduled round index costs ceil(log2(len+1)) bits.
        round_bits = bits_needed(len(schedule) + 1)
        label_bits = max(
            (len(rounds) * round_bits for rounds in per_node_rounds.values()), default=0
        )
        return SchemeLabels(
            labels={v: "0" for v in graph.nodes()},
            label_bits=label_bits,
            distinct_labels=len({frozenset(r) for r in per_node_rounds.values()}),
            extras={
                "schedule": [sorted(int(v) for v in s) for s in schedule],
                "per_node_rounds": per_node_rounds,
            },
        )

    def default_budget(self, graph, info):
        return len(info.extras["schedule"]) + 2

    def build_task(self, graph, info, source, *, payload, max_rounds, trace_level,
                   fault_model, clock_model):
        per_node_rounds = info.extras["per_node_rounds"]

        def factory(node_id, label, is_source, source_payload):
            return ScheduledNode(
                node_id, label, is_source=is_source, source_payload=source_payload,
                transmit_rounds=per_node_rounds[node_id],
            )

        # The schedule travels in extras so array backends can execute it
        # natively; the node factory covers the reference engine.
        return SimulationTask(
            protocol="centralized",
            graph=graph,
            labels=info.labels,
            node_factory=factory,
            source=source,
            payload=payload,
            max_rounds=max_rounds,
            stop_rule="all_informed",
            trace_level=trace_level,
            fault_model=fault_model,
            clock_model=clock_model,
            extras={"schedule": info.extras["schedule"]},
        )

    def derive_outcome(self, graph, task, result, info):
        sim = result.simulation
        completion = result.derived.get(
            "completion_round", sim.trace.broadcast_completion_round()
        )
        return Outcome(
            scheme=self.name,
            simulation=sim,
            completion_round=completion,
            label_bits=info.label_bits,
            distinct_labels=info.distinct_labels,
            extras={"schedule_length": len(info.extras["schedule"])},
        )

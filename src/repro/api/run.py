"""``run(scenario, scheme)`` — the single entry point for one execution."""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.outcome import Outcome
from .scenario import Scenario
from .schemes import Scheme, get_scheme
from .specs import clock_model_from_spec, fault_model_from_spec

__all__ = ["run"]


def run(
    scenario: Union[Scenario, Dict[str, Any], str, Path],
    scheme: Optional[Union[str, Scheme]] = None,
    *,
    backend: Any = None,
    trace_level: Optional[str] = None,
    graph: Any = None,
    source: Optional[int] = None,
) -> Outcome:
    """Execute one scenario with a registered scheme and return the outcome.

    ``scenario`` may be a :class:`Scenario`, a plain dict, or a path to a
    scenario JSON file.  ``scheme`` overrides the scenario's own scheme name;
    ``backend`` / ``trace_level`` override the scenario's execution knobs
    (handy for CLI flags) without mutating the scenario.  Callers that have
    already materialized the scenario's graph (e.g. to report on it) can pass
    ``graph`` / ``source`` to avoid regenerating it.
    """
    if isinstance(scenario, (str, Path)):
        scenario = Scenario.load(scenario)
    elif isinstance(scenario, dict):
        scenario = Scenario.from_dict(scenario)
    if graph is None:
        graph = scenario.materialize_graph()
    if source is None:
        source = scenario.resolve_source(graph)
    chosen = get_scheme(scheme if scheme is not None else scenario.scheme)
    return chosen.run(
        graph,
        source,
        payload=scenario.payload,
        max_rounds=scenario.max_rounds,
        fault_model=fault_model_from_spec(scenario.faults),
        clock_model=clock_model_from_spec(scenario.clock, graph.n),
        backend=backend if backend is not None else scenario.backend_spec(),
        trace_level=trace_level if trace_level is not None else scenario.trace_level,
        **scenario.options,
    )

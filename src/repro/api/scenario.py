"""Declarative scenario configs: one experiment as serializable data.

A :class:`Scenario` describes everything one scheme execution needs — the
graph (a generator spec ``family:n[:seed]``, an edge-list file path, or an
inline :class:`~repro.graphs.graph.Graph`), the source rule, the payload, the
channel perturbations, the backend, the trace level and the round budget — as
plain data that round-trips through JSON.  That makes experiments
version-controllable (``repro run scenario.json``), reproducible and shippable
to worker processes, which rematerialize the graph and the channel models from
the spec.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..graphs.generators import family_names, generate_family
from ..graphs.graph import Graph, GraphError
from ..graphs.io import load_edge_list
from .specs import ClockSpec, FaultSpec, normalize_clock_spec, normalize_fault_spec

__all__ = ["Scenario", "SOURCE_RULES", "graph_from_spec", "pick_source"]

#: Named source rules a scenario (or sweep config) may use instead of a node id.
SOURCE_RULES = ("zero", "last", "center-ish")


def graph_from_spec(spec: str) -> Graph:
    """Parse ``family:n[:seed]`` or an edge-list file path into a graph.

    Raises :class:`ValueError` (the common base of :class:`GraphError`) on
    malformed specs, unknown families and non-positive sizes, *before* any
    generator runs — so errors surface as one clear message instead of a
    traceback from deep inside a generator.
    """
    if Path(spec).exists():
        return load_edge_list(spec)
    parts = spec.split(":")
    if len(parts) not in (2, 3) or parts[0] not in family_names():
        raise ValueError(
            f"graph spec {spec!r} is neither an existing file nor 'family:n[:seed]' "
            f"with family in {family_names()}"
        )
    try:
        n = int(parts[1])
    except ValueError:
        raise ValueError(f"graph spec {spec!r}: size {parts[1]!r} is not an integer") from None
    if n <= 0:
        raise ValueError(f"graph spec {spec!r}: size must be a positive integer, got {n}")
    seed = 0
    if len(parts) == 3:
        try:
            seed = int(parts[2])
        except ValueError:
            raise ValueError(
                f"graph spec {spec!r}: seed {parts[2]!r} is not an integer"
            ) from None
    return generate_family(parts[0], n, seed)


def pick_source(graph: Graph, rule: Union[int, str]) -> int:
    """Resolve a source rule (node id or ``"zero"``/``"last"``/``"center-ish"``)."""
    if isinstance(rule, bool):  # bool is an int subclass; reject it explicitly
        raise ValueError(f"unknown source rule {rule!r}")
    if isinstance(rule, int):
        if rule not in graph:
            raise GraphError(f"source {rule} is not a node of {graph!r}")
        return rule
    if rule == "zero":
        return 0
    if rule == "last":
        return graph.n - 1
    if rule == "center-ish":
        return graph.n // 2
    raise ValueError(f"unknown source rule {rule!r}; known: {SOURCE_RULES} or a node id")


@dataclass
class Scenario:
    """One experiment, described declaratively.

    Attributes
    ----------
    graph:
        ``"family:n[:seed]"`` generator spec, an edge-list file path, or an
        inline :class:`Graph` (serialized as ``{"n": ..., "edges": [...]}``).
    scheme:
        Registered scheme name (see :func:`repro.api.scheme_names`).
    source:
        Node id, or one of the named rules ``"zero"`` / ``"last"`` /
        ``"center-ish"``.
    payload:
        The source message µ (any JSON-serializable value).
    faults / clock:
        Declarative channel perturbation specs (see :mod:`repro.api.specs`);
        ``None`` selects the paper's reliable synchronized model.
    backend:
        Backend spec (``"reference"`` / ``"vectorized"`` / ``"batched"`` /
        ``"sharded"`` / ``"ell"``, plus the parameterized forms
        ``"sharded:K"`` and ``"ell:jit"`` / ``"ell:numpy"``) or ``None``
        for the default.
    shards:
        Worker process count for the sharded backend (requires ``backend``
        to be ``"sharded"`` or unset; setting it alone selects the sharded
        backend).  ``None`` leaves the backend's own default.
    trace_level:
        ``"full"`` / ``"summary"`` / ``"none"``.
    max_rounds:
        Round budget; ``None`` uses the scheme's theoretical default.
    options:
        Scheme-specific options (``strategy``, ``coordinator``,
        ``with_detection``, …) forwarded to :meth:`Scheme.run`.
    """

    graph: Union[str, Graph]
    scheme: str = "lambda"
    source: Union[int, str] = 0
    payload: Any = "MSG"
    faults: FaultSpec = None
    clock: ClockSpec = None
    backend: Optional[str] = None
    shards: Optional[int] = None
    trace_level: str = "full"
    max_rounds: Optional[int] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.faults = normalize_fault_spec(self.faults)
        self.clock = normalize_clock_spec(self.clock)
        if self.trace_level not in ("full", "summary", "none"):
            raise ValueError(f"unknown trace level {self.trace_level!r}")
        if self.shards is not None:
            self.shards = int(self.shards)
            if self.shards < 1:
                raise ValueError(f"shards must be a positive integer, got {self.shards}")
            if self.backend not in (None, "sharded"):
                raise ValueError(
                    f"shards={self.shards} requires backend 'sharded' (or unset), "
                    f"got {self.backend!r}"
                )

    def backend_spec(self) -> Optional[str]:
        """The effective backend spec: ``shards`` composes ``"sharded:K"``."""
        if self.shards is not None:
            return f"sharded:{self.shards}"
        return self.backend

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #
    def materialize_graph(self) -> Graph:
        """The concrete graph this scenario runs on."""
        if isinstance(self.graph, Graph):
            return self.graph
        return graph_from_spec(self.graph)

    def resolve_source(self, graph: Graph) -> int:
        """The concrete source node on ``graph``."""
        return pick_source(graph, self.source)

    @property
    def family(self) -> str:
        """A short tag for the graph (family name for specs, ``"custom"`` inline)."""
        if isinstance(self.graph, str):
            return self.graph.split(":")[0]
        return "custom"

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form; inverse of :meth:`from_dict`."""
        graph: Any = self.graph
        if isinstance(graph, Graph):
            graph = {
                "n": graph.n,
                "edges": [[int(u), int(v)] for u, v in sorted(graph.edges())],
            }
        return {
            "graph": graph,
            "scheme": self.scheme,
            "source": self.source,
            "payload": self.payload,
            "faults": self.faults,
            "clock": self.clock,
            "backend": self.backend,
            "shards": self.shards,
            "trace_level": self.trace_level,
            "max_rounds": self.max_rounds,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output (or hand-written JSON)."""
        if not isinstance(doc, dict):
            raise TypeError(f"scenario document must be a dict, got {type(doc).__name__}")
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown scenario fields {unknown}; known: {sorted(known)}")
        data = dict(doc)
        graph = data.get("graph")
        if isinstance(graph, dict):
            data["graph"] = Graph.from_edges(
                int(graph["n"]), [(int(u), int(v)) for u, v in graph.get("edges", [])]
            )
        elif not isinstance(graph, (str, Graph)):
            raise ValueError(
                "scenario 'graph' must be a 'family:n[:seed]' spec, a file path "
                "or an inline {'n': ..., 'edges': [...]} object"
            )
        return cls(**data)

    def to_json(self, *, indent: int = 2) -> str:
        """JSON text; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario from JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        """Write the scenario as JSON to ``path``."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Scenario":
        """Read a scenario from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

"""Declarative, JSON-serializable specs for fault and clock models.

Sweeping over channel perturbations requires the perturbation to be *data*,
not a live Python object: the parallel executor ships work units to worker
processes as plain picklable specs, and scenario files must round-trip
through JSON.  This module defines the canonical spec dictionaries, a compact
string shorthand for the CLI, and the materializers that turn a spec into the
:mod:`repro.radio` model object for a concrete graph.

Fault specs (``None`` means the paper's reliable channel):

* ``{"kind": "none"}``
* ``{"kind": "drop", "prob": 0.1, "seed": 7}`` → :class:`TransmissionDropFaults`
* ``{"kind": "crash", "schedule": {"3": 5}}`` → :class:`CrashFaults`
* ``{"kind": "composite", "models": [spec, ...]}`` → :class:`CompositeFaults`

Clock specs (``None`` means synchronized clocks):

* ``{"kind": "synchronized"}``
* ``{"kind": "offset", "offsets": {"0": 3}, "default": 0}`` → :class:`OffsetClocks`
* ``{"kind": "random_offsets", "max_offset": 50, "seed": 0}`` →
  per-node uniform offsets, materialized deterministically for the graph

String shorthands (used by ``repro sweep --faults ... --clocks ...``):
``"none"``, ``"drop:0.1"``, ``"drop:0.1:7"``, ``"crash:3@5,8@2"``,
``"sync"``, ``"offset:3"``, ``"random_offsets:50"``, ``"random_offsets:50:9"``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from ..radio.clock import ClockModel, OffsetClocks, SynchronizedClocks, random_offsets
from ..radio.faults import (
    CompositeFaults,
    CrashFaults,
    FaultModel,
    NoFaults,
    TransmissionDropFaults,
)

__all__ = [
    "FaultSpec",
    "ClockSpec",
    "normalize_fault_spec",
    "normalize_clock_spec",
    "fault_model_from_spec",
    "clock_model_from_spec",
    "spec_label",
]

#: A fault/clock spec as accepted by the API: ``None``, a canonical dict, or
#: the CLI string shorthand.
FaultSpec = Optional[Union[str, Dict[str, Any]]]
ClockSpec = Optional[Union[str, Dict[str, Any]]]


def _parse_fault_shorthand(text: str) -> Optional[Dict[str, Any]]:
    parts = text.split(":")
    kind = parts[0]
    if kind in ("none", ""):
        return None
    if kind == "drop":
        if len(parts) not in (2, 3):
            raise ValueError(f"drop fault shorthand is 'drop:PROB[:SEED]', got {text!r}")
        spec: Dict[str, Any] = {"kind": "drop", "prob": float(parts[1])}
        if len(parts) == 3:
            spec["seed"] = int(parts[2])
        return spec
    if kind == "crash":
        if len(parts) != 2 or not parts[1]:
            raise ValueError(f"crash fault shorthand is 'crash:NODE@ROUND,...', got {text!r}")
        schedule: Dict[str, int] = {}
        for entry in parts[1].split(","):
            node, _, rnd = entry.partition("@")
            try:
                schedule[str(int(node))] = int(rnd)
            except ValueError:
                raise ValueError(
                    f"bad crash entry {entry!r} in {text!r}: "
                    f"node and round must be integers"
                ) from None
        return {"kind": "crash", "schedule": schedule}
    raise ValueError(f"unknown fault spec {text!r}; known kinds: none, drop, crash")


def _parse_clock_shorthand(text: str) -> Optional[Dict[str, Any]]:
    parts = text.split(":")
    kind = parts[0]
    if kind in ("none", "sync", "synchronized", ""):
        return None
    if kind == "offset":
        if len(parts) != 2:
            raise ValueError(f"offset clock shorthand is 'offset:AMOUNT', got {text!r}")
        return {"kind": "offset", "offsets": {}, "default": int(parts[1])}
    if kind == "random_offsets":
        if len(parts) not in (2, 3):
            raise ValueError(
                f"random offsets shorthand is 'random_offsets:MAX[:SEED]', got {text!r}"
            )
        spec: Dict[str, Any] = {"kind": "random_offsets", "max_offset": int(parts[1])}
        if len(parts) == 3:
            spec["seed"] = int(parts[2])
        return spec
    raise ValueError(
        f"unknown clock spec {text!r}; known kinds: sync, offset, random_offsets"
    )


def _require(spec: Dict[str, Any], key: str, kind: str) -> Any:
    """Fetch a required spec field, failing with one clear message."""
    try:
        return spec[key]
    except KeyError:
        raise ValueError(
            f"{kind!r} spec is missing the required field {key!r}: {spec!r}"
        ) from None


def normalize_fault_spec(spec: FaultSpec) -> Optional[Dict[str, Any]]:
    """Reduce a fault spec to its canonical dict form (``None`` = no faults)."""
    if spec is None:
        return None
    if isinstance(spec, str):
        return _parse_fault_shorthand(spec)
    if not isinstance(spec, dict):
        raise TypeError(f"fault spec must be None, a string or a dict, got {spec!r}")
    kind = spec.get("kind")
    if kind in (None, "none"):
        return None
    if kind == "drop":
        out = {"kind": "drop", "prob": float(_require(spec, "prob", kind))}
        if "seed" in spec:
            out["seed"] = int(spec["seed"])
        return out
    if kind == "crash":
        raw_schedule = _require(spec, "schedule", kind)
        try:
            schedule = {str(int(k)): int(v) for k, v in dict(raw_schedule).items()}
        except (TypeError, ValueError):
            raise ValueError(
                f"crash schedule must map integer node ids to integer rounds, "
                f"got {raw_schedule!r}"
            ) from None
        return {"kind": "crash", "schedule": schedule}
    if kind == "composite":
        models = [normalize_fault_spec(m) for m in _require(spec, "models", kind)]
        return {"kind": "composite", "models": [m for m in models if m is not None]}
    raise ValueError(f"unknown fault spec kind {kind!r}")


def normalize_clock_spec(spec: ClockSpec) -> Optional[Dict[str, Any]]:
    """Reduce a clock spec to its canonical dict form (``None`` = synchronized)."""
    if spec is None:
        return None
    if isinstance(spec, str):
        return _parse_clock_shorthand(spec)
    if not isinstance(spec, dict):
        raise TypeError(f"clock spec must be None, a string or a dict, got {spec!r}")
    kind = spec.get("kind")
    if kind in (None, "none", "sync", "synchronized"):
        return None
    if kind == "offset":
        try:
            offsets = {
                str(int(k)): int(v) for k, v in dict(spec.get("offsets", {})).items()
            }
        except (TypeError, ValueError):
            raise ValueError(
                f"clock offsets must map integer node ids to integer offsets, "
                f"got {spec.get('offsets')!r}"
            ) from None
        return {
            "kind": "offset",
            "offsets": offsets,
            "default": int(spec.get("default", 0)),
        }
    if kind == "random_offsets":
        out = {"kind": "random_offsets",
               "max_offset": int(_require(spec, "max_offset", kind))}
        if "seed" in spec:
            out["seed"] = int(spec["seed"])
        return out
    raise ValueError(f"unknown clock spec kind {kind!r}")


def fault_model_from_spec(spec: FaultSpec) -> Optional[FaultModel]:
    """Materialize the :class:`FaultModel` a spec describes (``None`` for no faults)."""
    canonical = normalize_fault_spec(spec)
    if canonical is None:
        return None
    kind = canonical["kind"]
    if kind == "drop":
        return TransmissionDropFaults(canonical["prob"], seed=canonical.get("seed", 0))
    if kind == "crash":
        return CrashFaults({int(k): v for k, v in canonical["schedule"].items()})
    if kind == "composite":
        models = [fault_model_from_spec(m) for m in canonical["models"]]
        return CompositeFaults([m for m in models if m is not None])
    raise ValueError(f"unknown fault spec kind {kind!r}")  # pragma: no cover


def clock_model_from_spec(spec: ClockSpec, num_nodes: int) -> Optional[ClockModel]:
    """Materialize the :class:`ClockModel` a spec describes for an ``n``-node graph."""
    canonical = normalize_clock_spec(spec)
    if canonical is None:
        return None
    kind = canonical["kind"]
    if kind == "offset":
        offsets = {int(k): v for k, v in canonical["offsets"].items()}
        return OffsetClocks(offsets, default=canonical.get("default", 0))
    if kind == "random_offsets":
        return random_offsets(
            num_nodes, canonical["max_offset"], seed=canonical.get("seed", 0)
        )
    raise ValueError(f"unknown clock spec kind {kind!r}")  # pragma: no cover


def spec_label(spec: Union[FaultSpec, ClockSpec], *, default: str) -> str:
    """A short, stable human-readable tag for a spec (used in metric rows)."""
    if spec is None:
        return default
    if isinstance(spec, str):
        return spec or default
    kind = spec.get("kind", default)
    if kind == "drop":
        tag = f"drop:{spec['prob']:g}"
        return f"{tag}:{spec['seed']}" if "seed" in spec else tag
    if kind == "crash":
        entries = ",".join(
            f"{k}@{v}"
            for k, v in sorted(spec["schedule"].items(), key=lambda kv: int(kv[0]))
        )
        return f"crash:{entries}"
    if kind == "composite":
        return "+".join(spec_label(m, default=default) for m in spec["models"])
    if kind == "offset":
        return f"offset:{spec.get('default', 0)}"
    if kind == "random_offsets":
        tag = f"random_offsets:{spec['max_offset']}"
        return f"{tag}:{spec['seed']}" if "seed" in spec else tag
    return str(kind)

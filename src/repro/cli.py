"""Command-line interface: run the paper's pipeline without writing Python.

Installed as ``python -m repro`` (see :mod:`repro.__main__`).  Subcommands:

* ``label``      — compute λ / λ_ack / λ_arb for a graph and print the labels;
* ``broadcast``  — label and simulate one broadcast, print the outcome and the
  Figure-1 style rendering;
* ``figure1``    — print the Figure 1 reproduction;
* ``sweep``      — run a scheme/family sweep and print the comparison table.

Graphs are specified either as a generator expression ``family:n[:seed]``
(e.g. ``grid:25``, ``geometric:60:7``) or as a path to an edge-list file
produced by :func:`repro.graphs.save_edge_list`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .analysis import SweepConfig, format_metrics_table, run_sweep
from .backends import BACKEND_NAMES
from .core import (
    lambda_ack_scheme,
    lambda_arb_scheme,
    lambda_scheme,
    run_acknowledged_broadcast,
    run_arbitrary_source_broadcast,
    run_broadcast,
    verify_broadcast_outcome,
)
from .graphs import Graph, family_names, generate_family, load_edge_list
from .viz import figure1_report, render_labeled_layers, transmit_receive_maps

__all__ = ["main", "build_parser", "parse_graph_spec"]


def parse_graph_spec(spec: str) -> Graph:
    """Parse ``family:n[:seed]`` or an edge-list file path into a graph."""
    if Path(spec).exists():
        return load_edge_list(spec)
    parts = spec.split(":")
    if len(parts) not in (2, 3) or parts[0] not in family_names():
        raise argparse.ArgumentTypeError(
            f"graph spec {spec!r} is neither an existing file nor 'family:n[:seed]' "
            f"with family in {family_names()}"
        )
    n = int(parts[1])
    seed = int(parts[2]) if len(parts) == 3 else 0
    return generate_family(parts[0], n, seed)


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    label = sub.add_parser("label", help="compute a labeling scheme and print the labels")
    label.add_argument("graph", type=parse_graph_spec)
    label.add_argument("--scheme", choices=["lambda", "lambda_ack", "lambda_arb"],
                       default="lambda")
    label.add_argument("--source", type=int, default=0)

    bcast = sub.add_parser("broadcast", help="label a graph and simulate one broadcast")
    bcast.add_argument("graph", type=parse_graph_spec)
    bcast.add_argument("--scheme", choices=["lambda", "lambda_ack", "lambda_arb"],
                       default="lambda")
    bcast.add_argument("--source", type=int, default=0)
    bcast.add_argument("--payload", default="MSG")
    bcast.add_argument("--backend", choices=list(BACKEND_NAMES), default="reference",
                       help="simulation engine (vectorized = NumPy CSR kernels)")
    bcast.add_argument("--render", action="store_true",
                       help="print the Figure-1 style annotated layers")

    sub.add_parser("figure1", help="print the Figure 1 reproduction")

    sweep = sub.add_parser("sweep", help="run a scheme/family sweep and print the table")
    sweep.add_argument("--families", nargs="+", default=["path", "grid", "gnp_sparse"])
    sweep.add_argument("--sizes", nargs="+", type=int, default=[16, 32])
    sweep.add_argument("--schemes", nargs="+", default=["lambda", "round_robin"])
    sweep.add_argument("--seeds-per-size", type=int, default=1)
    sweep.add_argument("--backend", choices=list(BACKEND_NAMES), default="reference",
                       help="simulation engine (vectorized = NumPy CSR kernels)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep (results are "
                            "deterministic and independent of the job count)")
    sweep.add_argument("--trace-level", choices=["none", "summary", "full"],
                       default="summary",
                       help="trace recording level for each simulation")

    return parser


def _cmd_label(args) -> int:
    graph = args.graph
    if args.scheme == "lambda":
        lab = lambda_scheme(graph, args.source)
    elif args.scheme == "lambda_ack":
        lab = lambda_ack_scheme(graph, args.source)
    else:
        lab = lambda_arb_scheme(graph, coordinator=args.source)
    print(f"# scheme={lab.scheme} length={lab.length} bits "
          f"distinct={lab.num_distinct_labels()}")
    for v in graph.nodes():
        print(f"{v} {lab.labels[v]}")
    return 0


def _cmd_broadcast(args) -> int:
    graph = args.graph
    if args.scheme == "lambda":
        outcome = run_broadcast(graph, args.source, payload=args.payload,
                                backend=args.backend)
    elif args.scheme == "lambda_ack":
        outcome = run_acknowledged_broadcast(graph, args.source, payload=args.payload,
                                             backend=args.backend)
    else:
        outcome = run_arbitrary_source_broadcast(graph, true_source=args.source,
                                                 payload=args.payload,
                                                 backend=args.backend)
    print(f"graph: {graph.summary()}")
    print(f"scheme: {outcome.labeling.scheme} ({outcome.labeling.length} bits)")
    print(f"completion round: {outcome.completion_round} (bound {outcome.bound_broadcast})")
    if outcome.acknowledgement_round is not None:
        print(f"acknowledgement round: {outcome.acknowledgement_round}")
    if outcome.common_completion_round is not None:
        print(f"common completion round: {outcome.common_completion_round}")
    violations = verify_broadcast_outcome(graph, outcome)
    print(f"verification: {'PASS' if not violations else violations}")
    if args.render:
        tx, rx = transmit_receive_maps(outcome.trace)
        source = args.source if outcome.labeling.source is not None else (
            outcome.labeling.coordinator or 0
        )
        print(render_labeled_layers(graph, source, outcome.labeling.labels,
                                    transmit_rounds=tx, receive_rounds=rx))
    return 0 if not violations else 1


def _cmd_figure1(args) -> int:
    result = figure1_report()
    print(result.rendering)
    print(f"labels: {sorted(result.labeling.label_histogram().items())}")
    print(f"completion round: {result.completion_round}")
    return 0


def _cmd_sweep(args) -> int:
    cfg = SweepConfig(families=args.families, sizes=args.sizes, schemes=args.schemes,
                      seeds_per_size=args.seeds_per_size)
    rows = run_sweep(cfg, backend=args.backend, jobs=args.jobs,
                     trace_level=args.trace_level)
    print(format_metrics_table(rows, title="sweep results"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "label": _cmd_label,
        "broadcast": _cmd_broadcast,
        "figure1": _cmd_figure1,
        "sweep": _cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

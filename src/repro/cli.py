"""Command-line interface: run the paper's pipeline without writing Python.

Installed as ``python -m repro`` (see :mod:`repro.__main__`).  Subcommands:

* ``label``      — compute λ / λ_ack / λ_arb for a graph and print the labels;
* ``broadcast``  — label and simulate one broadcast, print the outcome and the
  Figure-1 style rendering;
* ``run``        — execute a declarative scenario JSON file with any
  registered scheme (``repro run scenario.json``);
* ``schemes``    — list the scheme registry (``--json`` for a machine-readable
  dump with backend coverage);
* ``figure1``    — print the Figure 1 reproduction;
* ``sweep``      — run a scheme/family grid (optionally with fault/clock
  axes and parallel workers) and print a table, JSON or CSV.  With
  ``--store DIR`` the sweep is an incremental session: completed cells land
  in a content-addressed result store as they finish, already-stored cells
  are never recomputed, and ``--resume`` picks an interrupted sweep up
  exactly where it died; ``--keep-going`` records failing cells as
  status rows instead of aborting;
* ``results``    — filter/export the rows of a result store directory;
* ``serve``      — run the sweep-as-a-service coordinator over a result
  store (``repro serve DIR --listen HOST:PORT``): submissions are expanded
  into content-addressed cells, cached cells are served from the store at
  in-memory latency, the rest fan out to connected workers;
* ``worker``     — join a coordinator as a compute worker
  (``repro worker HOST:PORT --backend ... --jobs N``);
* ``submit``     — submit a grid JSON file to a coordinator and stream the
  rows back (``repro submit grid.json --connect HOST:PORT``);
* ``query``      — stream stored rows from a coordinator by key or filters.

Graphs are specified either as a generator expression ``family:n[:seed]``
(e.g. ``grid:25``, ``geometric:60:7``) or as a path to an edge-list file
produced by :func:`repro.graphs.save_edge_list`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .analysis import (
    format_aggregate_table,
    format_metrics_table,
    metrics_from_run,
    metrics_to_csv,
    metrics_to_json,
)
from .analysis.report import aggregate_to_dicts
from .analysis.stream import (
    aggregate_result_set,
    filter_result_set,
    resolve_group_columns,
    status_matches,
    stream_aggregate,
)
from .api import (
    GridConfig,
    Scenario,
    get_scheme,
    graph_from_spec,
    normalize_clock_spec,
    normalize_fault_spec,
    run_grid,
    scheme_backend_coverage,
    scheme_names,
    spec_label,
)
from .api import run as run_scenario
from .backends import BACKEND_NAMES, BACKEND_SPECS, BackendError, jit_available, resolve_backend
from .store import ResultStore, StoreError, compact_store
from .core import (
    lambda_ack_scheme,
    lambda_arb_scheme,
    lambda_scheme,
    run_acknowledged_broadcast,
    run_arbitrary_source_broadcast,
    run_broadcast,
    verify_broadcast_outcome,
)
from .graphs import Graph
from .viz import figure1_report, render_labeled_layers, transmit_receive_maps

__all__ = ["main", "build_parser", "parse_graph_spec"]


def parse_graph_spec(spec: str) -> Graph:
    """Parse ``family:n[:seed]`` or an edge-list file path into a graph.

    Argparse-friendly wrapper over :func:`repro.api.graph_from_spec`: size and
    seed are validated up front (positive integer size, integer seed), so a
    malformed spec fails with one clear usage error instead of a traceback
    from inside a generator.
    """
    try:
        return graph_from_spec(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_fault_arg(text: str):
    """Argparse type for ``--faults``: validate the shorthand up front."""
    try:
        return normalize_fault_spec(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_clock_arg(text: str):
    """Argparse type for ``--clocks``: validate the shorthand up front."""
    try:
        return normalize_clock_spec(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_batch_size(text: str) -> int:
    """Argparse type for ``--batch-size``: a positive integer, checked up front."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"batch size must be an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"batch size must be >= 1, got {value}")
    return value


def _parse_backend_arg(text: str) -> str:
    """Argparse type for ``--backend``: any spec ``resolve_backend`` accepts.

    Plain ``choices=`` can't express the parameterized forms (``sharded:K``,
    ``ell:jit`` / ``ell:numpy``), so the spec is validated by actually
    resolving it — the error message lists every valid form.
    """
    try:
        resolve_backend(text)
    except BackendError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def _parse_shards(text: str) -> int:
    """Argparse type for ``--shards``: a positive integer, checked up front."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard count must be an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"shard count must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    label = sub.add_parser("label", help="compute a labeling scheme and print the labels")
    label.add_argument("graph", type=parse_graph_spec)
    label.add_argument("--scheme", choices=["lambda", "lambda_ack", "lambda_arb"],
                       default="lambda")
    label.add_argument("--source", type=int, default=0)

    bcast = sub.add_parser("broadcast", help="label a graph and simulate one broadcast")
    bcast.add_argument("graph", type=parse_graph_spec)
    bcast.add_argument("--scheme", choices=["lambda", "lambda_ack", "lambda_arb"],
                       default="lambda")
    bcast.add_argument("--source", type=int, default=0)
    bcast.add_argument("--payload", default="MSG")
    bcast.add_argument("--backend", type=_parse_backend_arg, metavar="SPEC",
                       default="reference",
                       help=f"simulation engine spec, one of: {', '.join(BACKEND_SPECS)} "
                            f"(vectorized = NumPy CSR kernels; ell = padded-adjacency "
                            f"kernels, JIT-compiled when numba is installed)")
    bcast.add_argument("--render", action="store_true",
                       help="print the Figure-1 style annotated layers")

    runp = sub.add_parser(
        "run", help="execute a declarative scenario JSON file (any registered scheme)"
    )
    runp.add_argument("scenario", help="path to a scenario JSON file (see repro.api.Scenario)")
    runp.add_argument("--scheme", default=None,
                      help="override the scenario's scheme (see `repro schemes`)")
    runp.add_argument("--backend", type=_parse_backend_arg, metavar="SPEC", default=None,
                      help=f"override the scenario's backend "
                           f"(one of: {', '.join(BACKEND_SPECS)})")
    runp.add_argument("--shards", type=_parse_shards, default=None,
                      help="segment worker count for the sharded backend "
                           "(implies --backend sharded)")
    runp.add_argument("--trace-level", choices=["none", "summary", "full"], default=None,
                      help="override the scenario's trace level")
    runp.add_argument("--output", choices=["text", "json"], default="text",
                      help="text summary or a machine-readable JSON metrics row")

    schemes = sub.add_parser("schemes", help="list the registered schemes")
    schemes.add_argument("--json", action="store_true",
                         help="emit the registry as JSON (name, kind, "
                              "description, native backend coverage) for "
                              "tooling that builds grids programmatically")

    sub.add_parser("figure1", help="print the Figure 1 reproduction")

    sweep = sub.add_parser(
        "sweep",
        help="run a scheme/family grid (with optional fault/clock axes) "
             "and print a table, JSON or CSV",
    )
    sweep.add_argument("--families", nargs="+", default=["path", "grid", "gnp_sparse"])
    sweep.add_argument("--sizes", nargs="+", type=int, default=[16, 32])
    sweep.add_argument("--schemes", nargs="+", default=["lambda", "round_robin"],
                       help=f"registered scheme names: {scheme_names()}")
    sweep.add_argument("--seeds-per-size", type=int, default=1)
    sweep.add_argument("--source-rule", choices=["zero", "last", "center-ish"],
                       default="zero")
    sweep.add_argument("--base-seed", type=int, default=2019)
    sweep.add_argument("--faults", nargs="+", type=_parse_fault_arg, default=["none"],
                       help="fault-model axis, e.g. none drop:0.1:7 crash:3@5")
    sweep.add_argument("--clocks", nargs="+", type=_parse_clock_arg, default=["sync"],
                       help="clock-model axis, e.g. sync offset:3 random_offsets:50:9")
    sweep.add_argument("--payload", default="MSG")
    sweep.add_argument("--backend", type=_parse_backend_arg, metavar="SPEC", default=None,
                       help=f"simulation engine spec, one of: {', '.join(BACKEND_SPECS)} "
                            f"(vectorized = NumPy CSR kernels; batched = stacked "
                            f"multi-instance kernels; sharded = one large instance "
                            f"split across processes; ell = padded-adjacency kernels, "
                            f"JIT-compiled when numba is installed); defaults to "
                            f"reference, or to batched when --batch-size is set, or "
                            f"to sharded when --shards is set")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep (results are "
                            "deterministic and independent of the job count)")
    sweep.add_argument("--batch-size", type=_parse_batch_size, default=None,
                       help="stack this many compatible runs into one kernel "
                            "invocation (implies the batching path; "
                            "--backend batched batches by default)")
    sweep.add_argument("--shards", type=_parse_shards, default=None,
                       help="segment worker count for the sharded backend "
                            "(implies --backend sharded; results and store "
                            "keys are independent of the shard count)")
    sweep.add_argument("--trace-level", choices=["none", "summary", "full"],
                       default="summary",
                       help="trace recording level for each simulation")
    sweep.add_argument("--output", choices=["table", "json", "csv"], default="table",
                       help="output format for the metric rows")
    sweep.add_argument("--store", metavar="DIR", default=None,
                       help="content-addressed result store: completed cells "
                            "are appended as they finish and already-stored "
                            "cells are served from disk, so re-running the "
                            "same sweep is incremental by construction")
    sweep.add_argument("--resume", action="store_true",
                       help="resume an interrupted sweep: requires --store "
                            "and an existing store directory (a typo'd path "
                            "fails instead of silently starting cold)")
    sweep.add_argument("--keep-going", action="store_true",
                       help="record failing cells as rows with an "
                            "'error:...' status column instead of aborting "
                            "the whole sweep (exit code 1 if any cell failed)")
    sweep.add_argument("--retries", type=int, default=0,
                       help="extra attempts for transiently failing cells "
                            "and for chunks lost to a died pool worker "
                            "process before the failure counts (default 0; "
                            "service workers default to 1)")
    sweep.add_argument("--progress", action="store_true",
                       help="print per-chunk progress to stderr while the "
                            "sweep runs")

    results = sub.add_parser(
        "results",
        help="filter/export the rows of a result store directory "
             "(see sweep --store)",
    )
    results.add_argument("store", metavar="DIR", help="result store directory")
    results.add_argument("--schemes", nargs="+", default=None,
                         help="keep only these schemes")
    results.add_argument("--families", nargs="+", default=None,
                         help="keep only these graph families")
    results.add_argument("--sizes", nargs="+", type=int, default=None,
                         help="keep only these graph sizes")
    results.add_argument("--status", default=None,
                         help="keep only rows with this status (e.g. ok, a "
                              "full error:... tag, or the bare class "
                              "'error' matching every error:... row)")
    results.add_argument("--agg", metavar="COLUMN", default=None,
                         help="aggregate this numeric column instead of "
                              "printing rows (count/mean/std/min/p05/median/"
                              "p95/max; aliases: rounds, acks, bits)")
    results.add_argument("--by", metavar="COLUMNS", default=None,
                         help="comma-separated grouping columns for --agg "
                              "(e.g. scheme,n)")
    results.add_argument("--ci", action="store_true",
                         help="add a seeded bootstrap 95%% confidence "
                              "interval of the mean to --agg output")
    results.add_argument("--stream", action="store_true",
                         help="aggregate in one streaming pass over the "
                              "store (O(groups) memory) instead of the "
                              "columnar path; same numbers")
    results.add_argument("--output", choices=["table", "json", "csv", "jsonl"],
                         default="table", help="output format for the rows")

    store = sub.add_parser(
        "store",
        help="maintain a result store directory (compact segments, "
             "inspect counters)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    compact = store_sub.add_parser(
        "compact",
        help="garbage-collect the store in place: drop duplicate-key, "
             "retired-schema and torn-tail lines, rewrite segments "
             "atomically and refresh the offset indexes",
    )
    compact.add_argument("store", metavar="DIR", help="result store directory")
    compact.add_argument("--format", choices=["jsonl", "columnar"],
                         default="jsonl",
                         help="on-disk format compaction leaves behind: "
                              "jsonl (default; expands columnar segments "
                              "back to lines) or columnar (binary column "
                              "blocks for mmap-lazy analytics; appends "
                              "still land in JSONL beside them)")
    describe = store_sub.add_parser(
        "describe",
        help="print the store's summary counters as JSON (rows, segments, "
             "skipped/stale lines, lines parsed by this open)",
    )
    describe.add_argument("store", metavar="DIR", help="result store directory")

    serve = sub.add_parser(
        "serve",
        help="run the sweep coordinator: serve cached rows from a result "
             "store and fan uncached cells out to connected workers",
    )
    serve.add_argument("store", metavar="DIR",
                       help="result store directory (created if missing); "
                            "the coordinator is its single writer")
    serve.add_argument("--listen", metavar="HOST:PORT", default="127.0.0.1:0",
                       help="bind address (port 0 picks a free port; the "
                            "bound address is printed to stderr)")
    serve.add_argument("--lease-seconds", type=float, default=120.0,
                       help="how long a dispatched cell may stay unanswered "
                            "before it is re-queued to another worker")
    serve.add_argument("--heartbeat-grace", type=float, default=45.0,
                       help="drop a worker silent for longer than this "
                            "(its leased cells are re-queued)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="total tries a cell gets across re-queues "
                            "before it is reported failed")

    worker = sub.add_parser(
        "worker",
        help="join a coordinator as a compute worker: rematerialize cells "
             "from their specs and ship (key, row) docs back",
    )
    worker.add_argument("connect", metavar="HOST:PORT",
                        help="coordinator address (as printed by repro serve)")
    worker.add_argument("--backend", type=_parse_backend_arg, metavar="SPEC",
                        default=None,
                        help=f"run every cell on this engine (one of: "
                             f"{', '.join(BACKEND_SPECS)}); default: whatever "
                             f"each submission requests (execution only — "
                             f"store keys come from the submission)")
    worker.add_argument("--jobs", type=int, default=1,
                        help="cells this worker runs concurrently "
                             "(a process pool; also its advertised slots)")
    worker.add_argument("--retries", type=int, default=1,
                        help="per-cell retry for transient failures before "
                             "an error row is returned (default 1)")
    worker.add_argument("--name", default="",
                        help="worker name shown in coordinator diagnostics")

    submit = sub.add_parser(
        "submit",
        help="submit a grid JSON file to a coordinator and stream the rows "
             "back (cached cells never recompute)",
    )
    submit.add_argument("grid", metavar="GRID_JSON",
                        help="path to a JSON object of GridConfig fields "
                             "(families, sizes, schemes, faults, clocks, ...)")
    submit.add_argument("--connect", metavar="HOST:PORT", required=True,
                        help="coordinator address")
    submit.add_argument("--backend", type=_parse_backend_arg, metavar="SPEC",
                        default=None,
                        help="requested engine (part of the store key, like "
                             "a local sweep's --backend)")
    submit.add_argument("--trace-level", choices=["none", "summary", "full"],
                        default="summary")
    submit.add_argument("--keep-going", action="store_true",
                        help="accept error-status rows for cells that "
                             "failed every attempt instead of aborting")
    submit.add_argument("--output", choices=["table", "json", "csv"],
                        default="table")

    query = sub.add_parser(
        "query",
        help="stream stored rows from a coordinator by key or filters "
             "(the remote counterpart of `repro results`)",
    )
    query.add_argument("--connect", metavar="HOST:PORT", required=True,
                       help="coordinator address")
    query.add_argument("--key", default=None,
                       help="exact content-addressed row key (O(1) lookup)")
    query.add_argument("--schemes", nargs="+", default=None)
    query.add_argument("--families", nargs="+", default=None)
    query.add_argument("--sizes", nargs="+", type=int, default=None)
    query.add_argument("--status", default=None,
                       help="filter by status (a bare 'error' matches every "
                            "error:... tag)")
    query.add_argument("--agg", metavar="COLUMN", default=None,
                       help="ask the coordinator for per-group statistics "
                            "of this column instead of streaming rows "
                            "(aliases: rounds, acks, bits)")
    query.add_argument("--by", metavar="COLUMNS", default=None,
                       help="comma-separated grouping columns for --agg "
                            "(e.g. scheme,n)")
    query.add_argument("--ci", action="store_true",
                       help="add a bootstrap 95%% confidence interval to "
                            "--agg output")
    query.add_argument("--output", choices=["table", "json", "csv", "jsonl"],
                       default="table")

    return parser


def _cmd_label(args) -> int:
    graph = args.graph
    if args.scheme == "lambda":
        lab = lambda_scheme(graph, args.source)
    elif args.scheme == "lambda_ack":
        lab = lambda_ack_scheme(graph, args.source)
    else:
        lab = lambda_arb_scheme(graph, coordinator=args.source)
    print(f"# scheme={lab.scheme} length={lab.length} bits "
          f"distinct={lab.num_distinct_labels()}")
    for v in graph.nodes():
        print(f"{v} {lab.labels[v]}")
    return 0


def _cmd_broadcast(args) -> int:
    graph = args.graph
    if args.scheme == "lambda":
        outcome = run_broadcast(graph, args.source, payload=args.payload,
                                backend=args.backend)
    elif args.scheme == "lambda_ack":
        outcome = run_acknowledged_broadcast(graph, args.source, payload=args.payload,
                                             backend=args.backend)
    else:
        outcome = run_arbitrary_source_broadcast(graph, true_source=args.source,
                                                 payload=args.payload,
                                                 backend=args.backend)
    print(f"graph: {graph.summary()}")
    print(f"scheme: {outcome.scheme} ({outcome.label_bits} bits)")
    print(f"completion round: {outcome.completion_round} (bound {outcome.bound_broadcast})")
    if outcome.acknowledgement_round is not None:
        print(f"acknowledgement round: {outcome.acknowledgement_round}")
    if outcome.common_completion_round is not None:
        print(f"common completion round: {outcome.common_completion_round}")
    violations = verify_broadcast_outcome(graph, outcome)
    print(f"verification: {'PASS' if not violations else violations}")
    if args.render:
        tx, rx = transmit_receive_maps(outcome.trace)
        source = args.source if outcome.labeling.source is not None else (
            outcome.labeling.coordinator or 0
        )
        print(render_labeled_layers(graph, source, outcome.labeling.labels,
                                    transmit_rounds=tx, receive_rounds=rx))
    return 0 if not violations else 1


def _cmd_run(args) -> int:
    scenario = Scenario.load(args.scenario)
    graph = scenario.materialize_graph()
    source = scenario.resolve_source(graph)
    backend = args.backend
    if args.shards is not None:
        # Validate against whichever backend would actually apply — the flag
        # or, when no flag overrides it, the scenario file's own declaration —
        # mirroring Scenario(shards=...)'s constructor check.
        effective = backend if backend is not None else scenario.backend
        if effective not in (None, "sharded"):
            print(f"error: --shards requires the sharded backend, but the "
                  f"{'--backend flag' if backend is not None else 'scenario'} "
                  f"selects {effective!r}", file=sys.stderr)
            return 2
        backend = f"sharded:{args.shards}"
    outcome = run_scenario(scenario, scheme=args.scheme, backend=backend,
                           trace_level=args.trace_level, graph=graph, source=source)
    if args.output == "json":
        row = metrics_from_run(
            graph, outcome, family=scenario.family, source=source,
            fault=spec_label(scenario.faults, default="none"),
            clock=spec_label(scenario.clock, default="sync"),
        )
        print(metrics_to_json([row]))
    else:
        print(f"scenario: {args.scenario}")
        print(f"graph: {graph.summary()}")
        print(f"scheme: {outcome.scheme} ({outcome.label_bits} bits, "
              f"{outcome.distinct_labels} distinct labels)")
        print(f"source: {source}  payload: {scenario.payload!r}")
        if scenario.faults is not None:
            print(f"faults: {scenario.faults}")
        if scenario.clock is not None:
            print(f"clock: {scenario.clock}")
        bound = f" (bound {outcome.bound_broadcast})" if outcome.bound_broadcast else ""
        print(f"completion round: {outcome.completion_round}{bound}")
        if outcome.acknowledgement_round is not None:
            print(f"acknowledgement round: {outcome.acknowledgement_round}")
        if outcome.common_completion_round is not None:
            print(f"common completion round: {outcome.common_completion_round}")
        print(f"transmissions: {outcome.total_transmissions}, "
              f"collisions: {outcome.total_collisions}")
        print(f"status: {'COMPLETED' if outcome.completed else 'INCOMPLETE'}")
    return 0 if outcome.completed else 1


def _cmd_schemes(args) -> int:
    if getattr(args, "json", False):
        doc = {
            "schemes": [
                {
                    "name": name,
                    "kind": get_scheme(name).kind,
                    "description": get_scheme(name).description,
                    "backends": scheme_backend_coverage(name),
                }
                for name in scheme_names()
            ],
            "backends": {
                "names": list(BACKEND_NAMES),
                "specs": list(BACKEND_SPECS),
                # Whether `--backend ell` selects the numba JIT tier on this
                # machine (False: the ELL backend runs its NumPy kernels).
                "ell_jit_available": jit_available(),
            },
        }
        print(json.dumps(doc, indent=2))
        return 0
    for name in scheme_names():
        scheme = get_scheme(name)
        print(f"{name:20s} [{scheme.kind:8s}] {scheme.description}")
    return 0


def _cmd_figure1(args) -> int:
    result = figure1_report()
    print(result.rendering)
    print(f"labels: {sorted(result.labeling.label_histogram().items())}")
    print(f"completion round: {result.completion_round}")
    return 0


def sweep_backend(
    backend: Optional[str],
    batch_size: Optional[int],
    shards: Optional[int] = None,
) -> str:
    """The sweep's effective backend: explicit choice wins; ``--shards``
    alone selects the sharded engine and ``--batch-size`` alone the batched
    one (a reference-backend batch would stack nothing, silently
    contradicting the flag); otherwise the reference default."""
    if shards is not None:
        if backend not in (None, "sharded"):
            raise argparse.ArgumentTypeError(
                f"--shards requires --backend sharded (or unset), got {backend!r}"
            )
        return f"sharded:{shards}"
    if backend is not None:
        return backend
    return "batched" if batch_size is not None else "reference"


def _cmd_sweep(args) -> int:
    cfg = GridConfig(
        families=args.families,
        sizes=args.sizes,
        seeds_per_size=args.seeds_per_size,
        schemes=args.schemes,
        source_rule=args.source_rule,
        base_seed=args.base_seed,
        faults=args.faults,
        clocks=args.clocks,
        payload=args.payload,
    )
    if args.resume and not args.store:
        print("error: --resume requires --store DIR", file=sys.stderr)
        return 2
    store = None
    if args.store:
        try:
            store = ResultStore.open(args.store, require_existing=args.resume)
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    last_progress = {}

    def on_chunk(progress) -> None:
        last_progress["snapshot"] = progress
        if args.progress:
            print(
                f"[sweep] rows {progress.done_rows}/{progress.total_rows} "
                f"(cached {progress.cached_rows}, computed "
                f"{progress.computed_rows}, failed {progress.failed_rows}) "
                f"chunks {progress.completed_chunks}/{progress.total_chunks}",
                file=sys.stderr,
            )

    try:
        backend = sweep_backend(args.backend, args.batch_size, args.shards)
    except argparse.ArgumentTypeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        rows = run_grid(cfg, backend=backend,
                        jobs=args.jobs, trace_level=args.trace_level,
                        batch_size=args.batch_size, store=store,
                        strict=not args.keep_going, retries=args.retries,
                        on_chunk=on_chunk)
    finally:
        if store is not None:
            store.close()
    if args.output == "json":
        print(metrics_to_json(rows))
    elif args.output == "csv":
        print(metrics_to_csv(rows), end="")
    else:
        print(format_metrics_table(rows, title="sweep results"))
    if store is not None:
        progress = last_progress["snapshot"]
        print(
            f"[store] path={args.store} total={progress.total_rows} "
            f"cached={progress.cached_rows} computed={progress.computed_rows} "
            f"failed={progress.failed_rows}",
            file=sys.stderr,
        )
    failed = sum(1 for r in rows if r.status != "ok")
    return 1 if failed else 0


def _cmd_results(args) -> int:
    try:
        store = ResultStore.open(args.store, require_existing=True)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return _emit_results(args, store)
    finally:
        store.close()


def _iter_filtered_row_dicts(store: ResultStore, args):
    """Stream matching row dicts off the store, one at a time."""
    schemes = set(args.schemes) if args.schemes else None
    families = set(args.families) if args.families else None
    sizes = set(args.sizes) if args.sizes else None
    for doc in store.iter_docs():
        row = doc["row"]
        if schemes and row.get("scheme") not in schemes:
            continue
        if families and row.get("family") not in families:
            continue
        if sizes and row.get("n") not in sizes:
            continue
        if args.status and not status_matches(row.get("status", ""), args.status):
            continue
        yield row


def _emit_aggregate(groups, *, column: str, output: str, title: str) -> None:
    """Render aggregate groups in any CLI output format.

    Every format flattens through :func:`aggregate_to_dicts`, so the local
    and service aggregate paths print identical documents.
    """
    rows = aggregate_to_dicts(groups)
    if output == "json":
        print(json.dumps(rows, indent=2))
    elif output == "jsonl":
        for row in rows:
            print(json.dumps(row, sort_keys=True, separators=(",", ":")))
    elif output == "csv":
        import csv as _csv
        import io as _io

        buffer = _io.StringIO()
        fieldnames = list(rows[0].keys()) if rows else ["count"]
        writer = _csv.DictWriter(buffer, fieldnames=fieldnames,
                                 lineterminator="\n")
        writer.writeheader()
        writer.writerows(rows)
        print(buffer.getvalue(), end="")
    else:
        print(format_aggregate_table(groups, column=column, title=title))


def _emit_results(args, store: ResultStore) -> int:
    if args.agg:
        try:
            by = resolve_group_columns(args.by)
            if args.stream:
                groups = stream_aggregate(
                    _iter_filtered_row_dicts(store, args), args.agg, by,
                    ci=args.ci)
            else:
                rows = filter_result_set(
                    store.rows(), schemes=args.schemes, families=args.families,
                    sizes=args.sizes, status=args.status)
                groups = aggregate_result_set(rows, args.agg, by, ci=args.ci)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        _emit_aggregate(groups, column=args.agg, output=args.output,
                        title=f"{args.store}: aggregate of {args.agg}")
        return 0
    unfiltered = not (args.schemes or args.families or args.sizes or args.status)
    if args.output == "jsonl" and unfiltered:
        # The line-oriented export needs no columnar staging: stream one row
        # at a time straight off the offset index, whatever the store size.
        for _, metrics in store.iter_items():
            print(json.dumps(metrics.as_dict(), sort_keys=True,
                             separators=(",", ":")))
        return 0
    total = len(store)
    # Column-vectorized filtering: against a columnar-compacted store only
    # the filter columns are read until an output path touches the rest.
    rows = filter_result_set(store.rows(), schemes=args.schemes,
                             families=args.families, sizes=args.sizes,
                             status=args.status)
    if args.output == "json":
        print(rows.to_json())
    elif args.output == "csv":
        print(rows.to_csv(), end="")
    elif args.output == "jsonl":
        print(rows.to_jsonl(), end="")
    else:
        print(format_metrics_table(
            rows, title=f"{args.store}: {len(rows)}/{total} rows"))
    return 0


def _cmd_store(args) -> int:
    try:
        if args.store_command == "compact":
            stats = compact_store(args.store, format=args.format)
            print(json.dumps(stats, indent=2))
            dropped = (stats["duplicates_dropped"] + stats["stale_dropped"]
                       + stats["junk_dropped"])
            print(
                f"[compact] {args.store}: kept {stats['rows_kept']} rows, "
                f"dropped {dropped} lines, "
                f"{stats['bytes_before']} -> {stats['bytes_after']} bytes",
                file=sys.stderr,
            )
        else:
            with ResultStore.open(args.store, require_existing=True) as store:
                print(json.dumps(store.describe(), indent=2))
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .service import Coordinator
    from .service.protocol import parse_address

    try:
        host, port = parse_address(args.listen)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        store = ResultStore.open(args.store, require_existing=False)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        coordinator = Coordinator(
            store, host=host, port=port,
            lease_seconds=args.lease_seconds,
            heartbeat_grace=args.heartbeat_grace,
            max_attempts=args.max_attempts,
        )
        await coordinator.start()
        print(f"[serve] store={args.store} rows={len(store)} "
              f"listening on {coordinator.address}",
              file=sys.stderr, flush=True)
        try:
            await coordinator.serve_forever()
        finally:
            await coordinator.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("[serve] interrupted", file=sys.stderr)
    finally:
        store.close()
    return 0


def _cmd_worker(args) -> int:
    import asyncio

    from .service import ProtocolError, Worker

    worker = Worker(args.connect, backend=args.backend, jobs=args.jobs,
                    retries=args.retries, pool="process", name=args.name)
    print(f"[worker] connecting to {args.connect} jobs={args.jobs} "
          f"backend={args.backend or 'per-submission'}",
          file=sys.stderr, flush=True)
    try:
        asyncio.run(worker.run())
    except KeyboardInterrupt:
        pass
    except (ConnectionError, OSError, ProtocolError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"[worker] done after {worker.cells_run} cells", file=sys.stderr)
    return 0


def _cmd_submit(args) -> int:
    from .service import ProtocolError, ServiceClient, ServiceError

    try:
        with open(args.grid) as handle:
            doc = json.load(handle)
        if not isinstance(doc, dict):
            raise ValueError("grid file must hold one JSON object of "
                             "GridConfig fields")
        cfg = GridConfig(**doc)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: invalid grid file {args.grid}: {exc}", file=sys.stderr)
        return 2
    try:
        with ServiceClient(args.connect) as client:
            rows = client.submit(cfg, backend=args.backend,
                                 trace_level=args.trace_level,
                                 strict=not args.keep_going)
            summary = client.last_summary
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach coordinator at {args.connect}: {exc}",
              file=sys.stderr)
        return 2
    except (ServiceError, ProtocolError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.output == "json":
        print(metrics_to_json(rows))
    elif args.output == "csv":
        print(metrics_to_csv(rows), end="")
    else:
        print(format_metrics_table(rows, title=f"submit {args.grid}"))
    print(f"[service] connect={args.connect} total={summary['total']} "
          f"cached={summary['cached']} computed={summary['computed']} "
          f"failed={summary['failed']}", file=sys.stderr)
    return 1 if summary["failed"] else 0


def _cmd_query(args) -> int:
    from .service import ProtocolError, ServiceClient, ServiceError

    try:
        with ServiceClient(args.connect) as client:
            if args.agg:
                groups = client.aggregate(
                    args.agg, by=resolve_group_columns(args.by),
                    schemes=args.schemes, families=args.families,
                    sizes=args.sizes, status=args.status, ci=args.ci)
                _emit_aggregate(
                    groups, column=args.agg, output=args.output,
                    title=f"{args.connect}: aggregate of {args.agg}")
                return 0
            rows = client.query(key=args.key, schemes=args.schemes,
                                families=args.families, sizes=args.sizes,
                                status=args.status)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach coordinator at {args.connect}: {exc}",
              file=sys.stderr)
        return 2
    except (ServiceError, ProtocolError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.output == "json":
        print(rows.to_json())
    elif args.output == "csv":
        print(rows.to_csv(), end="")
    elif args.output == "jsonl":
        print(rows.to_jsonl(), end="")
    else:
        print(format_metrics_table(
            rows, title=f"{args.connect}: {len(rows)} rows"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "label": _cmd_label,
        "broadcast": _cmd_broadcast,
        "run": _cmd_run,
        "schemes": _cmd_schemes,
        "figure1": _cmd_figure1,
        "sweep": _cmd_sweep,
        "results": _cmd_results,
        "store": _cmd_store,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "submit": _cmd_submit,
        "query": _cmd_query,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Tests for the batched parallel sweep executor and sweep determinism."""

from __future__ import annotations

import pytest

from repro.analysis import (
    SweepConfig,
    chunk_specs,
    generate_instances,
    instance_seed,
    instance_specs,
    run_sweep,
    run_sweep_parallel,
)

CFG = SweepConfig(
    families=["path", "grid", "gnp_sparse"],
    sizes=[9, 16],
    seeds_per_size=2,
    schemes=["lambda", "round_robin"],
)


class TestSeedDeterminism:
    def test_instance_seed_is_stable(self):
        # CRC-based family hashing: the same cell always derives the same
        # seed, in this process and in any worker process.
        assert instance_seed(2019, "path", 16, 0) == instance_seed(2019, "path", 16, 0)
        assert instance_seed(2019, "path", 16, 0) != instance_seed(2019, "grid", 16, 0)
        assert instance_seed(2019, "path", 16, 0) != instance_seed(2019, "path", 16, 1)
        assert instance_seed(2019, "path", 16, 0) != instance_seed(7, "path", 16, 0)

    def test_specs_cover_the_grid_in_order(self):
        specs = instance_specs(CFG)
        assert len(specs) == 3 * 2 * 2
        assert specs[0] == ("path", 9, 0)
        assert specs[-1] == ("gnp_sparse", 16, 1)

    def test_generated_instances_match_specs(self):
        instances = generate_instances(CFG)
        for (family, size, rep), inst in zip(instance_specs(CFG), instances):
            assert inst.family == family
            assert inst.seed == instance_seed(CFG.base_seed, family, size, rep)


class TestChunking:
    def test_chunks_are_contiguous_and_exhaustive(self):
        specs = instance_specs(CFG)
        chunks = chunk_specs(specs, 5)
        assert [s for chunk in chunks for s in chunk] == specs
        assert all(len(c) <= 5 for c in chunks)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError):
            chunk_specs(instance_specs(CFG), 0)


class TestParallelSweep:
    def test_parallel_rows_equal_serial_rows(self):
        serial = run_sweep(CFG)
        parallel = run_sweep_parallel(CFG, jobs=2)
        assert parallel == serial  # RunMetrics are frozen dataclasses

    def test_rows_independent_of_job_count_and_chunking(self):
        one = run_sweep_parallel(CFG, jobs=1)
        three = run_sweep_parallel(CFG, jobs=3, chunk_size=1)
        assert one == three

    def test_run_sweep_jobs_dispatches_to_executor(self):
        assert run_sweep(CFG, jobs=2) == run_sweep(CFG, jobs=1)

    def test_parallel_sweep_with_vectorized_backend(self):
        ref = run_sweep(CFG, backend="reference")
        vec = run_sweep_parallel(CFG, jobs=2, backend="vectorized")
        assert vec == ref

    def test_backend_instances_are_reduced_to_names(self):
        from repro.backends import VectorizedBackend

        rows = run_sweep_parallel(CFG, jobs=2, backend=VectorizedBackend())
        assert rows == run_sweep(CFG, backend="vectorized")

    def test_unregistered_backend_instances_rejected(self):
        from repro.backends import BackendResult, SimulationBackend

        class CustomBackend(SimulationBackend):
            name = "custom-xyz"

            def run_task(self, task):  # pragma: no cover - never reached
                raise NotImplementedError

        with pytest.raises(ValueError, match="registered backend name"):
            run_sweep_parallel(CFG, jobs=2, backend=CustomBackend())

    def test_empty_grid_returns_no_rows(self):
        cfg = SweepConfig(families=[], sizes=[], schemes=["lambda"])
        assert run_sweep_parallel(cfg, jobs=2) == []

    def test_unknown_scheme_rejected(self):
        cfg = SweepConfig(families=["path"], sizes=[6], schemes=["nope"])
        with pytest.raises(ValueError):
            run_sweep_parallel(cfg, jobs=2)

"""Equivalence suite: the vectorized backend must match the reference engine.

The vectorized CSR kernels re-implement the decision rules of B, B_ack, B_arb
and the round-robin / TDMA baselines as array operations.  These tests pin
them to the faithful object engine **bit for bit** on a grid of graph families
× sizes × seeds: identical completion and acknowledgement rounds, identical
transmission / collision / reception counts, identical message-bit totals and
kind histograms — and, on a subset, identical full-trace JSON (every message
of every round, stamps and payloads included).
"""

from __future__ import annotations

import pytest

from repro.backends import (
    BackendError,
    ReferenceBackend,
    SimulationTask,
    VectorizedBackend,
    resolve_backend,
)
from repro.baselines import (
    run_centralized_schedule,
    run_coloring_tdma,
    run_round_robin,
)
from repro.core import (
    run_acknowledged_broadcast,
    run_arbitrary_source_broadcast,
    run_broadcast,
)
from repro.core.labeling import lambda_ack_scheme, lambda_arb_scheme, lambda_scheme
from repro.graphs import generate_family

# The equivalence grid: families × sizes, with per-(family, size) seeds.
FAMILIES = ["path", "cycle", "star", "grid", "gnp_sparse", "geometric"]
SIZES = [9, 16, 25]
SEEDS = [1, 7]

GRID = [
    (family, size, seed)
    for family in FAMILIES
    for size in SIZES
    for seed in SEEDS[: (2 if family in ("gnp_sparse", "geometric") else 1)]
]
GRID_IDS = [f"{f}-{n}-s{s}" for f, n, s in GRID]

#: Byte-level trace-equality cases for the centralized-schedule kernel.
CENTRALIZED_FULL_CASES = [("path", 16, 1), ("grid", 16, 1), ("gnp_sparse", 25, 7)]


def _instance(family: str, size: int, seed: int):
    graph = generate_family(family, size, seed)
    source = seed % graph.n
    return graph, source


def _trace_fingerprint(trace):
    return {
        "rounds": trace.num_rounds,
        "transmissions": trace.total_transmissions(),
        "receptions": trace.total_receptions(),
        "collisions": trace.total_collisions(),
        "kinds": trace.transmissions_by_kind(),
        "bits": trace.total_message_bits(),
    }


def _outcome_fingerprint(outcome):
    return {
        "completion": outcome.completion_round,
        "ack": outcome.acknowledgement_round,
        "common": outcome.common_completion_round,
        "stop_round": outcome.simulation.stop_round,
        "stop_reason": outcome.simulation.stop_reason,
        **_trace_fingerprint(outcome.trace),
    }


def _baseline_fingerprint(outcome):
    return {
        "completion": outcome.completion_round,
        "stop_round": outcome.simulation.stop_round,
        "stop_reason": outcome.simulation.stop_reason,
        **_trace_fingerprint(outcome.simulation.trace),
    }


class TestLabeledProtocolEquivalence:
    @pytest.mark.parametrize("family,size,seed", GRID, ids=GRID_IDS)
    def test_broadcast_identical(self, family, size, seed):
        graph, source = _instance(family, size, seed)
        labeling = lambda_scheme(graph, source)
        ref = run_broadcast(graph, source, labeling=labeling,
                            backend="reference", trace_level="summary")
        vec = run_broadcast(graph, source, labeling=labeling,
                            backend="vectorized", trace_level="summary")
        assert _outcome_fingerprint(vec) == _outcome_fingerprint(ref)
        assert ref.completed and vec.completed

    @pytest.mark.parametrize("family,size,seed", GRID, ids=GRID_IDS)
    def test_acknowledged_identical(self, family, size, seed):
        graph, source = _instance(family, size, seed)
        labeling = lambda_ack_scheme(graph, source)
        ref = run_acknowledged_broadcast(graph, source, labeling=labeling,
                                         backend="reference", trace_level="summary")
        vec = run_acknowledged_broadcast(graph, source, labeling=labeling,
                                         backend="vectorized", trace_level="summary")
        assert _outcome_fingerprint(vec) == _outcome_fingerprint(ref)
        assert ref.acknowledgement_round is not None
        assert vec.acknowledgement_round == ref.acknowledgement_round

    @pytest.mark.parametrize("family,size,seed", GRID, ids=GRID_IDS)
    def test_arbitrary_identical(self, family, size, seed):
        graph, source = _instance(family, size, seed)
        coordinator = (source + 1) % graph.n
        labeling = lambda_arb_scheme(graph, coordinator=coordinator)
        ref = run_arbitrary_source_broadcast(
            graph, true_source=source, labeling=labeling,
            backend="reference", trace_level="summary",
        )
        vec = run_arbitrary_source_broadcast(
            graph, true_source=source, labeling=labeling,
            backend="vectorized", trace_level="summary",
        )
        assert _outcome_fingerprint(vec) == _outcome_fingerprint(ref)


class TestBaselineEquivalence:
    @pytest.mark.parametrize("family,size,seed", GRID, ids=GRID_IDS)
    def test_round_robin_identical(self, family, size, seed):
        graph, source = _instance(family, size, seed)
        ref = run_round_robin(graph, source, backend="reference", trace_level="summary")
        vec = run_round_robin(graph, source, backend="vectorized", trace_level="summary")
        assert _baseline_fingerprint(vec) == _baseline_fingerprint(ref)

    @pytest.mark.parametrize("family,size,seed", GRID, ids=GRID_IDS)
    def test_coloring_tdma_identical(self, family, size, seed):
        graph, source = _instance(family, size, seed)
        ref = run_coloring_tdma(graph, source, backend="reference", trace_level="summary")
        vec = run_coloring_tdma(graph, source, backend="vectorized", trace_level="summary")
        assert _baseline_fingerprint(vec) == _baseline_fingerprint(ref)

    @pytest.mark.parametrize("family,size,seed", GRID, ids=GRID_IDS)
    def test_centralized_identical(self, family, size, seed):
        graph, source = _instance(family, size, seed)
        ref = run_centralized_schedule(graph, source, backend="reference",
                                       trace_level="summary")
        vec = run_centralized_schedule(graph, source, backend="vectorized",
                                       trace_level="summary")
        assert _baseline_fingerprint(vec) == _baseline_fingerprint(ref)
        assert ref.label_length_bits == vec.label_length_bits

    @pytest.mark.parametrize("family,size,seed", CENTRALIZED_FULL_CASES,
                             ids=[f"{f}-{n}" for f, n, _ in CENTRALIZED_FULL_CASES])
    def test_centralized_full_trace_identical(self, family, size, seed):
        graph, source = _instance(family, size, seed)
        ref = run_centralized_schedule(graph, source, backend="reference",
                                       trace_level="full")
        vec = run_centralized_schedule(graph, source, backend="vectorized",
                                       trace_level="full")
        assert vec.simulation.trace.to_json() == ref.simulation.trace.to_json()

    def test_centralized_runs_natively_on_the_vectorized_backend(self):
        # The kernel executes the schedule itself: no node objects are
        # materialised, which is the signature of the array path (the old
        # behaviour silently fell back to the reference engine).
        graph, source = _instance("grid", 16, 1)
        vec = run_centralized_schedule(graph, source, backend="vectorized",
                                       trace_level="summary")
        ref = run_centralized_schedule(graph, source, backend="reference",
                                       trace_level="summary")
        assert len(vec.simulation.nodes) == 0
        assert len(ref.simulation.nodes) == graph.n


class TestFullTraceEquivalence:
    """Byte-level trace equality: every message of every round must match."""

    CASES = [("path", 16, 1), ("grid", 16, 1), ("gnp_sparse", 25, 7), ("geometric", 16, 1)]

    @pytest.mark.parametrize("family,size,seed", CASES,
                             ids=[f"{f}-{n}" for f, n, _ in CASES])
    @pytest.mark.parametrize("scheme", ["lambda", "lambda_ack", "lambda_arb"])
    def test_trace_json_identical(self, scheme, family, size, seed):
        graph, source = _instance(family, size, seed)
        runner = {
            "lambda": run_broadcast,
            "lambda_ack": run_acknowledged_broadcast,
            "lambda_arb": lambda g, s, **kw: run_arbitrary_source_broadcast(
                g, true_source=s, coordinator=(s + 1) % g.n, **kw
            ),
        }[scheme]
        ref = runner(graph, source, backend="reference", trace_level="full")
        vec = runner(graph, source, backend="vectorized", trace_level="full")
        assert vec.trace.to_json() == ref.trace.to_json()


class TestBackendPlumbing:
    def test_resolve_backend_names_and_instances(self):
        ref = resolve_backend("reference")
        assert isinstance(ref, ReferenceBackend)
        assert resolve_backend("reference") is ref  # shared instance
        assert resolve_backend(None) is ref
        vec = VectorizedBackend()
        assert resolve_backend(vec) is vec

    def test_resolve_backend_rejects_unknown(self):
        with pytest.raises(BackendError):
            resolve_backend("warp-drive")

    def test_vectorized_falls_back_for_unsupported_models(self):
        from repro.radio.clock import OffsetClocks

        graph, source = _instance("path", 9, 1)
        # Offset clocks are outside the kernels' model: the vectorized backend
        # must delegate to the reference engine and still be correct.
        clock = OffsetClocks({v: 3 for v in graph.nodes()})
        ref = run_broadcast(graph, source, clock_model=clock, backend="reference")
        vec = run_broadcast(graph, source, clock_model=clock, backend="vectorized")
        assert vec.completion_round == ref.completion_round
        assert len(vec.simulation.nodes) == len(ref.simulation.nodes)  # object engine ran

    def test_vectorized_strict_raises_for_unsupported(self):
        graph, source = _instance("path", 9, 1)
        labeling = lambda_scheme(graph, source)
        strict = VectorizedBackend(strict=True)
        task = SimulationTask(
            protocol="centralized",
            graph=graph,
            labels=labeling.labels,
            source=source,
            max_rounds=5,
        )
        with pytest.raises(BackendError):
            strict.run_task(task)

    def test_vectorized_supports_the_compiled_protocols(self):
        graph, source = _instance("grid", 9, 1)
        labeling = lambda_scheme(graph, source)
        vec = VectorizedBackend()
        for protocol in ("broadcast", "acknowledged", "arbitrary",
                         "round_robin", "coloring_tdma"):
            task = SimulationTask(protocol=protocol, graph=graph,
                                  labels=labeling.labels, source=source, max_rounds=1)
            assert vec.supports(task)
        task = SimulationTask(protocol="custom", graph=graph,
                              labels=labeling.labels, source=source, max_rounds=1)
        assert not vec.supports(task)

"""Tests for the analysis layer: bounds, metrics, sweeps and report rendering."""

from __future__ import annotations

import pytest

from repro.analysis import (
    PaperBounds,
    SweepConfig,
    ack_round_window,
    aggregate,
    broadcast_round_bound,
    broadcast_round_bound_sharp,
    coloring_label_bits,
    distinct_label_bound,
    format_comparison,
    format_metrics_table,
    format_table,
    generate_instances,
    message_bits_total,
    metrics_from_baseline,
    metrics_from_outcome,
    per_round_transmitter_counts,
    round_robin_label_bits,
    run_sweep,
    scheme_length_bound,
)
from repro.baselines import run_round_robin
from repro.core import run_acknowledged_broadcast, run_broadcast
from repro.graphs import grid_graph, path_graph


class TestBounds:
    def test_broadcast_bound(self):
        assert broadcast_round_bound(10) == 17
        assert broadcast_round_bound(1) == 1
        assert broadcast_round_bound(2) == 1

    def test_sharp_bound(self):
        assert broadcast_round_bound_sharp(5) == 7

    def test_ack_window(self):
        assert ack_round_window(8) == (14, 20)

    def test_scheme_lengths(self):
        assert scheme_length_bound("lambda") == 2
        assert scheme_length_bound("lambda_ack") == 3
        assert scheme_length_bound("lambda_arb") == 3
        with pytest.raises(ValueError):
            scheme_length_bound("nope")

    def test_distinct_label_bounds(self):
        assert distinct_label_bound("lambda") == 4
        assert distinct_label_bound("lambda_ack") == 5
        assert distinct_label_bound("lambda_arb") == 6
        with pytest.raises(ValueError):
            distinct_label_bound("nope")

    def test_baseline_label_bits(self):
        assert round_robin_label_bits(16) == 8
        assert round_robin_label_bits(1) == 2
        assert coloring_label_bits(9) == 8
        assert coloring_label_bits(1) == 2

    def test_paper_bounds_bundle(self):
        b = PaperBounds(n=10, ell=6)
        assert b.broadcast == 17
        assert b.broadcast_sharp == 9
        assert b.ack_window == (10, 14)
        assert PaperBounds(n=5).broadcast_sharp is None


class TestMetrics:
    def test_metrics_from_outcome(self):
        g = grid_graph(3, 4)
        outcome = run_broadcast(g, 0)
        m = metrics_from_outcome(g, outcome, family="grid")
        assert m.scheme == "lambda"
        assert m.n == 12
        assert m.label_bits == 2
        assert m.within_bound is True
        assert m.as_dict()["family"] == "grid"

    def test_metrics_from_ack_outcome_has_ack_round(self):
        g = path_graph(6)
        outcome = run_acknowledged_broadcast(g, 0)
        m = metrics_from_outcome(g, outcome, family="path")
        assert m.acknowledgement_round is not None

    def test_metrics_from_baseline(self):
        g = path_graph(6)
        outcome = run_round_robin(g, 0)
        m = metrics_from_baseline(g, outcome, family="path", source=0)
        assert m.scheme == "round_robin"
        assert m.bound is None
        assert m.within_bound is None

    def test_message_bits_positive(self):
        g = grid_graph(3, 3)
        outcome = run_broadcast(g, 0)
        assert message_bits_total(outcome.trace) > 0

    def test_per_round_transmitter_counts(self):
        g = path_graph(5)
        outcome = run_broadcast(g, 0)
        counts = per_round_transmitter_counts(outcome.trace)
        assert len(counts) == outcome.trace.num_rounds
        assert counts[0] == 1

    def test_aggregate(self):
        g = path_graph(6)
        rows = [metrics_from_outcome(g, run_broadcast(g, 0), family="path")] * 3
        agg = aggregate(rows, "completion_round")
        assert agg["count"] == 3
        assert agg["min"] == agg["max"] == agg["mean"]
        empty = aggregate([], "completion_round")
        assert empty["count"] == 0


class TestReportRendering:
    def test_format_table_basic(self):
        text = format_table([{"a": 1, "b": None}, {"a": 22, "b": True}], ["a", "b"],
                            title="demo")
        assert "demo" in text
        assert "22" in text and "-" in text and "yes" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], ["a"])

    def test_format_metrics_table(self):
        g = path_graph(5)
        rows = [metrics_from_outcome(g, run_broadcast(g, 0), family="path")]
        text = format_metrics_table(rows, title="T")
        assert "lambda" in text and "path" in text

    def test_format_comparison_contains_ratio(self):
        g = grid_graph(3, 4)
        ref = [metrics_from_outcome(g, run_broadcast(g, 0), family="grid")]
        base = [metrics_from_baseline(g, run_round_robin(g, 0), family="grid", source=0)]
        text = format_comparison(ref, base, field="completion_round")
        assert "round_robin" in text
        assert "/λ" in text


class TestSweeps:
    def test_generate_instances_deterministic(self):
        cfg = SweepConfig(families=["path", "gnp_sparse"], sizes=[10, 14],
                          seeds_per_size=2, schemes=["lambda"])
        a = generate_instances(cfg)
        b = generate_instances(cfg)
        assert len(a) == 2 * 2 * 2
        assert all(x.graph == y.graph for x, y in zip(a, b))

    def test_source_rules(self):
        for rule, expect in [("zero", 0), ("last", None), ("center-ish", None)]:
            cfg = SweepConfig(families=["path"], sizes=[9], source_rule=rule)
            inst = generate_instances(cfg)[0]
            if rule == "zero":
                assert inst.source == 0
            elif rule == "last":
                assert inst.source == inst.graph.n - 1
            else:
                assert inst.source == inst.graph.n // 2
        with pytest.raises(ValueError):
            generate_instances(SweepConfig(families=["path"], sizes=[5], source_rule="bogus"))

    def test_run_sweep_produces_rows_for_every_cell(self):
        cfg = SweepConfig(families=["path", "star"], sizes=[8],
                          schemes=["lambda", "lambda_ack", "round_robin"])
        rows = run_sweep(cfg)
        assert len(rows) == 2 * 1 * 3
        schemes = {r.scheme for r in rows}
        assert schemes == {"lambda", "lambda_ack", "round_robin"}
        lam_rows = [r for r in rows if r.scheme == "lambda"]
        assert all(r.within_bound for r in lam_rows)

    def test_run_sweep_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            run_sweep(SweepConfig(families=["path"], sizes=[6], schemes=["nope"]))

    def test_sweep_includes_arbitrary_source(self):
        cfg = SweepConfig(families=["star"], sizes=[7], schemes=["lambda_arb"],
                          source_rule="last")
        rows = run_sweep(cfg)
        assert len(rows) == 1
        assert rows[0].completion_round is not None

"""End-to-end tests for the sweep service: coordinator, workers, client.

:class:`ServiceHarness` runs the whole topology (coordinator + worker fleet +
a live TCP port) on a background event loop with ``pool="thread"`` workers,
so cells execute in *this* process — which lets these tests monkeypatch the
reference backend and count its invocations to prove the warm path computed
nothing, slow it down to control timing, or break one scheme to exercise the
failure paths.

The contract under test (ISSUE 9 acceptance):

* remote grid rows are bit-identical to a local ``run_grid`` and share the
  same content-addressed store keys,
* resubmitting a warm grid performs zero backend invocations, and
* killing a worker mid-sweep loses no completed cells — the coordinator
  re-queues its leases and the sweep still finishes.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import GridConfig, ResultStore, grid_row_specs, grid_unit_key, run_grid
from repro.service import ServiceClient, ServiceError, ServiceHarness

CFG = GridConfig(
    families=["path", "grid"],
    sizes=[9, 12],
    seeds_per_size=1,
    schemes=["lambda", "round_robin"],
)
TOTAL = len(grid_row_specs(CFG))  # 8 cells


@pytest.fixture
def backend_calls(monkeypatch):
    """Counts every reference-backend task execution in this process.

    Harness workers default to thread pools, so their backend calls land on
    this counter too — the instrument behind every "computed nothing" claim.
    """
    from repro.backends import ReferenceBackend

    calls = []
    original = ReferenceBackend.run_task

    def counting(self, task):
        calls.append(task)
        return original(self, task)

    monkeypatch.setattr(ReferenceBackend, "run_task", counting)
    return calls


def _slow_backend(monkeypatch, seconds: float):
    """Stretch every backend call so a sweep is reliably mid-flight."""
    from repro.backends import ReferenceBackend

    original = ReferenceBackend.run_task

    def slowed(self, task):
        time.sleep(seconds)
        return original(self, task)

    monkeypatch.setattr(ReferenceBackend, "run_task", slowed)


# --------------------------------------------------------------------------- #
# the headline contract: bit-identical rows, warm = zero computation
# --------------------------------------------------------------------------- #
class TestRemoteEqualsLocal:
    def test_cold_submit_matches_local_run_grid(self, tmp_path, backend_calls):
        baseline = run_grid(CFG)
        local_calls = len(backend_calls)
        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            with ServiceClient(svc.address) as client:
                remote = client.submit(CFG)
        assert remote == baseline
        assert len(backend_calls) - local_calls == TOTAL
        assert client.last_summary == {
            "total": TOTAL, "cached": 0, "computed": TOTAL, "failed": 0,
        }

    def test_warm_resubmission_computes_nothing(self, tmp_path, backend_calls):
        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            with ServiceClient(svc.address) as client:
                cold = client.submit(CFG)
                cold_calls = len(backend_calls)
                warm = client.submit(CFG)
        assert warm == cold
        assert len(backend_calls) == cold_calls  # zero new invocations
        assert client.last_plan == {"total": TOTAL, "cached": TOTAL}
        assert client.last_summary == {
            "total": TOTAL, "cached": TOTAL, "computed": 0, "failed": 0,
        }

    def test_remote_store_keys_match_local_sweep_keys(self, tmp_path):
        with ServiceHarness(tmp_path / "svc", workers=1) as svc:
            with ServiceClient(svc.address) as client:
                client.submit(CFG)
        # The coordinator keyed every cell with the same content-addressed
        # function a local store-backed sweep uses, so a local resume against
        # the service's store must find every row already present.
        expected = {grid_unit_key(CFG, spec) for spec in grid_row_specs(CFG)}
        with ResultStore(tmp_path / "svc") as store:
            assert set(store.keys()) == expected

    def test_local_sweep_resumes_from_the_service_store(self, tmp_path,
                                                        backend_calls):
        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            with ServiceClient(svc.address) as client:
                remote = client.submit(CFG)
        before = len(backend_calls)
        with ResultStore(tmp_path / "svc") as store:
            local = run_grid(CFG, store=store)
        assert local == remote
        assert len(backend_calls) == before  # the cache crossed the wire

    def test_growing_grid_computes_only_the_new_cells(self, tmp_path,
                                                      backend_calls):
        grown = GridConfig(families=["path", "grid"], sizes=[9, 12, 16],
                           seeds_per_size=1,
                           schemes=["lambda", "round_robin"])
        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            with ServiceClient(svc.address) as client:
                client.submit(CFG)
                before = len(backend_calls)
                rows = client.submit(grown)
        new = len(grid_row_specs(grown)) - TOTAL
        assert len(backend_calls) - before == new
        assert client.last_summary["cached"] == TOTAL
        assert rows == run_grid(grown)


# --------------------------------------------------------------------------- #
# worker death mid-sweep: leases re-queue, nothing completed is lost
# --------------------------------------------------------------------------- #
class TestWorkerDeath:
    def test_killed_worker_loses_no_cells(self, tmp_path, monkeypatch):
        baseline = run_grid(CFG)
        _slow_backend(monkeypatch, 0.05)  # 8 cells x 50ms across 2 workers
        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            result = {}

            def submit():
                with ServiceClient(svc.address) as client:
                    result["rows"] = client.submit(CFG)
                    result["summary"] = client.last_summary

            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.12)  # mid-sweep: both workers hold leases
            svc.kill_worker(0)
            thread.join(timeout=60)
            assert not thread.is_alive(), "sweep did not finish after the kill"
            stats = svc.describe()
        assert result["rows"] == baseline  # complete and bit-identical
        assert result["summary"]["failed"] == 0
        assert stats["workers_lost"] >= 1
        # The dead worker's leased cell went back on the queue and was
        # computed by the survivor — not lost, not failed.
        assert stats["requeued"] >= 1
        assert stats["failed_cells"] == 0

    def test_fresh_worker_can_join_mid_sweep(self, tmp_path, monkeypatch):
        baseline = run_grid(CFG)
        _slow_backend(monkeypatch, 0.05)
        with ServiceHarness(tmp_path / "svc", workers=1) as svc:
            result = {}

            def submit():
                with ServiceClient(svc.address) as client:
                    result["rows"] = client.submit(CFG)

            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.1)
            svc.add_worker(name="late-joiner")
            thread.join(timeout=60)
            assert not thread.is_alive()
            stats = svc.describe()
        assert result["rows"] == baseline
        assert stats["workers_seen"] == 2


# --------------------------------------------------------------------------- #
# failing cells: strict aborts the stream, keep-going delivers error rows
# --------------------------------------------------------------------------- #
def _break_lambda(monkeypatch):
    """Make every lambda cell fail deterministically, in every attempt."""
    from repro.api.schemes import LambdaScheme

    def broken(self, *args, **kwargs):
        raise RuntimeError("injected scheme failure")

    monkeypatch.setattr(LambdaScheme, "build_task", broken)


class TestFailurePaths:
    def test_strict_submission_raises_service_error(self, tmp_path,
                                                    monkeypatch):
        _break_lambda(monkeypatch)
        with ServiceHarness(tmp_path / "svc", workers=2,
                            max_attempts=2) as svc:
            with ServiceClient(svc.address) as client:
                with pytest.raises(ServiceError):
                    client.submit(CFG)

    def test_keep_going_delivers_error_rows(self, tmp_path, monkeypatch):
        baseline = run_grid(CFG)
        _break_lambda(monkeypatch)
        with ServiceHarness(tmp_path / "svc", workers=2,
                            max_attempts=2) as svc:
            with ServiceClient(svc.address) as client:
                rows = client.submit(CFG, strict=False)
                summary = client.last_summary
            stats = svc.describe()
        assert len(rows) == TOTAL
        failed = rows.filter(lambda r: r.status != "ok")
        assert set(failed.column("scheme").tolist()) == {"lambda"}
        assert summary["failed"] == len(failed) > 0
        assert stats["failed_cells"] == len(failed)
        # Healthy schemes are untouched and bit-identical.
        assert rows.filter(scheme="round_robin") == baseline.filter(
            scheme="round_robin")

    def test_failed_cells_are_never_cached(self, tmp_path, monkeypatch):
        _break_lambda(monkeypatch)
        with ServiceHarness(tmp_path / "svc", workers=1,
                            max_attempts=2) as svc:
            with ServiceClient(svc.address) as client:
                rows = client.submit(CFG, strict=False)
        failed = sum(1 for r in rows if r.status != "ok")
        assert failed > 0
        monkeypatch.undo()  # the scheme is "fixed"
        with ServiceHarness(tmp_path / "svc", workers=1) as svc:
            with ServiceClient(svc.address) as client:
                healed = client.submit(CFG)
                summary = client.last_summary
        # Only the previously failed cells were recomputed.
        assert summary["cached"] == TOTAL - failed
        assert summary["computed"] == failed
        assert healed == run_grid(CFG)

    def test_transient_cell_failure_heals_via_worker_retry(self, tmp_path,
                                                           monkeypatch):
        # Workers run cells with retries=1: a fault that clears on the second
        # attempt is invisible to the client (satellite: shared re-queue /
        # retry accounting between executor and service).
        from repro.api.schemes import LambdaScheme

        baseline = run_grid(CFG)
        original = LambdaScheme.build_task
        state = {"calls": 0}

        def flaky_once(self, *args, **kwargs):
            state["calls"] += 1
            if state["calls"] == 1:
                raise RuntimeError("transient cell failure")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(LambdaScheme, "build_task", flaky_once)
        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            with ServiceClient(svc.address) as client:
                rows = client.submit(CFG)
        assert rows == baseline
        assert client.last_summary["failed"] == 0
        assert state["calls"] > 1  # the retry really happened


# --------------------------------------------------------------------------- #
# invalid submissions
# --------------------------------------------------------------------------- #
class TestValidation:
    def test_unknown_scheme_rejected_before_any_work(self, tmp_path,
                                                     backend_calls):
        with ServiceHarness(tmp_path / "svc", workers=1) as svc:
            with ServiceClient(svc.address) as client:
                with pytest.raises(ServiceError, match="unknown schemes"):
                    client.submit({"families": ["path"], "sizes": [9],
                                   "schemes": ["nope"]})
        assert backend_calls == []

    def test_malformed_config_rejected(self, tmp_path):
        with ServiceHarness(tmp_path / "svc", workers=1) as svc:
            with ServiceClient(svc.address) as client:
                with pytest.raises(ServiceError):
                    client.submit({"families": ["path"], "sizes": [9],
                                   "no_such_field": True})


# --------------------------------------------------------------------------- #
# queries: the store served remotely
# --------------------------------------------------------------------------- #
class TestQueries:
    def test_query_filters_and_key_lookup(self, tmp_path):
        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            with ServiceClient(svc.address) as client:
                submitted = client.submit(CFG)
                everything = client.query()
                lambdas = client.query(schemes=["lambda"])
                small = client.query(sizes=[9], status="ok")
                spec = grid_row_specs(CFG)[0]
                one = client.query(key=grid_unit_key(CFG, spec))
                none = client.query(key="ff" * 32)
        assert len(everything) == TOTAL
        assert sorted(map(repr, everything)) == sorted(map(repr, submitted))
        assert len(lambdas) == TOTAL // 2
        assert set(lambdas.column("scheme").tolist()) == {"lambda"}
        assert set(small.column("n").tolist()) == {9}
        assert len(one) == 1 and one[0].scheme == spec[5]
        assert len(none) == 0

    def test_query_against_an_empty_store(self, tmp_path):
        with ServiceHarness(tmp_path / "svc", workers=0) as svc:
            with ServiceClient(svc.address) as client:
                assert client.store_rows == 0
                assert len(client.query()) == 0

    def test_status_error_matches_the_whole_error_class(self, tmp_path):
        # Regression: the query status filter used exact equality, so
        # --status error could never match a stored error:ValueError row.
        from dataclasses import replace

        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            with ServiceClient(svc.address) as client:
                client.submit(CFG)
        with ResultStore(tmp_path / "svc") as store:
            template = store.rows()[0]
            for i, tag in enumerate(["error:ValueError", "error:TypeError"]):
                store.put(f"{i:02d}{'ee' * 31}", replace(template, status=tag))
        with ServiceHarness(tmp_path / "svc", workers=0) as svc:
            with ServiceClient(svc.address) as client:
                errors = client.query(status="error")
                exact = client.query(status="error:ValueError")
                ok = client.query(status="ok")
        assert sorted(errors.column("status").tolist()) == [
            "error:TypeError", "error:ValueError"]
        # Full tags and "ok" still match exactly; "error" never matches ok.
        assert exact.column("status").tolist() == ["error:ValueError"]
        assert len(ok) == TOTAL
        assert all(r.status == "ok" for r in ok)


# --------------------------------------------------------------------------- #
# aggregates: server-side groupby answered from store columns
# --------------------------------------------------------------------------- #
class TestAggregates:
    def test_aggregate_matches_local_eager_answer(self, tmp_path):
        from repro.analysis.stream import aggregate_result_set

        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            with ServiceClient(svc.address) as client:
                rows = client.submit(CFG)
                groups = client.aggregate("rounds", by=["scheme", "n"])
                summary = client.last_summary
        local = aggregate_result_set(rows, "completion_round", ("scheme", "n"))
        assert groups == local
        assert summary == {"rows_seen": TOTAL, "groups": len(local)}
        assert {(g["by"]["scheme"], g["by"]["n"]) for g in groups} == {
            (scheme, n) for scheme in CFG.schemes for n in CFG.sizes}

    def test_aggregate_filters_and_ci(self, tmp_path):
        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            with ServiceClient(svc.address) as client:
                client.submit(CFG)
                lam = client.aggregate("completion_round",
                                       schemes=["lambda"], ci=True)
        assert len(lam) == 1
        stats = lam[0]["stats"]
        assert stats["count"] == TOTAL // 2
        assert stats["ci95_low"] <= stats["mean"] <= stats["ci95_high"]
        assert stats["p05"] <= stats["median"] <= stats["p95"]

    def test_aggregate_against_columnar_store_and_unknown_column(self, tmp_path):
        # Warm the store, compact it columnar, then serve aggregates from the
        # column blocks: same numbers as the eager JSONL answer.
        from repro.store import ResultStore

        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            with ServiceClient(svc.address) as client:
                client.submit(CFG)
                jsonl_answer = client.aggregate("rounds", by=["scheme"])
        with ResultStore(tmp_path / "svc") as store:
            stats = store.compact(format="columnar")
            assert stats["format"] == "columnar"
        with ServiceHarness(tmp_path / "svc", workers=0) as svc:
            with ServiceClient(svc.address) as client:
                columnar_answer = client.aggregate("rounds", by=["scheme"])
                with pytest.raises(ServiceError, match="invalid aggregate"):
                    client.aggregate("no_such_column")
                # The connection survives a rejected aggregate.
                assert client.ping()
        # Group order follows row order, which differs between a live store
        # (insertion order) and a reopened one (shard order) — the per-group
        # statistics must match exactly either way.
        def by_scheme(groups):
            return sorted(groups, key=lambda g: g["by"]["scheme"])

        assert by_scheme(columnar_answer) == by_scheme(jsonl_answer)


# --------------------------------------------------------------------------- #
# connection plumbing
# --------------------------------------------------------------------------- #
class TestConnections:
    def test_ping_and_welcome(self, tmp_path):
        with ServiceHarness(tmp_path / "svc", workers=1) as svc:
            with ServiceClient(svc.address) as client:
                assert client.ping()
                client.submit(CFG)
            with ServiceClient(svc.address) as reconnect:
                # welcome advertises the store the coordinator serves
                assert reconnect.store_rows == TOTAL

    def test_concurrent_clients_share_one_computation(self, tmp_path,
                                                      monkeypatch,
                                                      backend_calls):
        # Two clients race the same grid: cell de-duplication (or the cache,
        # if one finishes first) guarantees each cell is computed exactly
        # once, and both streams still deliver every row.
        _slow_backend(monkeypatch, 0.02)
        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            results = {}

            def submit(slot):
                with ServiceClient(svc.address) as client:
                    results[slot] = client.submit(CFG)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads)
        baseline = run_grid(CFG)
        assert results[0] == baseline and results[1] == baseline
        # TOTAL computed cells + TOTAL for the local baseline above.
        assert len(backend_calls) == 2 * TOTAL

    def test_small_credit_window_still_drains_the_stream(self, tmp_path):
        with ServiceHarness(tmp_path / "svc", workers=2) as svc:
            with ServiceClient(svc.address) as client:
                cold = client.submit(CFG, window=2)  # worst-case ping-pong
                warm = client.submit(CFG, window=1)
        assert cold == warm == run_grid(CFG)

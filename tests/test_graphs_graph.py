"""Unit tests for the core Graph class and GraphBuilder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, GraphBuilder, GraphError, path_graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_duplicate_edges_collapse(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(1, 1)])

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 5)])

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(n=-1, edge_set=frozenset())

    def test_names_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 1)], names=["a", "b"])

    def test_from_adjacency(self):
        g = Graph.from_adjacency({0: [1, 2], 2: [3]})
        assert g.num_nodes == 4
        assert g.has_edge(0, 1) and g.has_edge(0, 2) and g.has_edge(2, 3)

    def test_empty_graph(self):
        g = Graph.empty(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0

    def test_zero_node_graph(self):
        g = Graph.empty(0)
        assert g.num_nodes == 0
        assert list(g.nodes()) == []


class TestQueries:
    def test_neighbors(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (2, 3)])
        assert g.neighbors(0) == frozenset({1, 2})
        assert g.neighbors(3) == frozenset({2})

    def test_neighbors_array_sorted(self):
        g = Graph.from_edges(5, [(0, 4), (0, 2), (0, 1)])
        assert list(g.neighbors_array(0)) == [1, 2, 4]

    def test_degree_and_degrees(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert list(g.degrees()) == [3, 1, 1, 1]

    def test_max_min_degree(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2)])
        assert g.max_degree() == 2
        assert g.min_degree() == 0

    def test_has_edge_symmetric(self):
        g = Graph.from_edges(3, [(0, 2)])
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert not g.has_edge(0, 1)
        assert not g.has_edge(1, 1)

    def test_contains_and_len_and_iter(self):
        g = path_graph(4)
        assert 3 in g and 4 not in g
        assert len(g) == 4
        assert list(iter(g)) == [0, 1, 2, 3]

    def test_invalid_node_query_raises(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            g.neighbors(7)
        with pytest.raises(GraphError):
            g.degree(-1)

    def test_adjacency_matrix_symmetric(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        mat = g.adjacency_matrix()
        assert mat.shape == (4, 4)
        assert np.array_equal(mat, mat.T)
        assert mat[0, 1] and mat[2, 3] and not mat[0, 2]

    def test_adjacency_lists(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2)])
        assert g.adjacency_lists() == {0: [1, 2], 1: [0], 2: [0]}

    def test_csr_consistency(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (1, 3)])
        indptr, indices = g.csr()
        assert indptr[-1] == 2 * g.num_edges
        for v in g.nodes():
            assert set(indices[indptr[v]:indptr[v + 1]]) == set(g.neighbors(v))


class TestSetQueries:
    def test_neighborhood_matches_paper_definition(self):
        # Γ(X) = nodes adjacent to at least one node of X (may intersect X).
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert g.neighborhood({0}) == frozenset({1})
        assert g.neighborhood({1, 2}) == frozenset({0, 1, 2, 3})
        assert g.neighborhood(set()) == frozenset()

    def test_closed_neighborhood(self):
        g = path_graph(4)
        assert g.closed_neighborhood({1}) == frozenset({0, 1, 2})

    def test_dominates(self):
        g = path_graph(5)
        assert g.dominates({1, 3}, {0, 2, 4})
        assert not g.dominates({1}, {4})
        assert g.dominates(set(), set())

    def test_count_neighbors_in(self):
        g = path_graph(5)
        assert g.count_neighbors_in(2, {1, 3}) == 2
        assert g.count_neighbors_in(2, {0, 4}) == 0


class TestDerivedGraphs:
    def test_subgraph(self):
        g = path_graph(5)
        sub, remap = g.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert remap[1] == 0 and remap[3] == 2

    def test_relabel_is_isomorphic(self):
        g = path_graph(4)
        h = g.relabel([3, 2, 1, 0])
        assert h.num_edges == g.num_edges
        assert h.has_edge(3, 2) and h.has_edge(1, 0)

    def test_relabel_rejects_non_permutation(self):
        with pytest.raises(GraphError):
            path_graph(3).relabel([0, 0, 1])

    def test_union_disjoint(self):
        g = path_graph(3).union_disjoint(path_graph(2))
        assert g.num_nodes == 5
        assert g.has_edge(3, 4)
        assert not g.has_edge(2, 3)

    def test_add_and_remove_edges_are_persistent(self):
        g = path_graph(4)
        g2 = g.add_edges([(0, 3)])
        assert g2.has_edge(0, 3) and not g.has_edge(0, 3)
        g3 = g2.remove_edges([(0, 3)])
        assert not g3.has_edge(0, 3)

    def test_complement(self):
        g = path_graph(3)
        comp = g.complement()
        assert comp.has_edge(0, 2)
        assert not comp.has_edge(0, 1)

    def test_hash_and_equality_structural(self):
        g1 = Graph.from_edges(3, [(0, 1), (1, 2)])
        g2 = Graph.from_edges(3, [(1, 2), (0, 1)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != Graph.from_edges(3, [(0, 1)])

    def test_repr_and_summary(self):
        g = path_graph(3)
        assert "n=3" in repr(g)
        assert "3 nodes" in g.summary()


class TestGraphBuilder:
    def test_build_with_string_keys(self):
        b = GraphBuilder()
        b.add_edge("a", "b")
        b.add_edge("b", "c")
        g = b.build()
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.names == ("a", "b", "c")

    def test_add_edges_bulk_and_index_of(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (1, 2), (0, 2)])
        assert b.num_nodes == 3
        assert b.index_of(2) == 2
        assert b.build().num_edges == 3

    def test_isolated_node(self):
        b = GraphBuilder()
        b.add_node("alone")
        b.add_edge("x", "y")
        g = b.build()
        assert g.num_nodes == 3
        assert g.degree(0) == 0

"""Tests for Algorithm B_arb (Section 4): broadcast from an undesignated source."""

from __future__ import annotations

import pytest

from repro.core import (
    ArbitrarySourceNode,
    COORDINATOR_LABEL,
    lambda_arb_scheme,
    run_arbitrary_source_broadcast,
    verify_broadcast_outcome,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_gnp_graph,
    star_graph,
)
from repro.radio import ack_message, initialize_message, ready_message


class TestArbitraryNodeUnit:
    def test_coordinator_recognised_from_label(self):
        node = ArbitrarySourceNode(3, COORDINATOR_LABEL)
        assert node.is_coordinator
        assert node.t_v == 0

    def test_coordinator_starts_with_initialize(self):
        node = ArbitrarySourceNode(0, COORDINATOR_LABEL)
        msg = node.decide(1)
        assert msg is not None and msg.is_initialize and msg.round_stamp == 1

    def test_non_coordinator_stores_t_v(self):
        node = ArbitrarySourceNode(4, "100")
        node.deliver(3, None, initialize_message(round_stamp=3))
        assert node.t_v == 3

    def test_ready_sets_T_and_source_timer(self):
        node = ArbitrarySourceNode(4, "000", is_source=True, source_payload="mu")
        node.deliver(2, None, initialize_message(round_stamp=2))
        node.deliver(10, None, ready_message(5, round_stamp=10))
        assert node.T == 5
        # the actual source schedules its phase-2 ack T+1 rounds later
        for r in range(11, 16):
            assert node.decide(r) is None or not node.decide(r).is_ack
        ack = node.decide(16)
        assert ack is not None and ack.is_ack and ack.payload == "mu"

    def test_acknowledger_acks_only_in_phase_one(self):
        node = ArbitrarySourceNode(7, "001")
        node.deliver(4, None, initialize_message(round_stamp=4))
        msg = node.decide(5)
        assert msg is not None and msg.is_ack and msg.payload == 4
        # phase 2: same node must stay silent one round after hearing "ready"
        node.deliver(5, msg, None)
        node.deliver(20, None, ready_message(9, round_stamp=20))
        after = node.decide(21)
        assert after is None or not after.is_ack

    def test_coordinator_learns_T_from_ack(self):
        node = ArbitrarySourceNode(0, COORDINATOR_LABEL)
        first = node.decide(1)
        node.deliver(1, first, None)
        node.deliver(4, None, ack_message(3, payload=3))
        assert node.T == 3
        # phase 2 starts after the guard delay of T rounds
        ready_round = 4 + 3 + 1
        for r in range(5, ready_round):
            assert node.decide(r) is None
        ready = node.decide(ready_round)
        assert ready is not None and ready.is_ready and ready.payload == 3


class TestEndToEnd:
    def test_every_source_works_small_graphs(self):
        for graph in (path_graph(5), cycle_graph(6), star_graph(6), grid_graph(3, 3),
                      complete_graph(5)):
            labeling = lambda_arb_scheme(graph)
            for source in graph.nodes():
                outcome = run_arbitrary_source_broadcast(
                    graph, true_source=source, labeling=labeling
                )
                assert outcome.completed, (graph, source)
                assert outcome.common_completion_round is not None, (graph, source)

    def test_fixture_families(self, labeled_instance):
        name, graph, source = labeled_instance
        outcome = run_arbitrary_source_broadcast(graph, true_source=source)
        assert outcome.completed
        assert outcome.common_completion_round is not None
        assert verify_broadcast_outcome(graph, outcome) == []

    def test_source_equals_coordinator(self):
        graph = grid_graph(3, 4)
        outcome = run_arbitrary_source_broadcast(graph, true_source=0, coordinator=0)
        assert outcome.completed
        assert outcome.common_completion_round is not None

    def test_source_equals_acknowledger(self):
        graph = path_graph(7)
        labeling = lambda_arb_scheme(graph)
        z = labeling.acknowledger
        outcome = run_arbitrary_source_broadcast(graph, true_source=z, labeling=labeling)
        assert outcome.completed

    def test_all_nodes_know_completion_in_same_round(self):
        graph = random_gnp_graph(20, 0.15, seed=3)
        outcome = run_arbitrary_source_broadcast(graph, true_source=11)
        rounds = {
            node.completion_known_local_round
            for node in outcome.simulation.nodes
            if isinstance(node, ArbitrarySourceNode)
        }
        assert len(rounds) == 1
        assert None not in rounds

    def test_everyone_actually_holds_the_payload(self):
        graph = cycle_graph(9)
        outcome = run_arbitrary_source_broadcast(graph, true_source=4, payload="secret-42")
        for node in outcome.simulation.nodes:
            assert isinstance(node, ArbitrarySourceNode)
            assert node.sourcemsg == "secret-42" or node.holds_message

    def test_labeling_is_source_independent(self):
        # The same labeling (computed once) must serve every possible source.
        graph = random_gnp_graph(16, 0.2, seed=9)
        labeling = lambda_arb_scheme(graph)
        completions = []
        for source in range(0, graph.n, 4):
            outcome = run_arbitrary_source_broadcast(graph, true_source=source,
                                                     labeling=labeling)
            assert outcome.completed
            completions.append(outcome.completion_round)
        assert all(c is not None for c in completions)

    def test_phases_do_not_overlap(self):
        # No round mixes the "initialize"/"ready"/final µ broadcasts.
        graph = grid_graph(4, 4)
        outcome = run_arbitrary_source_broadcast(graph, true_source=10)
        for record in outcome.trace.rounds:
            kinds = {m.kind for m in record.transmissions.values()}
            broadcast_kinds = kinds & {"initialize", "ready", "source"}
            assert len(broadcast_kinds) <= 1

    def test_single_node(self):
        from repro.graphs import Graph

        outcome = run_arbitrary_source_broadcast(Graph.empty(1), true_source=0)
        assert outcome.completed

"""Property-based tests (hypothesis) for the core invariants.

Random connected graphs are generated from (size, seed) pairs through the
library's own deterministic generators, so shrinking works on the two integers
and every failing case is reproducible from its parameters.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    FORBIDDEN_ACK_LABELS,
    build_sequences,
    lambda_ack_scheme,
    lambda_scheme,
    run_acknowledged_broadcast,
    run_broadcast,
)
from repro.graphs import (
    from_adjacency_json,
    from_dimacs,
    from_edge_list,
    is_connected,
    random_connected_graph,
    random_tree,
    to_adjacency_json,
    to_dimacs,
    to_edge_list,
)
from repro.core.special import run_tree_flood

# Keep the per-example cost modest: graphs up to ~26 nodes, few dozen examples.
GRAPH_SIZES = st.integers(min_value=2, max_value=26)
SEEDS = st.integers(min_value=0, max_value=10_000)
DENSITIES = st.sampled_from([0.0, 0.05, 0.15, 0.35])

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _graph_and_source(n: int, seed: int, density: float):
    graph = random_connected_graph(n, density, seed=seed)
    source = seed % n
    return graph, source


@_SETTINGS
@given(n=GRAPH_SIZES, seed=SEEDS, density=DENSITIES)
def test_generated_graphs_are_connected_and_simple(n, seed, density):
    graph, _ = _graph_and_source(n, seed, density)
    assert graph.num_nodes == n
    assert is_connected(graph)
    for u, v in graph.edges():
        assert u != v
        assert 0 <= u < v < n


@_SETTINGS
@given(n=GRAPH_SIZES, seed=SEEDS, density=DENSITIES)
def test_sequence_construction_invariants_hold(n, seed, density):
    graph, source = _graph_and_source(n, seed, density)
    seq = build_sequences(graph, source)
    seq.check_invariants()
    assert seq.ell <= n


@_SETTINGS
@given(n=GRAPH_SIZES, seed=SEEDS, density=DENSITIES)
def test_lambda_labels_are_two_bits_and_at_most_four_values(n, seed, density):
    graph, source = _graph_and_source(n, seed, density)
    lab = lambda_scheme(graph, source)
    assert lab.length == 2
    assert lab.num_distinct_labels() <= 4
    assert set(lab.labels) == set(range(n))


@_SETTINGS
@given(n=GRAPH_SIZES, seed=SEEDS, density=DENSITIES)
def test_broadcast_always_completes_within_2n_minus_3(n, seed, density):
    graph, source = _graph_and_source(n, seed, density)
    outcome = run_broadcast(graph, source)
    assert outcome.completed
    assert outcome.completion_round <= max(1, 2 * n - 3)
    # sharp version
    assert outcome.completion_round == max(1, 2 * outcome.labeling.construction.ell - 3)


@_SETTINGS
@given(n=GRAPH_SIZES, seed=SEEDS, density=DENSITIES)
def test_acknowledged_broadcast_ack_window(n, seed, density):
    graph, source = _graph_and_source(n, seed, density)
    outcome = run_acknowledged_broadcast(graph, source)
    assert outcome.completed
    assert outcome.acknowledgement_round is not None
    ell = outcome.labeling.construction.ell
    if n > 1:
        assert 2 * ell - 2 <= outcome.acknowledgement_round <= 3 * ell - 4 or ell < 2


@_SETTINGS
@given(n=GRAPH_SIZES, seed=SEEDS, density=DENSITIES)
def test_lambda_ack_never_uses_forbidden_labels(n, seed, density):
    graph, source = _graph_and_source(n, seed, density)
    lab = lambda_ack_scheme(graph, source)
    if n > 1:
        assert not (set(lab.labels.values()) & set(FORBIDDEN_ACK_LABELS))
    ackers = [v for v in graph.nodes() if lab.parsed(v).x3 == 1]
    assert len(ackers) == 1


@_SETTINGS
@given(n=GRAPH_SIZES, seed=SEEDS, density=DENSITIES)
def test_uninformed_nodes_never_transmit(n, seed, density):
    graph, source = _graph_and_source(n, seed, density)
    outcome = run_broadcast(graph, source)
    informed_by = outcome.trace.informed_by_round()
    for record in outcome.trace.rounds:
        for v in record.transmissions:
            if v != source:
                assert informed_by[v] < record.round_number


@_SETTINGS
@given(n=GRAPH_SIZES, seed=SEEDS)
def test_tree_flood_informs_every_tree(n, seed):
    tree = random_tree(n, seed=seed)
    sim = run_tree_flood(tree, seed % n)
    assert sim.trace.broadcast_completion_round() is not None


@_SETTINGS
@given(n=GRAPH_SIZES, seed=SEEDS, density=DENSITIES)
def test_serialization_roundtrips(n, seed, density):
    graph, _ = _graph_and_source(n, seed, density)
    assert from_edge_list(to_edge_list(graph)) == graph
    assert from_adjacency_json(to_adjacency_json(graph)) == graph
    assert from_dimacs(to_dimacs(graph)) == graph


@_SETTINGS
@given(n=GRAPH_SIZES, seed=SEEDS, density=DENSITIES)
def test_simulation_is_deterministic(n, seed, density):
    graph, source = _graph_and_source(n, seed, density)
    a = run_broadcast(graph, source)
    b = run_broadcast(graph, source)
    assert a.trace.to_json() == b.trace.to_json()

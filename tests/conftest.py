"""Shared fixtures for the test suite.

The fixtures provide a representative spread of connected graphs (structured,
random, radio-flavoured) that the protocol and labeling tests iterate over.
Everything is seeded so the suite is fully deterministic.
"""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    binary_tree_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_geometric_graph,
    random_gnp_graph,
    random_tree,
    star_graph,
    wheel_graph,
)


def small_graph_instances() -> list[tuple[str, Graph, int]]:
    """(name, graph, source) triples used across protocol tests."""
    return [
        ("path6", path_graph(6), 0),
        ("path9-mid", path_graph(9), 4),
        ("cycle5", cycle_graph(5), 0),
        ("cycle8", cycle_graph(8), 3),
        ("star7", star_graph(7), 0),
        ("star7-leaf", star_graph(7), 3),
        ("complete6", complete_graph(6), 2),
        ("grid3x4", grid_graph(3, 4), 0),
        ("grid4x4-center", grid_graph(4, 4), 5),
        ("wheel8", wheel_graph(8), 4),
        ("binary_tree15", binary_tree_graph(15), 0),
        ("hypercube3", hypercube_graph(3), 0),
        ("random_tree12", random_tree(12, seed=5), 0),
        ("gnp18", random_gnp_graph(18, 0.2, seed=11), 0),
        ("gnp25-sparse", random_gnp_graph(25, 0.12, seed=13), 7),
        ("geometric20", random_geometric_graph(20, 0.4, seed=17), 0),
    ]


@pytest.fixture(params=small_graph_instances(), ids=lambda t: t[0])
def labeled_instance(request) -> tuple[str, Graph, int]:
    """Parametrised fixture yielding (name, graph, source) across families."""
    return request.param


@pytest.fixture
def small_grid() -> Graph:
    """A 3x3 grid used by quick unit tests."""
    return grid_graph(3, 3)


@pytest.fixture
def small_path() -> Graph:
    """A 5-node path used by quick unit tests."""
    return path_graph(5)


@pytest.fixture
def four_cycle() -> Graph:
    """The 4-cycle from the paper's impossibility argument."""
    return cycle_graph(4)

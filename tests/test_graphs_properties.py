"""Unit tests for structural graph properties (diameter, square, degeneracy, ...)."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    average_degree,
    center,
    complete_graph,
    cycle_graph,
    degeneracy,
    degeneracy_ordering,
    density,
    diameter,
    graph_power,
    graph_square,
    grid_graph,
    is_bipartite,
    is_series_parallel,
    is_tree,
    path_graph,
    radius,
    random_tree,
    source_radius,
    star_graph,
    triangle_count,
    wheel_graph,
)
from repro.graphs.graph import GraphError


class TestDiameterRadiusCenter:
    def test_path(self):
        g = path_graph(7)
        assert diameter(g) == 6
        assert radius(g) == 3
        assert center(g) == [3]

    def test_cycle(self):
        g = cycle_graph(8)
        assert diameter(g) == 4
        assert radius(g) == 4

    def test_star(self):
        g = star_graph(10)
        assert diameter(g) == 2
        assert radius(g) == 1
        assert center(g) == [0]

    def test_complete(self):
        assert diameter(complete_graph(5)) == 1

    def test_source_radius(self):
        g = path_graph(6)
        assert source_radius(g, 0) == 5
        assert source_radius(g, 3) == 3

    def test_source_radius_disconnected_raises(self):
        with pytest.raises(GraphError):
            source_radius(Graph.from_edges(3, [(0, 1)]), 0)


class TestGraphPowers:
    def test_square_of_path(self):
        g2 = graph_square(path_graph(5))
        assert g2.has_edge(0, 2)
        assert not g2.has_edge(0, 3)
        assert g2.num_edges == 4 + 3

    def test_square_of_star_is_complete(self):
        g2 = graph_square(star_graph(6))
        assert g2.num_edges == 15

    def test_cube_of_path(self):
        g3 = graph_power(path_graph(6), 3)
        assert g3.has_edge(0, 3)
        assert not g3.has_edge(0, 4)

    def test_power_requires_positive_k(self):
        with pytest.raises(GraphError):
            graph_power(path_graph(3), 0)


class TestDegeneracy:
    def test_tree_degeneracy_is_one(self):
        assert degeneracy(random_tree(20, seed=1)) == 1

    def test_cycle_degeneracy_is_two(self):
        assert degeneracy(cycle_graph(9)) == 2

    def test_complete_degeneracy(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_ordering_is_permutation(self):
        g = grid_graph(3, 4)
        order = degeneracy_ordering(g)
        assert sorted(order) == list(range(12))


class TestRecognisers:
    def test_is_tree(self):
        assert is_tree(path_graph(5))
        assert is_tree(star_graph(8))
        assert not is_tree(cycle_graph(5))
        assert not is_tree(Graph.from_edges(4, [(0, 1), (2, 3)]))

    def test_is_bipartite(self):
        assert is_bipartite(path_graph(6))
        assert is_bipartite(cycle_graph(8))
        assert not is_bipartite(cycle_graph(7))
        assert is_bipartite(grid_graph(3, 5))
        assert not is_bipartite(complete_graph(3))

    def test_series_parallel_positive(self):
        assert is_series_parallel(path_graph(6))
        assert is_series_parallel(cycle_graph(5))
        assert is_series_parallel(random_tree(12, seed=0))

    def test_series_parallel_negative(self):
        # K4 is the canonical forbidden minor; the wheel contains it.
        assert not is_series_parallel(complete_graph(4))
        assert not is_series_parallel(wheel_graph(6))
        assert not is_series_parallel(grid_graph(3, 3))

    def test_series_parallel_disconnected(self):
        assert not is_series_parallel(Graph.from_edges(4, [(0, 1), (2, 3)]))


class TestCountsAndDensities:
    def test_triangle_count(self):
        assert triangle_count(complete_graph(4)) == 4
        assert triangle_count(path_graph(5)) == 0
        assert triangle_count(wheel_graph(6)) == 5

    def test_density(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)
        assert density(path_graph(2)) == pytest.approx(1.0)
        assert density(Graph.empty(4)) == pytest.approx(0.0)
        assert density(Graph.empty(1)) == 0.0

    def test_average_degree(self):
        assert average_degree(cycle_graph(6)) == pytest.approx(2.0)
        assert average_degree(Graph.empty(0)) == 0.0

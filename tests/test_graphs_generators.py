"""Unit tests for the graph family generators."""

from __future__ import annotations

import pytest

from repro.graphs import (
    FAMILIES,
    GraphError,
    barbell_graph,
    binary_tree_graph,
    broom_graph,
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    family_names,
    full_kary_tree,
    generate_family,
    grid_graph,
    hypercube_graph,
    is_connected,
    is_series_parallel,
    is_tree,
    ladder_graph,
    lollipop_graph,
    path_graph,
    random_connected_graph,
    random_geometric_graph,
    random_gnp_graph,
    random_regular_graph,
    random_series_parallel_graph,
    random_tree,
    spider_graph,
    star_graph,
    torus_graph,
    two_level_star,
    wheel_graph,
)


class TestStructuredFamilies:
    def test_path(self):
        g = path_graph(6)
        assert g.num_nodes == 6 and g.num_edges == 5
        assert g.degree(0) == 1 and g.degree(3) == 2

    def test_path_single_node(self):
        assert path_graph(1).num_edges == 0

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.num_edges == 7
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(9)
        assert g.degree(0) == 8
        assert all(g.degree(v) == 1 for v in range(1, 9))

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.nodes())

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.num_nodes == 7 and g.num_edges == 12
        assert not g.has_edge(0, 1)
        assert g.has_edge(0, 3)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert g.degree(0) == 2  # corner
        assert g.degree(5) == 4  # interior

    def test_torus_regular(self):
        g = torus_graph(3, 4)
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_torus_too_small(self):
        with pytest.raises(GraphError):
            torus_graph(2, 5)

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.num_nodes == 16
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_binary_tree_and_kary(self):
        assert is_tree(binary_tree_graph(15))
        t = full_kary_tree(3, 2)
        assert t.num_nodes == 1 + 3 + 9
        assert is_tree(t)

    def test_caterpillar_spider_broom_are_trees(self):
        assert is_tree(caterpillar_graph(5, 2))
        assert is_tree(spider_graph(4, 3))
        assert is_tree(broom_graph(4, 5))
        assert is_tree(two_level_star(3, 4))

    def test_wheel(self):
        g = wheel_graph(8)
        assert g.degree(0) == 7
        assert all(g.degree(v) == 3 for v in range(1, 8))

    def test_ladder(self):
        g = ladder_graph(4)
        assert g.num_nodes == 8 and g.num_edges == 4 + 2 * 3

    def test_barbell_and_lollipop(self):
        g = barbell_graph(4, 2)
        assert g.num_nodes == 10
        assert is_connected(g)
        h = lollipop_graph(4, 3)
        assert h.num_nodes == 7
        assert is_connected(h)

    def test_invalid_arguments(self):
        with pytest.raises(GraphError):
            path_graph(0)
        with pytest.raises(GraphError):
            grid_graph(0, 3)
        with pytest.raises(GraphError):
            wheel_graph(3)
        with pytest.raises(GraphError):
            barbell_graph(1, 0)


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        for seed in range(5):
            t = random_tree(20, seed=seed)
            assert is_tree(t)

    def test_random_tree_deterministic(self):
        assert random_tree(15, seed=3) == random_tree(15, seed=3)
        assert random_tree(15, seed=3) != random_tree(15, seed=4)

    def test_random_tree_small(self):
        assert random_tree(1, seed=0).num_nodes == 1
        assert random_tree(2, seed=0).num_edges == 1

    def test_gnp_connected_by_default(self):
        for seed in range(4):
            g = random_gnp_graph(30, 0.05, seed=seed)
            assert is_connected(g)

    def test_gnp_unconnected_allowed(self):
        g = random_gnp_graph(30, 0.0, seed=1, connect=False)
        assert g.num_edges == 0

    def test_gnp_p_one_is_complete(self):
        g = random_gnp_graph(8, 1.0, seed=0)
        assert g.num_edges == 28

    def test_gnp_invalid_probability(self):
        with pytest.raises(GraphError):
            random_gnp_graph(5, 1.5)

    def test_random_regular(self):
        g = random_regular_graph(12, 3, seed=4)
        assert all(g.degree(v) == 3 for v in g.nodes())
        assert is_connected(g)

    def test_random_regular_invalid(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3, seed=0)  # n*d odd
        with pytest.raises(GraphError):
            random_regular_graph(4, 4, seed=0)  # d >= n

    def test_geometric_connected(self):
        g = random_geometric_graph(30, 0.3, seed=9)
        assert is_connected(g)
        assert g.num_nodes == 30

    def test_geometric_radius_one_is_complete(self):
        g = random_geometric_graph(10, 1.5, seed=2)
        assert g.num_edges == 45

    def test_series_parallel_recognised(self):
        for seed in range(5):
            g = random_series_parallel_graph(12, seed=seed)
            assert is_connected(g)
            assert is_series_parallel(g)

    def test_random_connected_graph(self):
        g = random_connected_graph(25, 0.05, seed=6)
        assert is_connected(g)
        assert g.num_edges >= 24


class TestFamilyRegistry:
    def test_family_names_sorted(self):
        names = family_names()
        assert names == sorted(names)
        assert "path" in names and "geometric" in names

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_every_family_generates_connected_graphs(self, family):
        g = generate_family(family, 20, seed=1)
        assert is_connected(g)
        assert g.num_nodes >= 4

    def test_unknown_family_raises(self):
        with pytest.raises(GraphError):
            generate_family("nonexistent", 10)

    def test_families_deterministic(self):
        for family in ("gnp_sparse", "geometric", "random_tree"):
            assert generate_family(family, 18, seed=7) == generate_family(family, 18, seed=7)

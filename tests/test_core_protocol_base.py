"""Unit tests for the shared UniversalNode base class and radio node history."""

from __future__ import annotations

import pytest

from repro.core.protocols.base import UniversalNode
from repro.radio import HistoryEntry, Message, SilentNode, source_message, stay_message


class _Probe(UniversalNode):
    """Minimal concrete protocol: always listen; record µ like the real ones."""

    def decide(self, local_round):
        return None

    def on_receive(self, local_round, message):
        if not self.knows_source_message and message.is_source:
            self.record_source_receipt(local_round, message)


class TestUniversalNode:
    def test_source_initialisation(self):
        node = _Probe(0, "10", is_source=True, source_payload="mu")
        assert node.knows_source_message
        assert node.sourcemsg == "mu"
        assert node.informed_local_round is None

    def test_non_source_initialisation(self):
        node = _Probe(3, "01")
        assert not node.knows_source_message
        assert node.bits.x1 == 0 and node.bits.x2 == 1

    def test_record_source_receipt_once(self):
        node = _Probe(1, "00")
        node.deliver(5, None, source_message("first", round_stamp=5))
        node.deliver(7, None, source_message("second", round_stamp=7))
        assert node.sourcemsg == "first"
        assert node.informed_local_round == 5
        assert node.informed_stamp == 5
        assert node.first_received_in(5)
        assert not node.first_received_in(7)

    def test_heard_and_sent_kind_helpers(self):
        node = _Probe(1, "00")
        node.deliver(2, None, stay_message(round_stamp=2))
        assert node.heard_kind_in(2, "stay") is not None
        assert node.heard_kind_in(2, "source") is None
        assert node.heard_kind_in(3, "stay") is None
        assert node.sent_kind_in(2, "stay") is None

    def test_history_entries_recorded_in_order(self):
        node = _Probe(1, "00")
        node.deliver(1, None, None)
        node.deliver(2, None, source_message("x"))
        assert [e.local_round for e in node.history] == [1, 2]
        assert isinstance(node.history[0], HistoryEntry)
        assert node.rounds_heard() == [(2, node.history[1].heard)]

    def test_silence_and_collision_hooks(self):
        events = []

        class Hooked(_Probe):
            def on_silence(self, local_round):
                events.append(("silence", local_round))

            def on_collision(self, local_round):
                events.append(("collision", local_round))

        node = Hooked(1, "00")
        node.deliver(1, None, None)
        node.deliver(2, None, None, collision_detected=True)
        assert events == [("silence", 1), ("collision", 2)]

    def test_transmitting_round_skips_reception_hooks(self):
        received = []

        class Hooked(_Probe):
            def on_receive(self, local_round, message):
                received.append(local_round)

        node = Hooked(1, "00")
        node.deliver(1, source_message("out"), source_message("in"))
        # a transmitting node never processes a reception in the same round
        assert received == []
        assert node.ever_sent and not node.ever_heard

    def test_source_requires_payload(self):
        with pytest.raises(ValueError):
            _Probe(0, "10", is_source=True)

    def test_repr_mentions_role_and_label(self):
        node = _Probe(4, "11")
        assert "node 4" in repr(node)
        assert "11" in repr(node)

    def test_silent_node_never_transmits(self):
        node = SilentNode(2, "0")
        assert all(node.decide(r) is None for r in range(1, 10))

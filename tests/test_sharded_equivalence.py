"""Differential suite for the sharded single-instance backend.

The sharded backend's entire claim is that splitting the round loop's CSR
segments across a process pool is invisible: traces, derived values and stop
bookkeeping must be bit-for-bit identical to the single-instance vectorized
engine at **any** shard count.  The suite also pins the shard-selection
plumbing (``resolve_backend("sharded:K")``, ``Scenario.shards``,
``GridConfig.shards``, the CLI ``--shards`` flag, shard-independent store
keys) and the int64 hardening of the CSR receive-count kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import GridConfig, Scenario, get_scheme, run_grid
from repro.api.grid import grid_unit_key
from repro.backends import (
    BackendError,
    ShardedVectorizedBackend,
    VectorizedBackend,
    resolve_backend,
)
from repro.graphs import generate_family
from repro.store.keys import normalize_backend_name

VECTORIZED = VectorizedBackend()

#: Protocol schemes the sharded segment kernels cover natively.
SHARDED_SCHEMES = ["lambda", "round_robin", "coloring_tdma"]

FAMILIES = ["path", "cycle", "star", "grid", "gnp_sparse", "geometric"]

SHARD_COUNTS = [1, 2, 3, 7]

#: One shared backend per shard count, so the persistent pools are reused
#: across the whole module instead of being re-forked per example.
BACKENDS = {k: ShardedVectorizedBackend(shards=k) for k in SHARD_COUNTS}


def _build_task(scheme_name, family, size, seed, trace_level="summary"):
    graph = generate_family(family, size, seed)
    source = seed % graph.n
    scheme = get_scheme(scheme_name)
    options = scheme.grid_options(graph, source)
    info = scheme.build_labels(graph, source, _payload_text="MSG", **options)
    return scheme.build_task(
        graph, info, source,
        payload="MSG",
        max_rounds=scheme.default_budget(graph, info),
        trace_level=trace_level,
        fault_model=None,
        clock_model=None,
    )


def _fingerprint(result):
    return (
        result.trace,
        result.derived,
        result.simulation.stop_round,
        result.simulation.stop_reason,
    )


# --------------------------------------------------------------------------- #
# property-based differential grid: sharded == vectorized at any shard count
# --------------------------------------------------------------------------- #
class TestShardedDifferential:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        scheme_name=st.sampled_from(SHARDED_SCHEMES),
        family=st.sampled_from(FAMILIES),
        size=st.integers(min_value=2, max_value=24),
        seed=st.integers(min_value=0, max_value=6),
        shards=st.sampled_from(SHARD_COUNTS),
        trace_level=st.sampled_from(["summary", "full"]),
    )
    def test_sharded_matches_vectorized(
        self, scheme_name, family, size, seed, shards, trace_level
    ):
        task = _build_task(scheme_name, family, size, seed, trace_level)
        out = BACKENDS[shards].run_task(task)
        solo = VECTORIZED.run_task(task)
        assert out.simulation.nodes == []  # the segment kernels really ran
        assert out.backend == "sharded"
        assert _fingerprint(out) == _fingerprint(solo)
        if trace_level == "full":
            assert out.trace.to_json() == solo.trace.to_json()

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_worst_case_path_all_shard_counts(self, shards):
        # The 2n−3-round path maximises rounds (and therefore pool round
        # trips); every shard count must agree with the single-core engine.
        task = _build_task("lambda", "path", 40, 1)
        out = BACKENDS[shards].run_task(task)
        solo = VECTORIZED.run_task(task)
        assert _fingerprint(out) == _fingerprint(solo)

    def test_segments_cover_every_node_exactly_once(self):
        backend = ShardedVectorizedBackend(shards=3)
        graph = generate_family("gnp_sparse", 50, 2)
        indptr, _ = graph.csr()
        segments = backend._segments(np.asarray(indptr, dtype=np.int64), graph.n)
        covered = [v for lo, hi in segments for v in range(lo, hi)]
        assert covered == list(range(graph.n))

    def test_more_shards_than_nodes(self):
        task = _build_task("lambda", "path", 3, 0)
        out = BACKENDS[7].run_task(task)
        assert _fingerprint(out) == _fingerprint(VECTORIZED.run_task(task))


# --------------------------------------------------------------------------- #
# dispatch: fallback, strict mode, provenance
# --------------------------------------------------------------------------- #
class TestShardedDispatch:
    def test_uncovered_scheme_falls_back_with_true_provenance(self):
        task = _build_task("lambda_ack", "grid", 16, 2)
        out = BACKENDS[2].run_task(task)
        solo = VECTORIZED.run_task(task)
        assert _fingerprint(out) == _fingerprint(solo)
        assert out.backend == "vectorized"  # the engine that actually ran it

    def test_non_default_models_fall_back_to_reference(self):
        from repro.radio.clock import OffsetClocks

        graph = generate_family("path", 9, 1)
        scheme = get_scheme("lambda")
        info = scheme.build_labels(graph, 0)
        task = scheme.build_task(
            graph, info, 0, payload="MSG",
            max_rounds=scheme.default_budget(graph, info),
            trace_level="summary", fault_model=None,
            clock_model=OffsetClocks({v: 3 for v in graph.nodes()}),
        )
        out = BACKENDS[2].run_task(task)
        assert out.backend == "reference"

    def test_strict_raises_for_uncovered_task(self):
        task = _build_task("lambda_ack", "path", 9, 1)
        with pytest.raises(BackendError, match="no segment kernel"):
            ShardedVectorizedBackend(shards=2, strict=True).run_task(task)


# --------------------------------------------------------------------------- #
# shard-selection threading: resolver, scenario, grid config, CLI, store keys
# --------------------------------------------------------------------------- #
class TestShardSelectionThreading:
    def test_resolve_backend_parses_shard_specs(self):
        backend = resolve_backend("sharded:3")
        assert isinstance(backend, ShardedVectorizedBackend)
        assert backend.shards == 3
        assert resolve_backend("sharded:3") is backend  # shared per spec
        assert resolve_backend("sharded") is not backend

    @pytest.mark.parametrize("bad", ["sharded:0", "sharded:-1", "sharded:many",
                                     "vectorized:3"])
    def test_resolve_backend_rejects_bad_specs(self, bad):
        with pytest.raises(BackendError):
            resolve_backend(bad)

    def test_scenario_shards_round_trip_and_backend_spec(self):
        scenario = Scenario(graph="path:9", scheme="lambda", shards=2,
                            trace_level="summary")
        clone = Scenario.from_json(scenario.to_json())
        assert clone.shards == 2
        assert clone.backend_spec() == "sharded:2"
        assert Scenario(graph="path:9").backend_spec() is None

    def test_scenario_rejects_shards_with_other_backend(self):
        with pytest.raises(ValueError, match="shards"):
            Scenario(graph="path:9", backend="batched", shards=2)

    @pytest.mark.parametrize("bad", [0, -2])
    def test_grid_config_rejects_non_positive_shards(self, bad):
        with pytest.raises(ValueError, match="shards"):
            GridConfig(families=["path"], sizes=[9], shards=bad)

    def test_grid_config_shards_conflicts_with_other_backend(self):
        cfg = GridConfig(families=["path"], sizes=[9], schemes=["lambda"], shards=2)
        with pytest.raises(ValueError, match="shards"):
            run_grid(cfg, backend="batched")

    def test_grid_config_shards_refuses_to_override_an_instance(self):
        # An explicit backend instance carries its own shards/strict settings;
        # swapping it for the pooled default would silently discard them.
        cfg = GridConfig(families=["path"], sizes=[9], schemes=["lambda"], shards=2)
        explicit = ShardedVectorizedBackend(shards=7, strict=True)
        with pytest.raises(ValueError, match="backend instance"):
            run_grid(cfg, backend=explicit)
        # Without config.shards, the instance is honored — strict mode and
        # all: lambda_ack has no segment kernel, so strict must surface.
        strict_cfg = GridConfig(families=["path"], sizes=[9], schemes=["lambda_ack"])
        from repro.analysis.executor import GridExecutionError

        with pytest.raises(GridExecutionError, match="no segment kernel"):
            run_grid(strict_cfg, backend=ShardedVectorizedBackend(shards=2, strict=True))

    def test_session_cleans_up_partial_shm_on_create_failure(self, monkeypatch):
        from multiprocessing import shared_memory as shm_mod

        from repro.backends.sharded import _Session

        created = []
        real = shm_mod.SharedMemory

        class Flaky:
            calls = 0

            def __new__(cls, *args, **kwargs):
                Flaky.calls += 1
                if Flaky.calls == 3:
                    raise OSError("no space left on /dev/shm")
                block = real(*args, **kwargs)
                created.append(block)
                return block

        monkeypatch.setattr("repro.backends.sharded.shared_memory.SharedMemory", Flaky)
        arrays = {f"a{i}": np.zeros(8, dtype=np.int64) for i in range(4)}
        with pytest.raises(OSError, match="no space"):
            _Session(arrays)
        monkeypatch.undo()
        # Both successfully created blocks were unlinked by the cleanup path.
        for block in created:
            with pytest.raises(FileNotFoundError):
                real(name=block.name)

    def test_cli_run_shards_respects_scenario_backend(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "scenario.json"
        Scenario(graph="path:9", scheme="lambda", backend="vectorized",
                 trace_level="summary").save(path)
        # The scenario declares vectorized; --shards must refuse rather than
        # silently override the author's backend choice.
        assert main(["run", str(path), "--shards", "2"]) == 2
        assert "sharded" in capsys.readouterr().err
        # An explicit --backend sharded (overriding the file) composes fine.
        assert main(["run", str(path), "--backend", "sharded", "--shards", "2"]) == 0

    def test_grid_rows_match_reference_through_shards(self):
        cfg = GridConfig(families=["path", "gnp_sparse"], sizes=[9], shards=2,
                         schemes=["lambda", "round_robin", "lambda_ack"])
        sharded_rows = run_grid(cfg)
        plain = GridConfig(families=["path", "gnp_sparse"], sizes=[9],
                           schemes=["lambda", "round_robin", "lambda_ack"])
        assert sharded_rows == run_grid(plain, backend="reference")
        by_scheme = {r.scheme: r.backend for r in sharded_rows}
        assert by_scheme["lambda"] == "sharded"
        assert by_scheme["lambda_ack"] == "vectorized"  # fallback provenance

    def test_cli_shards_implies_sharded_backend(self):
        import argparse

        from repro.cli import build_parser, sweep_backend

        args = build_parser().parse_args(
            ["sweep", "--families", "path", "--sizes", "9", "--shards", "4"]
        )
        assert args.backend is None
        assert sweep_backend(args.backend, args.batch_size, args.shards) == "sharded:4"
        assert sweep_backend("sharded", None, 2) == "sharded:2"
        with pytest.raises(argparse.ArgumentTypeError):
            sweep_backend("batched", None, 2)

    @pytest.mark.parametrize("bad", ["0", "-1", "lots"])
    def test_cli_rejects_bad_shards(self, bad, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--families", "path", "--sizes", "9", "--shards", bad]
            )
        assert "shard count" in capsys.readouterr().err

    def test_store_keys_are_shard_count_independent(self):
        # Shard count is parallelism: resuming with a different count (or the
        # bare name) must hit the same cache entries.
        assert normalize_backend_name("sharded:2") == "sharded"
        cfg = GridConfig(families=["path"], sizes=[9], schemes=["lambda"])
        unit = ("path", 9, 0, None, None, "lambda")
        keys = {
            grid_unit_key(cfg, unit, backend=spec)
            for spec in ("sharded", "sharded:2", "sharded:7")
        }
        assert len(keys) == 1
        assert keys != {grid_unit_key(cfg, unit, backend="vectorized")}


# --------------------------------------------------------------------------- #
# int64 hardening of the CSR receive-count kernels
# --------------------------------------------------------------------------- #
class TestReceiveCountInt64:
    def test_channel_counts_are_int64_on_a_high_degree_star(self):
        from repro.backends.vectorized import _Channel

        n = 4097
        graph = generate_family("star", n, 0)
        channel = _Channel(graph)
        tx_mask = np.zeros(n, dtype=bool)
        tx_mask[0] = True  # the hub transmits to every leaf at once
        tx_ids, hears_ids, senders, collision_ids = channel.resolve(tx_mask)
        assert hears_ids.size == n - 1 and collision_ids.size == 0
        for arr in (tx_ids, hears_ids, senders):
            assert arr.dtype == np.int64
        # All leaves answering floods the hub with one (colliding) burst.
        tx_mask[:] = True
        tx_mask[0] = False
        _, hears_ids, _, collision_ids = channel.resolve(tx_mask)
        assert collision_ids.tolist() == [0] and hears_ids.size == 0
        assert collision_ids.dtype == np.int64

    @pytest.mark.parametrize("backend_spec", ["vectorized", "sharded:2", "batched"])
    def test_star_broadcast_counts_survive_every_engine(self, backend_spec):
        task = _build_task("lambda", "star", 2000, 0)
        out = resolve_backend(backend_spec).run_task(task)
        ref = VECTORIZED.run_task(task)
        assert out.trace == ref.trace
        assert out.trace.total_receptions() == ref.trace.total_receptions()

    def test_batched_per_instance_counts_are_int64(self):
        from repro.backends.batched import _BatchLayout

        tasks = [_build_task("lambda", "star", 64, s) for s in range(3)]
        lay = _BatchLayout(tasks)
        counts = lay.counts(np.arange(lay.total, dtype=np.int64))
        assert counts.dtype == np.int64
        assert counts.tolist() == [64, 64, 64]

"""Tests for the binary columnar segment format and streaming aggregation.

The contract under test (ISSUE 10 acceptance):

* ``compact(format="columnar")`` round-trips every stored document
  bit-for-bit: the JSONL a columnar store expands back to is byte-identical
  to compacting the original store directly, and every read surface
  (``get``/``in``/``iter_docs``/``rows``) agrees with a pure-JSONL copy;
* JSONL and columnar segments coexist in one store — appends stay JSONL
  and win over columnar rows on load;
* a torn columnar rewrite is quarantined like a torn JSONL tail, and
  compaction drops it;
* a warm ``run_grid`` resume against a columnar-compacted store computes
  nothing; and
* the streaming aggregator, the eager ``ResultSet`` path and the shared
  statistics kernel return identical numbers for the same rows.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.stream import (
    StreamAggregator,
    aggregate_result_set,
    compute_stats,
    filter_result_set,
    resolve_column,
    resolve_group_columns,
    status_matches,
    stream_aggregate,
)
from repro.api import GridConfig, run_grid
from repro.store import (
    COLUMNAR_MAGIC,
    ColumnarError,
    ColumnarSegment,
    ResultSet,
    ResultStore,
    compact_store,
    write_columnar_segment,
)
from repro.store.columnar import COLUMNAR_SUFFIX

CFG = GridConfig(families=["path", "grid"], sizes=[9, 12], seeds_per_size=1,
                 schemes=["lambda", "round_robin"])


def _canonical(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _filled_store(path, cfg=CFG, **grid_kwargs):
    store = ResultStore(path)
    run_grid(cfg, store=store, **grid_kwargs)
    store.close()
    return path


def _segment_files(root: Path):
    return sorted(p.name for p in (root / "segments").iterdir()
                  if p.suffix in (".jsonl", COLUMNAR_SUFFIX))


# --------------------------------------------------------------------------- #
# the round-trip contract
# --------------------------------------------------------------------------- #
class TestColumnarRoundTrip:
    def test_documents_survive_bit_for_bit(self, tmp_path):
        _filled_store(tmp_path / "s", trace_level="summary")
        with ResultStore(tmp_path / "s") as store:
            before = [_canonical(d) for d in store.iter_docs()]
            rows_before = store.rows().to_dicts()
            stats = store.compact(format="columnar")
            after = [_canonical(d) for d in store.iter_docs()]
            assert store.rows().to_dicts() == rows_before
        assert after == before
        assert stats["format"] == "columnar"
        assert stats["rows_kept"] == len(before)
        assert stats["segments_unconverted"] == 0
        # Every shard became a .colseg; no JSONL remains.
        assert all(name.endswith(COLUMNAR_SUFFIX)
                   for name in _segment_files(tmp_path / "s"))

    def test_expanding_back_to_jsonl_matches_plain_compaction(self, tmp_path):
        _filled_store(tmp_path / "a", trace_level="summary")
        shutil.copytree(tmp_path / "a", tmp_path / "b")
        # a: jsonl -> columnar -> jsonl; b: jsonl -> jsonl (reference).
        compact_store(tmp_path / "a", format="columnar")
        compact_store(tmp_path / "a", format="jsonl")
        compact_store(tmp_path / "b", format="jsonl")
        files_a, files_b = _segment_files(tmp_path / "a"), _segment_files(tmp_path / "b")
        assert files_a == files_b
        for name in files_a:
            if not name.endswith(".jsonl"):
                continue
            assert ((tmp_path / "a" / "segments" / name).read_bytes()
                    == (tmp_path / "b" / "segments" / name).read_bytes())

    def test_traces_survive_columnar_compaction(self, tmp_path):
        # run_grid never persists traces, so attach one explicitly: trace
        # sidecars are JSONL-only and must ride through a columnar rewrite.
        from repro.api import get_scheme
        from repro.backends import BatchedVectorizedBackend
        from repro.graphs import generate_family

        scheme = get_scheme("lambda_ack")
        graph = generate_family("grid", 9, 1)
        info = scheme.build_labels(graph, 0)
        task = scheme.build_task(graph, info, 0, payload="MSG",
                                 max_rounds=scheme.default_budget(graph, info),
                                 trace_level="summary", fault_model=None,
                                 clock_model=None)
        trace = BatchedVectorizedBackend().run_batch([task])[0].simulation.trace

        _filled_store(tmp_path / "s")
        key = "cd" + "0" * 62
        with ResultStore(tmp_path / "s") as store:
            store.put(key, store.get(store.keys()[0]), trace=trace)
            assert store.get_trace(key) == trace
            store.compact(format="columnar")
            assert store.get_trace(key) == trace
        reopened = ResultStore(tmp_path / "s")
        assert reopened.get_trace(key) == trace

    def test_repeat_columnar_compaction_is_stable(self, tmp_path):
        _filled_store(tmp_path / "s")
        compact_store(tmp_path / "s", format="columnar")
        first = {p.name: p.read_bytes()
                 for p in (tmp_path / "s" / "segments").iterdir()}
        stats = compact_store(tmp_path / "s", format="columnar")
        second = {p.name: p.read_bytes()
                  for p in (tmp_path / "s" / "segments").iterdir()}
        assert first == second
        assert stats["segments_rewritten"] == 0

    def test_writer_rejects_foreign_documents(self, tmp_path):
        with pytest.raises(ColumnarError):
            write_columnar_segment(tmp_path / "x.colseg",
                                   [{"key": "ab", "schema": 2,
                                     "row": {"scheme": "lambda"}}])
        assert not (tmp_path / "x.colseg").exists()


# --------------------------------------------------------------------------- #
# mixed-format stores: JSONL and columnar coexist
# --------------------------------------------------------------------------- #
class TestMixedFormatStores:
    def test_mixed_store_agrees_with_pure_jsonl_copy(self, tmp_path):
        cfg_more = replace(CFG, sizes=[9, 12, 15])
        _filled_store(tmp_path / "a", trace_level="summary")
        # Columnar-compact the first grid, then append a second wave so the
        # store holds both formats at once.
        compact_store(tmp_path / "a", format="columnar")
        with ResultStore(tmp_path / "a") as store:
            run_grid(cfg_more, store=store, trace_level="summary")
            formats = store.describe()["formats"]
        assert formats["columnar"]["segments"] > 0
        assert formats["jsonl"]["segments"] > 0
        # The pure-JSONL twin: same grids, no columnar step.
        _filled_store(tmp_path / "b", trace_level="summary")
        with ResultStore(tmp_path / "b") as store:
            run_grid(cfg_more, store=store, trace_level="summary")
        with ResultStore(tmp_path / "a") as mixed, \
                ResultStore(tmp_path / "b") as plain:
            assert set(mixed.keys()) == set(plain.keys())
            for key in plain.keys():
                assert key in mixed
                assert _canonical(mixed._load_doc(key)) == \
                    _canonical(plain._load_doc(key))
            assert mixed.get(plain.keys()[0]) == plain.get(plain.keys()[0])
            mixed_docs = {_canonical(d) for d in mixed.iter_docs()}
            plain_docs = {_canonical(d) for d in plain.iter_docs()}
            assert mixed_docs == plain_docs
            mixed_rows = sorted(map(repr, mixed.rows().to_rows()))
            plain_rows = sorted(map(repr, plain.rows().to_rows()))
            assert mixed_rows == plain_rows

    def test_jsonl_appends_win_over_columnar_rows(self, tmp_path):
        _filled_store(tmp_path / "s")
        compact_store(tmp_path / "s", format="columnar")
        with ResultStore(tmp_path / "s") as store:
            key = store.keys()[0]
            doc = store._load_doc(key)
            newer = dict(doc, row=dict(doc["row"], status="error:Injected"))
            # Append a newer generation for the same key straight to the
            # shard's JSONL file, like a foreign writer would.
            seg = Path(store.root) / "segments" / f"{key[:2]}.jsonl"
            with open(seg, "ab") as handle:
                handle.write((_canonical(newer) + "\n").encode())
        with ResultStore(tmp_path / "s") as store:
            assert store.get(key).status == "error:Injected"
            # rows() serves the JSONL winner too, not the columnar slot.
            by_status = store.rows().groupby("status")
            assert "error:Injected" in by_status

    def test_describe_reports_per_format_counts(self, tmp_path):
        _filled_store(tmp_path / "s")
        with ResultStore(tmp_path / "s") as store:
            desc = store.describe()
            assert desc["formats"]["jsonl"]["segments"] == desc["segments"]
            assert desc["formats"]["columnar"] == {"segments": 0, "bytes": 0}
            assert desc["quarantined_segments"] == 0
            store.compact(format="columnar")
            desc = store.describe()
            assert desc["formats"]["jsonl"] == {"segments": 0, "bytes": 0}
            assert desc["formats"]["columnar"]["segments"] == desc["segments"]
            assert desc["formats"]["columnar"]["bytes"] > 0

    def test_warm_resume_computes_nothing_after_columnar_compaction(
            self, tmp_path, monkeypatch):
        from repro.backends import ReferenceBackend

        _filled_store(tmp_path / "s")
        compact_store(tmp_path / "s", format="columnar")
        calls = []
        original = ReferenceBackend.run_task

        def counting(self, task):
            calls.append(task)
            return original(self, task)

        monkeypatch.setattr(ReferenceBackend, "run_task", counting)
        baseline = run_grid(CFG)
        n_local = len(calls)
        with ResultStore(tmp_path / "s") as store:
            progress = []
            resumed = run_grid(CFG, store=store,
                               on_chunk=progress.append)
        assert resumed == baseline
        assert len(calls) == n_local  # zero backend invocations on resume
        assert progress[-1].cached_rows == len(resumed)
        assert progress[-1].computed_rows == 0


# --------------------------------------------------------------------------- #
# corruption: quarantine on load, drop at compaction
# --------------------------------------------------------------------------- #
class TestQuarantine:
    def _truncate_one(self, root: Path) -> Path:
        victim = sorted((root / "segments").glob(f"*{COLUMNAR_SUFFIX}"))[0]
        data = victim.read_bytes()
        victim.write_bytes(data[:len(data) - 16])
        return victim

    def test_truncated_columnar_tail_is_quarantined(self, tmp_path):
        _filled_store(tmp_path / "s")
        compact_store(tmp_path / "s", format="columnar")
        with ResultStore(tmp_path / "s") as store:
            total = len(store)
        victim = self._truncate_one(tmp_path / "s")
        with ResultStore(tmp_path / "s") as store:
            # The torn segment's rows vanish from the view, like torn JSONL
            # lines; every other segment still serves.
            assert store.describe()["quarantined_segments"] == 1
            assert 0 < len(store) < total
            for key in store.keys():
                assert store.get(key) is not None
        # Compaction drops the quarantined segment entirely.
        stats = compact_store(tmp_path / "s", format="columnar")
        assert stats["junk_dropped"] >= 1
        assert not victim.exists()
        with ResultStore(tmp_path / "s") as store:
            assert store.describe()["quarantined_segments"] == 0

    def test_foreign_magic_is_not_columnar(self, tmp_path):
        path = tmp_path / "x.colseg"
        path.write_bytes(b"repro-colseg 9\n" + b"\x00" * 64)
        with pytest.raises(ColumnarError, match="magic"):
            ColumnarSegment(path)
        assert not path.read_bytes().startswith(COLUMNAR_MAGIC)


# --------------------------------------------------------------------------- #
# laziness: reads proportional to the columns touched
# --------------------------------------------------------------------------- #
class TestLazyReads:
    def test_aggregate_touches_only_its_columns(self, tmp_path, monkeypatch):
        _filled_store(tmp_path / "s")
        compact_store(tmp_path / "s", format="columnar")
        touched = []
        original = ColumnarSegment.get_column

        def spying(self, name):
            touched.append(name)
            return original(self, name)

        monkeypatch.setattr(ColumnarSegment, "get_column", spying)
        with ResultStore(tmp_path / "s") as store:
            rows = store.rows()
            assert touched == []  # opening the set reads no column blocks
            agg = aggregate_result_set(rows, "rounds", ("scheme",))
        assert set(touched) <= {"scheme", "completion_round"}
        assert sum(g["stats"]["count"] for g in agg) == len(rows)

    def test_filter_then_column_stays_columnar(self, tmp_path):
        _filled_store(tmp_path / "s")
        compact_store(tmp_path / "s", format="columnar")
        with ResultStore(tmp_path / "s") as store:
            rows = store.rows()
            lam = filter_result_set(rows, schemes=["lambda"], status="ok")
            values = lam.column("completion_round")
            assert len(lam) == len(values) == len(rows) // 2
            assert set(lam.column("scheme").tolist()) == {"lambda"}
            # Sequence protocol still materializes real rows.
            assert lam[0].scheme == "lambda"


# --------------------------------------------------------------------------- #
# streaming aggregation: one kernel, three surfaces
# --------------------------------------------------------------------------- #
class TestStreamingAggregation:
    def test_stream_equals_eager_equals_resultset(self, tmp_path):
        _filled_store(tmp_path / "s")
        with ResultStore(tmp_path / "s") as store:
            rows = store.rows()
            eager = aggregate_result_set(rows, "rounds", ("scheme", "n"),
                                         ci=True)
            streamed = stream_aggregate(store.iter_docs(), "rounds",
                                        ("scheme", "n"), ci=True)
        assert streamed == eager
        # The ungrouped stream answer equals ResultSet.aggregate directly.
        flat = stream_aggregate((r.as_dict() for r in rows.to_rows()),
                                "completion_round")
        assert flat == [{"by": {}, "stats": rows.aggregate("completion_round")}]

    def test_kernel_handles_empty_and_ci(self):
        empty = compute_stats(np.empty(0, dtype=np.int64), ci=True)
        assert empty["count"] == 0
        assert all(np.isnan(v) for k, v in empty.items() if k != "count")
        stats = compute_stats(np.arange(100), ci=True)
        assert stats["count"] == 100
        assert stats["p05"] < stats["median"] < stats["p95"]
        assert stats["ci95_low"] <= stats["mean"] <= stats["ci95_high"]
        # Seeded bootstrap: deterministic for a given value order.
        assert stats == compute_stats(np.arange(100), ci=True)

    def test_aggregator_groups_in_first_seen_order(self):
        agg = StreamAggregator("completion_round", ("scheme",))
        for scheme, value in [("b", 4), ("a", 2), ("b", 6), ("a", None)]:
            agg.add({"scheme": scheme, "completion_round": value})
        out = agg.result()
        assert [g["by"]["scheme"] for g in out] == ["b", "a"]
        assert out[0]["stats"]["mean"] == 5.0
        assert out[1]["stats"]["count"] == 1  # None cells are skipped
        assert agg.rows_seen == 4

    def test_column_resolution_and_aliases(self):
        assert resolve_column("rounds") == "completion_round"
        assert resolve_column("bits") == "total_message_bits"
        assert resolve_group_columns("scheme, n") == ("scheme", "n")
        assert resolve_group_columns(None) == ()
        with pytest.raises(KeyError, match="unknown numeric column"):
            resolve_column("scheme")  # strings are not aggregatable
        with pytest.raises(KeyError, match="unknown column"):
            resolve_group_columns("nope")

    def test_status_prefix_semantics(self):
        assert status_matches("error:ValueError", "error")
        assert status_matches("error:ValueError", "error:ValueError")
        assert status_matches("ok", "ok")
        assert not status_matches("ok", "error")
        assert not status_matches("error:ValueError", "error:TypeError")
        assert not status_matches("errors", "error")

    def test_filter_result_set_status_class(self):
        rows = ResultSet.from_dicts([
            dict(scheme="lambda", family="path", n=9, source_eccentricity=1,
                 label_bits=1, distinct_labels=1, completion_round=5, bound=9,
                 acknowledgement_round=None, transmissions=1, collisions=0,
                 total_message_bits=8, fault="none", clock="sync", backend="",
                 status=status)
            for status in ["ok", "error:ValueError", "error:TypeError", "ok"]
        ])
        assert len(filter_result_set(rows, status="error")) == 2
        assert len(filter_result_set(rows, status="error:TypeError")) == 1
        assert len(filter_result_set(rows, status="ok")) == 2
        assert len(filter_result_set(rows, schemes=["nope"])) == 0
